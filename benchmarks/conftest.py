"""Benchmark-suite conventions.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md), prints the paper-shaped rows into the
captured output, and asserts the figure's *shape* claims (who wins,
direction of trends, crossovers) — not absolute numbers.

Each experiment runs exactly once per benchmark (``benchmark.pedantic``
with one round): the interesting cost is the simulation itself, and the
repetition protocol is handled inside the drivers via ``REPRO_REPS``.

Environment knobs:

* ``REPRO_FAST=1``   — smoke-scale runs (shorter windows).
* ``REPRO_REPS=17``  — the artifact's full 17-run trimmed-mean protocol.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a driver exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )

    return run


@pytest.fixture(autouse=True)
def _isolate_profile_cache():
    """Profiling results are controller-independent and *should* be
    shared across benchmarks of the same module, but never across
    modules with different topologies."""
    yield
