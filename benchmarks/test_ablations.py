"""Ablations over SurgeGuard's fixed constants + the latency-surge mode.

These go beyond the paper's printed evaluation (DESIGN.md §6): the paper
asserts α = 0.5, a ~2× hold window, a bounded hint TTL, and a fast
Escalator cycle with one-line justifications; the sweeps quantify each
choice's actual effect at the reproduction's scale.  The final test
exercises the abstract's *network latency* surge mode.
"""

import pytest

from repro.experiments.ablations import (
    latency_surge_comparison,
    sweep_escalator_interval,
    sweep_hold_factor,
    sweep_ttl,
)


def test_ablation_hint_ttl(once, capsys):
    """TTL = 0 disables downstream hints entirely; the paper's bounded
    TTL (2) must beat it on the fixed-pool workload."""
    points = once(sweep_ttl, (0, 2))
    by_val = {p.value: p for p in points}
    assert by_val[2].violation_volume <= by_val[0].violation_volume * 1.5
    with capsys.disabled():
        print("\n[ablation] upscale-hint TTL")
        for p in points:
            print(
                f"  ttl={int(p.value)}  VV={p.violation_volume * 1e3:8.3f}ms·s "
                f"cores={p.avg_cores:.2f}"
            )


def test_ablation_hold_factor(once, capsys):
    """The hold window damps boost churn; extreme values must not win
    decisively over the paper's 2× (i.e., 2× is on the plateau)."""
    points = once(sweep_hold_factor, (0.5, 2.0, 8.0))
    by_val = {p.value: p for p in points}
    vv2 = by_val[2.0].violation_volume
    for v, p in by_val.items():
        assert vv2 <= p.violation_volume * 5.0, f"hold={v} dominates 2x"
    with capsys.disabled():
        print("\n[ablation] FirstResponder hold window (× e2e latency)")
        for p in points:
            print(
                f"  hold={p.value:3.1f}x VV={p.violation_volume * 1e3:8.3f}ms·s "
                f"energy={p.energy:.1f}J"
            )


def test_ablation_escalator_interval(once, capsys):
    """Slower Escalator cycles must cost violation volume (the premise
    of Table I's update-interval column)."""
    points = once(sweep_escalator_interval, (0.1, 0.5))
    by_val = {p.value: p for p in points}
    assert by_val[0.1].violation_volume <= by_val[0.5].violation_volume * 1.2
    with capsys.disabled():
        print("\n[ablation] Escalator decision interval")
        for p in points:
            print(
                f"  interval={p.value:4.2f}s VV={p.violation_volume * 1e3:8.3f}ms·s "
                f"cores={p.avg_cores:.2f}"
            )


def test_latency_surge_mode(once, capsys):
    """Abstract: SurgeGuard guards QoS during surges in *network
    latency* too.  Static allocations and CaladanAlgo eat the full
    violation; SurgeGuard mitigates."""
    vv = once(latency_surge_comparison)
    assert vv["surgeguard"] < vv["static"]
    assert vv["surgeguard"] < vv["caladan"]
    assert vv["surgeguard"] < vv["parties"]
    with capsys.disabled():
        print("\n[latency surge] violation volume per controller")
        for k, v in sorted(vv.items(), key=lambda kv: kv[1]):
            print(f"  {k:10s} VV={v * 1e3:9.3f}ms·s")
