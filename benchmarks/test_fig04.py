"""Fig. 4 — detection delay vs. violation volume and core cost."""

from repro.experiments.fig04_detection_delay import DELAYS, run_fig04


def test_fig04_detection_delay(once, capsys):
    rows = once(run_fig04)
    by_delay = {r.delay: r for r in rows}

    # Shape claims: VV grows superlinearly with detection delay — the
    # paper reports 24× (1 s vs 0.2 ms) and 4.75× (1 s vs 0.5 s).
    vv_fast = by_delay[0.2e-3].violation_volume
    vv_mid = by_delay[0.5].violation_volume
    vv_slow = by_delay[1.0].violation_volume
    assert vv_fast <= vv_mid <= vv_slow
    assert vv_slow > 2.0 * vv_mid  # superlinear growth

    with capsys.disabled():
        print("\n[Fig 4] detection delay study (paper: 24x / 4.75x VV ratios)")
        for d in DELAYS:
            r = by_delay[d]
            print(
                f"  delay={d * 1e3:7.1f}ms VV={r.violation_volume * 1e3:9.3f}ms·s "
                f"(x{r.vv_ratio_vs_fastest:9.1f} vs fastest) "
                f"cores={r.cores_during_surge:.2f} headroom={r.headroom:.2f}"
            )
