"""Fig. 5 — threading-model hidden dependencies."""

from repro.experiments.fig05_threading import run_fig05


def test_fig05_threading_models(once, capsys):
    rows = once(run_fig05)
    cell = {(r.model, r.controller): r for r in rows}

    # Fig. 5(a): with connection-per-request, even the per-container
    # controller upscales the downstream service.
    assert cell[("conn-per-request", "parties")].c2_upscaled

    # Fig. 5(b): with a fixed pool the per-container controller pours
    # cores into c1 and NEVER touches c2.
    fp_parties = cell[("fixed-pool", "parties")]
    assert fp_parties.c1_cores_gained > 0
    assert not fp_parties.c2_upscaled

    # Fig. 5(c): SurgeGuard's metrics upscale both.
    fp_sg = cell[("fixed-pool", "surgeguard")]
    assert fp_sg.c2_upscaled

    # And that correctness buys QoS: SurgeGuard's VV beats Parties'
    # on the fixed-pool topology by a wide margin.
    assert fp_sg.violation_volume < 0.5 * fp_parties.violation_volume

    with capsys.disabled():
        print("\n[Fig 5] hidden dependencies (paper: Parties fails on fixed pools)")
        for r in rows:
            print(
                f"  {r.model:17s} {r.controller:10s} c1+={r.c1_cores_gained:.1f} "
                f"c2+={r.c2_cores_gained:.1f} c2_upscaled={r.c2_upscaled} "
                f"VV={r.violation_volume * 1e3:.2f}ms·s"
            )
