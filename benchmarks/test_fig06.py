"""Fig. 6 — sensitivity curves of two socialNetwork services."""

from repro.experiments.fig06_sensitivity import run_fig06


def test_fig06_sensitivity_curves(once, capsys):
    curves = once(run_fig06)
    by_name = {c.service: c for c in curves}

    for curve in curves:
        # Execution time is non-increasing in cores (up to simulation
        # noise at the flat end).
        for a, b in zip(curve.exec_metric, curve.exec_metric[1:]):
            assert b <= a * 1.05
        # The curve flattens: the last step buys far less than the first
        # (Fig. 6-right's hogging setup).
        sens = curve.sensitivity()
        assert sens[-1] < 0.05
        assert max(sens) > 0.1

    with capsys.disabled():
        print("\n[Fig 6] sensitivity curves (exec time vs cores)")
        for c in curves:
            pts = "  ".join(
                f"{k:g}:{m * 1e3:.2f}ms" for k, m in zip(c.cores, c.exec_metric)
            )
            print(f"  {c.service}: {pts}")
