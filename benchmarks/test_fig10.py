"""Fig. 10 — FirstResponder on short surges (CHAIN)."""

from repro.experiments.fig10_short_surges import (
    SURGE_LENGTHS,
    run_fig10,
    vv_reduction,
)


def test_fig10_short_surges(once, capsys):
    rows = once(run_fig10)

    # Shape claim: adding FirstResponder reduces violation volume for
    # every sub-decision-window surge length (the paper reports −98 %
    # at 100 µs and −88 % at 2 ms; see EXPERIMENTS.md for how the
    # scaled burst model shifts the exact percentages).
    reductions = {}
    for surge_len in SURGE_LENGTHS:
        red = vv_reduction(rows, surge_len)
        reductions[surge_len] = red
        assert red > 0.2, f"FR did not help at {surge_len * 1e6:g}us: {red:.2f}"

    # Peak latency also improves with the fast path.
    for surge_len in SURGE_LENGTHS:
        esc = next(
            r for r in rows if r.surge_len == surge_len and r.controller == "escalator"
        )
        full = next(
            r for r in rows if r.surge_len == surge_len and r.controller == "surgeguard"
        )
        assert full.peak_latency < esc.peak_latency

    with capsys.disabled():
        print("\n[Fig 10] short surges (paper: FR cuts VV 98%/88%)")
        for r in rows:
            print(
                f"  {r.surge_len * 1e6:6g}us {r.controller:10s} "
                f"VV={r.violation_volume * 1e3:8.3f}ms·s "
                f"p98={r.p98 * 1e3:6.2f}ms peak={r.peak_latency * 1e3:6.2f}ms"
            )
        for sl, red in reductions.items():
            print(f"  FR VV reduction @ {sl * 1e6:g}us: {red * 100:.1f}%")
