"""Fig. 11 — long surges: all workloads × magnitudes, normalized to Parties.

This is the paper's headline figure: SurgeGuard cuts violation volume by
19 % / 43 % / 61 % on average at 1.25× / 1.5× / 1.75× surges while using
2–8 % fewer cores, and CaladanAlgo collapses on the conn-per-request
hotel workloads.
"""

from repro.experiments.fig11_long_surges import (
    MAGNITUDES,
    average_reduction,
    run_fig11,
)


def test_fig11_long_surges(once, capsys):
    cells = once(run_fig11)

    # 1. SurgeGuard beats (or ties, within 0.1 ms·s absolute) Parties on
    # VV in every single cell — the absolute guard covers cells where a
    # mild surge produced essentially no violation under either
    # controller and the ratio is degenerate.
    parties_vv = {
        (c.workload, c.magnitude): c.raw.violation_volume
        for c in cells
        if c.controller == "parties"
    }
    sg = [c for c in cells if c.controller == "surgeguard"]
    for c in sg:
        base = parties_vv[(c.workload, c.magnitude)]
        assert c.raw.violation_volume <= base + 1e-4, (
            f"{c.workload}@{c.magnitude}: SG {c.raw.violation_volume} vs "
            f"Parties {base}"
        )

    # 2. The average reduction is large at the top magnitude (the paper:
    # 61 % at 1.75×) and never *shrinks* from a meaningful value as the
    # magnitude grows.  Magnitudes where no workload meaningfully
    # violated under Parties (possible at 1.25× at this scale) are
    # excluded by average_reduction returning None.
    reductions = {
        m: average_reduction(cells, "surgeguard", m) for m in MAGNITUDES
    }
    top = reductions[MAGNITUDES[-1]]
    assert top is not None and top > 0.5
    defined = [r for r in reductions.values() if r is not None]
    assert all(r > 0.0 for r in defined)

    # 3. SurgeGuard uses no more cores than Parties on average.
    avg_cores_ratio = sum(c.normalized.avg_cores for c in sg) / len(sg)
    assert avg_cores_ratio < 1.02

    # 4. CaladanAlgo's conn-per-request blindness on the hotel
    # workloads: it never upscales (strictly fewer cores and less
    # energy than Parties) and gains nothing for it — clearly worse
    # than Parties on recommendHotel, and never meaningfully better
    # anywhere (on the depth-11 searchHotel our serialized Parties is
    # itself overwhelmed, so the two baselines converge).
    for wl in ("searchHotel", "recommendHotel"):
        cal = [
            c
            for c in cells
            if c.controller == "caladan" and c.workload == wl and c.magnitude == 1.75
        ][0]
        assert cal.normalized.avg_cores < 1.0
        assert cal.normalized.energy < 1.0
        assert cal.normalized.violation_volume > 0.8
    reco = [
        c
        for c in cells
        if c.controller == "caladan"
        and c.workload == "recommendHotel"
        and c.magnitude == 1.75
    ][0]
    assert reco.normalized.violation_volume > 1.0

    with capsys.disabled():
        print("\n[Fig 11] long surges, normalized to Parties (VV | cores | energy)")
        for c in cells:
            if c.controller == "parties":
                continue
            n = c.normalized
            print(
                f"  {c.workload:17s} {c.magnitude:.2f}x {c.controller:10s} "
                f"VV={n.violation_volume:8.3f} cores={n.avg_cores:.3f} "
                f"E={n.energy:.3f}"
            )
        for m in MAGNITUDES:
            red = average_reduction(cells, "surgeguard", m)
            paper = {1.25: 19, 1.5: 43, 1.75: 61}[m]
            shown = "n/a (no meaningful violations)" if red is None else f"{red * 100:5.1f}%"
            print(f"  avg VV reduction vs Parties @ {m}x: {shown} (paper: {paper}%)")
