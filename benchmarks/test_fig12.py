"""Fig. 12 — surge-duration sweep (0.1–5 s at 1.75×)."""

from repro.experiments.fig12_surge_duration import DURATIONS, run_fig12


def test_fig12_surge_duration(once, capsys):
    cells = once(run_fig12)
    sg = [c for c in cells if c.controller == "surgeguard"]

    # 1. SurgeGuard beats Parties at every duration on both workloads.
    for c in sg:
        assert c.vv_vs_parties < 1.0, (
            f"{c.workload}@{c.surge_len}s: {c.vv_vs_parties}"
        )

    # 2. The improvement grows (or stays extreme) with surge duration:
    # compare the shortest and longest surge on each workload.
    for wl in {c.workload for c in sg}:
        series = sorted(
            (c for c in sg if c.workload == wl), key=lambda c: c.surge_len
        )
        assert (
            series[-1].vv_vs_parties <= series[0].vv_vs_parties * 1.5
        ), f"{wl}: improvement did not hold with duration"

    # 3. The CaladanAlgo energy anomaly on recommendHotel: CaladanAlgo
    # never upscales, so SurgeGuard burns more energy than it while
    # cutting VV by orders of magnitude (paper: 251× VV at 7.4× energy
    # for the 5 s surge).
    reco5 = next(
        c
        for c in sg
        if c.workload == "recommendHotel" and c.surge_len == max(DURATIONS)
    )
    assert reco5.energy_vs_caladan > 1.0
    assert reco5.vv_vs_caladan < 0.05

    with capsys.disabled():
        print("\n[Fig 12] surge-duration sweep (SurgeGuard, normalized)")
        for c in sg:
            print(
                f"  {c.workload:17s} {c.surge_len:4.1f}s "
                f"VV/parties={c.vv_vs_parties:8.4f} VV/caladan={c.vv_vs_caladan:8.4f} "
                f"E/parties={c.energy_vs_parties:.3f} E/caladan={c.energy_vs_caladan:.3f}"
            )
