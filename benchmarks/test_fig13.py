"""Fig. 13 — node scaling (1 → 4 nodes)."""

from repro.experiments.fig13_node_scaling import NODE_COUNTS, run_fig13


def test_fig13_node_scaling(once, capsys):
    cells = once(run_fig13)
    sg = {c.n_nodes: c for c in cells if c.controller == "surgeguard"}

    # 1. SurgeGuard beats both baselines on VV at every cluster size.
    for n in NODE_COUNTS:
        assert sg[n].vv_vs_parties < 1.0
        assert sg[n].vv_vs_caladan < 1.0

    # 2. The core/energy advantage does not evaporate as headroom grows
    # (the paper sees it *increase*: −6.5 % → −16.4 % cores).
    assert sg[max(NODE_COUNTS)].cores_vs_parties <= 1.02
    assert sg[max(NODE_COUNTS)].energy_vs_parties <= 1.05

    with capsys.disabled():
        print("\n[Fig 13] node scaling (SurgeGuard, normalized to Parties)")
        for n in NODE_COUNTS:
            c = sg[n]
            print(
                f"  nodes={n}  VV={c.vv_vs_parties:8.4f} cores={c.cores_vs_parties:.3f} "
                f"energy={c.energy_vs_parties:.3f}  |  vs caladan: VV={c.vv_vs_caladan:8.4f}"
            )
