"""Fig. 14 — allocation timelines during a long surge (readUserTimeline)."""

from repro.experiments.fig14_alloc_timeline import FOCUS_SERVICES, run_fig14


def test_fig14_allocation_timeline(once, capsys):
    results = once(run_fig14)
    by = {r.controller: r for r in results}

    uts = "user-timeline-service"
    # 1. The baselines concentrate cores on the implicit-queue service:
    # it grabs a larger share under Parties/Caladan than under SurgeGuard.
    assert by["parties"].hoarder_peak_share > by["surgeguard"].hoarder_peak_share
    assert by["caladan"].hoarder_peak_share > by["surgeguard"].hoarder_peak_share

    # 2. The baselines starve the downstream storage tier relative to
    # their own user-timeline allocation; SurgeGuard spreads more evenly.
    def spread(r):
        down = (
            r.surge_avg_cores["post-storage-service"]
            + r.surge_avg_cores["post-storage-memcached"]
        )
        return down / r.surge_avg_cores[uts]

    assert spread(by["surgeguard"]) >= spread(by["parties"])
    assert spread(by["surgeguard"]) >= spread(by["caladan"])

    # 3. SurgeGuard wins the QoS outcome decisively.
    assert by["surgeguard"].violation_volume < 0.2 * by["parties"].violation_volume

    with capsys.disabled():
        print("\n[Fig 14] surge allocation timelines (avg cores during surge)")
        for r in results:
            cols = "  ".join(
                f"{s.split('-')[-2] if '-' in s else s}={r.surge_avg_cores[s]:.2f}"
                for s in FOCUS_SERVICES
            )
            print(
                f"  {r.controller:10s} {cols}  uts-peak-share={r.hoarder_peak_share * 100:.0f}% "
                f"revocations={r.mid_surge_revocations} VV={r.violation_volume * 1e3:.2f}ms·s"
            )
