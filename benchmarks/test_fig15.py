"""Fig. 15 — per-mechanism breakdown of Escalator."""

from repro.experiments.fig15_breakdown import run_fig15


def test_fig15_escalator_breakdown(once, capsys):
    cells = once(run_fig15)
    get = lambda wl, arm: next(
        c for c in cells if c.workload == wl and c.arm == arm
    )

    # 1. On the fixed-pool workload the new metrics help on their own
    # (paper: −23.5 % VV on readUserTimeline).
    rut_metrics = get("readUserTimeline", "+metrics")
    assert rut_metrics.vv_vs_parties < 1.0

    # 2. On the conn-per-request workload, metrics add nothing over the
    # execTime view (execMetric == execTime there): the +metrics and
    # full-escalator arms behave alike.
    reco_metrics = get("recommendHotel", "+metrics")
    reco_full = get("recommendHotel", "escalator")
    assert reco_metrics.vv_vs_parties == (
        __import__("pytest").approx(reco_full.vv_vs_parties, rel=0.5)
    )

    # 3. Sensitivity helps both workloads (paper: −28 % / −63 % VV).
    for wl in ("readUserTimeline", "recommendHotel"):
        assert get(wl, "+sensitivity").vv_vs_parties < 1.0

    # 4. The complete Escalator is never worse than plain Parties and is
    # competitive with the best single arm.
    for wl in ("readUserTimeline", "recommendHotel"):
        full = get(wl, "escalator")
        assert full.vv_vs_parties < 1.0
        best_single = min(
            get(wl, "+metrics").vv_vs_parties,
            get(wl, "+sensitivity").vv_vs_parties,
        )
        assert full.vv_vs_parties <= best_single * 3.0

    with capsys.disabled():
        print("\n[Fig 15] Escalator mechanism breakdown (VV & cores vs Parties)")
        for c in cells:
            print(
                f"  {c.workload:17s} {c.arm:13s} VV={c.vv_vs_parties:8.4f} "
                f"cores={c.cores_vs_parties:.3f}"
            )
