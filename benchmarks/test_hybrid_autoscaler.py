"""§VII — SurgeGuard bridging a horizontal autoscaler's launch gap.

Not a numbered figure: the paper's Discussion argues SurgeGuard should
"benefit horizontal-scaling controllers, by managing QoS and preventing
request buildup while the autoscaler launches a new container".  The
bench quantifies that claim: an HPA-style scaler with a realistic
launch delay, alone vs. paired with SurgeGuard, under the standard
1.75× surge pattern.
"""

from repro.controllers.horizontal import (
    HorizontalAutoscaler,
    HpaParams,
    HybridController,
)
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.scale import current_scale


def _cfg(factory):
    sc = current_scale()
    return ExperimentConfig(
        workload="readUserTimeline",
        controller_factory=factory,
        spike_magnitude=1.75,
        spike_len=sc.spike_len,
        spike_period=sc.spike_period,
        spike_offset=sc.spike_offset,
        duration=sc.duration,
        warmup=sc.warmup,
        profile_duration=sc.profile_duration,
        # Real replica actuation behind the LB tier: start at 1 replica
        # per service, budget sized to host three.
        replicas=1,
        replica_capacity=3,
    )


def test_hybrid_autoscaler_section7(once, capsys):
    hpa = HpaParams(interval=1.0, launch_delay=3.0)

    def run_both():
        alone = run_experiment(_cfg(lambda: HorizontalAutoscaler(hpa)))
        hybrid = run_experiment(_cfg(lambda: HybridController(hpa)))
        return alone, hybrid

    alone, hybrid = once(run_both)

    # The launch gap costs the HPA dearly; the hybrid closes most of it.
    assert hybrid.violation_volume < 0.5 * alone.violation_volume

    with capsys.disabled():
        print("\n[§VII] horizontal autoscaler ± SurgeGuard (launch delay 3s)")
        for label, r in (("hpa alone", alone), ("hpa+surgeguard", hybrid)):
            print(
                f"  {label:15s} VV={r.violation_volume * 1e3:9.3f}ms·s "
                f"p98={r.p98 * 1e3:7.2f}ms cores={r.avg_cores:.2f}"
            )
