"""§VI-D — SurgeGuard overhead claims, plus engine micro-benchmarks."""

import pytest

from repro.experiments.overheads import run_overheads


def test_overheads_section_6d(once, capsys):
    r = once(run_overheads)

    # Paper: 0.26 µs per packet on the RX path, 0.44 + 2.1 µs to apply a
    # boost, controller CPU below 3 %, no steady-state impact.
    assert r.hook_cost == pytest.approx(0.26e-6)
    assert r.boost_latency == pytest.approx(2.54e-6)
    assert r.packets_inspected > 0
    assert r.controller_cpu_util < 0.03
    assert abs(r.steady_state_impact) < 0.05

    with capsys.disabled():
        print("\n[§VI-D] overheads")
        print(f"  hook cost          {r.hook_cost * 1e6:.2f}us/pkt (paper 0.26)")
        print(f"  detect→boost       {r.boost_latency * 1e6:.2f}us (paper 0.44+2.1)")
        print(f"  packets inspected  {r.packets_inspected}")
        print(f"  controller CPU     {r.controller_cpu_util * 100:.2f}% (paper <3%)")
        print(
            f"  steady-state p98   {r.p98_with_fr * 1e3:.3f}ms vs "
            f"{r.p98_without_fr * 1e3:.3f}ms ({r.steady_state_impact * 100:+.2f}%)"
        )


def test_engine_event_throughput(benchmark):
    """Raw simulator throughput — the substrate cost every experiment pays."""
    from repro.sim.engine import Simulator

    def run_10k_events():
        sim = Simulator()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_fired

    fired = benchmark(run_10k_events)
    assert fired == 10_000


def test_container_ps_update_cost(benchmark):
    """Cost of one PS advance/reschedule cycle with 50 concurrent jobs."""
    from repro.cluster.container import Container
    from repro.cluster.frequency import DvfsModel
    from repro.sim.engine import Simulator

    def run():
        sim = Simulator()
        c = Container(sim, "c", DvfsModel(), cores=4.0)
        for _ in range(50):
            c.submit(1e9, lambda: None)
        # 200 allocation flips force 200 advance+reschedule rounds.
        for i in range(200):
            sim.schedule(i * 1e-4, c.set_cores, 4.0 + (i % 2))
        sim.run(until=0.02)
        return True

    assert benchmark(run)


def test_per_packet_hook_wallclock(benchmark):
    """Wall-clock cost of the FirstResponder hook itself (the Python
    analogue of the paper's 0.26 µs kernel measurement)."""
    from repro.cluster.cluster import Cluster, ClusterConfig
    from repro.cluster.packet import REQUEST, RpcPacket
    from repro.controllers.targets import TargetConfig
    from repro.core import SurgeGuardConfig
    from repro.core.firstresponder import FirstResponder
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry
    from repro.services.registry import get_workload

    sim = Simulator()
    app = get_workload("chain").build()
    cluster = Cluster(
        sim, app, ClusterConfig(cores_per_node=16, placement="pack"), RngRegistry(0)
    )
    targets = TargetConfig(
        expected_exec_metric={n: 1e-3 for n in app.service_names},
        expected_exec_time={n: 1e-3 for n in app.service_names},
        expected_time_from_start={n: 1e-3 for n in app.service_names},
        qos_target=10e-3,
    )
    fr = FirstResponder(sim, cluster.node_views[0], SurgeGuardConfig(), targets)
    pkt = RpcPacket(
        request_id=0, kind=REQUEST, src="client", dst="chain1", start_time=0.0
    )
    benchmark(fr.on_packet, pkt)
