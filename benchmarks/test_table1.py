"""Table I — controller comparison with measured update intervals."""

import math

from repro.experiments.table1_controllers import run_table1


def test_table1_controller_landscape(once, capsys):
    rows = once(run_table1)
    by_name = {r.controller: r for r in rows}

    # Shape claims of Table I.
    ml = by_name["ml-central"]
    parties = by_name["parties"]
    caladan = by_name["caladan"]
    sg = by_name["surgeguard"]
    assert ml.dependence_aware and not ml.distributed
    assert ml.measured_interval > 1.0  # ">1s"
    assert not parties.dependence_aware
    assert not caladan.dependence_aware
    assert sg.dependence_aware
    assert parties.distributed and caladan.distributed and sg.distributed

    # Measured granularities: Parties ≈ 500 ms; CaladanAlgo finer than
    # Parties; SurgeGuard's per-packet path in the sub-millisecond range
    # (the paper quotes ~0.2 ms).
    assert 0.3 <= parties.measured_interval <= 0.7
    assert caladan.measured_interval < parties.measured_interval
    assert sg.measured_interval < 1e-3
    assert sg.measured_interval < caladan.measured_interval

    with capsys.disabled():
        print("\n[Table I] controller landscape")
        for r in rows:
            m = "-" if math.isnan(r.measured_interval) else f"{r.measured_interval * 1e3:.3f}ms"
            print(
                f"  {r.controller:24s} dep-aware={str(r.dependence_aware):5s} "
                f"paper={r.paper_interval:22s} measured={m}"
            )
