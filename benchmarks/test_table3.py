"""Table III — workload inventory with scaled operating points."""

from repro.experiments.table3_workloads import run_table3


def test_table3_workload_inventory(once, capsys):
    rows = once(run_table3)
    by_action = {r.action: r for r in rows}

    # The paper's structural columns, verbatim.
    assert by_action["-"].depth == 5 and by_action["-"].threadpool == "512"
    assert by_action["ReadUserTimeline"].depth == 5
    assert by_action["ComposePost"].depth == 8
    assert by_action["searchHotel"].depth == 11
    assert by_action["recommendHotel"].depth == 5
    assert by_action["searchHotel"].rpc == "grpc"
    assert by_action["searchHotel"].threadpool == "inf"
    assert by_action["ReadUserTimeline"].rpc == "thrift"

    # The harness-derived QoS targets are sane (single-digit-to-tens of
    # milliseconds, above zero).
    for r in rows:
        assert 1e-3 < r.qos_target < 0.1

    with capsys.disabled():
        print("\n[Table III] workloads")
        for r in rows:
            print(
                f"  {r.workload:16s} {r.action:16s} depth={r.depth:2d} "
                f"{r.rpc:6s} pool={r.threadpool:4s} rate={r.base_rate:g}/s "
                f"qos={r.qos_target * 1e3:.1f}ms"
            )
