#!/usr/bin/env python3
"""Bring your own microservice application under SurgeGuard.

The reproduction is a library, not just a benchmark harness: any task
graph can be declared with :class:`ServiceSpec`/:class:`AppSpec`,
deployed on a simulated cluster, and managed by any controller.  This
example builds a small media-pipeline app (ingest → transcode ∥
thumbnail → store) with a mix of threading models, drives it with a
bursty Poisson workload, and compares controllers.

It also shows the lower-level API: building the cluster by hand,
attaching a controller manually, and reading per-container runtime
metrics while the simulation runs.

Run:  python examples/custom_application.py
"""

from repro import (
    AppSpec,
    ClusterConfig,
    Cluster,
    EdgeSpec,
    ExperimentConfig,
    NullController,
    RngRegistry,
    ServiceSpec,
    Simulator,
    SurgeGuardController,
    WorkDist,
)
from repro.analysis.render import format_table
from repro.experiments import run_experiment


def media_pipeline() -> AppSpec:
    """ingest → transcode ∥ thumbnail; transcode → store (fixed pool)."""
    return AppSpec(
        name="mediaPipeline",
        action="upload",
        services=(
            ServiceSpec(
                "ingest",
                pre_work=WorkDist(0.6e6),
                children=(EdgeSpec("transcode", None), EdgeSpec("thumbnail", None)),
                fanout="parallel",
                initial_cores=1.0,
            ),
            ServiceSpec(
                "transcode",
                pre_work=WorkDist(2.4e6, "lognormal", cv=0.4),  # heavy + variable
                children=(EdgeSpec("store", 6),),  # Little's-law pool (Eq. 1)
                initial_cores=2.5,
            ),
            ServiceSpec("thumbnail", pre_work=WorkDist(0.8e6), initial_cores=1.0),
            ServiceSpec("store", pre_work=WorkDist(1.0e6), initial_cores=1.0),
        ),
        root="ingest",
        qos_target=15e-3,
    )


def compare_controllers() -> None:
    print("== controller comparison on the custom app ==")
    rows = []
    for label, factory in (
        ("static", NullController),
        ("surgeguard", SurgeGuardController),
    ):
        result = run_experiment(
            ExperimentConfig(
                workload="media",
                app=media_pipeline(),
                base_rate=1000.0,
                controller_factory=factory,
                spike_magnitude=2.0,
                spike_len=1.5,
                spike_period=5.0,
                duration=10.0,
                warmup=3.0,
                cores_per_node=12.0,
                pacing="poisson",  # bursty arrivals
                seed=7,
            )
        )
        rows.append(
            (label, f"{result.violation_volume * 1e3:.2f}",
             f"{result.p98 * 1e3:.2f}", f"{result.avg_cores:.2f}")
        )
    print(format_table(["controller", "VV (ms·s)", "p98 (ms)", "cores"], rows))


def low_level_api() -> None:
    """Drive the substrate directly and watch queueBuildup live."""
    print("\n== low-level API: live queueBuildup during an overload ==")
    sim = Simulator()
    cluster = Cluster(
        sim,
        media_pipeline(),
        ClusterConfig(cores_per_node=12.0, placement="pack"),
        RngRegistry(3),
    )

    # Give 'transcode' spare compute so the *store* tier is the true
    # bottleneck — the overload then queues implicitly in transcode's
    # connection pool, the §III-B scenario.
    cluster.set_cores("transcode", 4.0)
    from repro.workload import OpenLoopClient, RateSchedule

    client = OpenLoopClient(sim, cluster, RateSchedule(2000.0), duration=2.0)
    client.begin()

    print(f"{'t':>5s}  " + "  ".join(f"{n:>10s}" for n in cluster.runtimes))
    for step in range(1, 5):
        sim.run(until=step * 0.5)
        qbs = {n: rt.collect().queue_buildup for n, rt in cluster.runtimes.items()}
        print(f"{sim.now:5.1f}  " + "  ".join(f"{qbs[n]:10.2f}" for n in qbs))
    print(
        "note: queueBuildup > 1 appears at 'transcode' (its pool to "
        "'store' is the hidden queue), not at 'store' itself — exactly "
        "the signal Escalator uses to upscale downstream."
    )


if __name__ == "__main__":
    compare_controllers()
    low_level_api()
