#!/usr/bin/env python3
"""Decentralized SurgeGuard across a multi-node cluster.

Fig. 1 of the paper: one SurgeGuard instance per node, no controller-to-
controller communication — upscaling hints ride on RPC packets.  This
example deploys searchHotel (depth 11) across 1, 2, and 4 nodes with
stage-alternating placement (every task-graph edge crosses nodes — the
worst case for anything that needed global knowledge) and shows that
QoS management keeps working while per-node controllers only ever touch
local containers.

Run:  python examples/multinode_decentralized.py
"""

from repro import ExperimentConfig, PartiesController, SurgeGuardController
from repro.analysis.render import format_table
from repro.experiments import run_experiment
from repro.services import get_workload
from repro.services.registry import node_budget


def main() -> None:
    workload = "searchHotel"
    app = get_workload(workload).build()
    per_node = float(node_budget(app, n_nodes=1))
    rows = []
    for n_nodes in (1, 2, 4):
        for label, factory in (
            ("parties", PartiesController),
            ("surgeguard", SurgeGuardController),
        ):
            result = run_experiment(
                ExperimentConfig(
                    workload=workload,
                    controller_factory=factory,
                    spike_magnitude=1.75,
                    spike_len=2.0,
                    spike_period=10.0,
                    duration=8.0,
                    warmup=3.0,
                    n_nodes=n_nodes,
                    cores_per_node=per_node,
                    placement="by_depth",  # every edge crosses nodes
                    seed=2,
                )
            )
            rows.append(
                (
                    n_nodes,
                    label,
                    f"{result.violation_volume * 1e3:.2f}",
                    f"{result.p98 * 1e3:.2f}",
                    f"{result.avg_cores:.2f}",
                    f"{result.energy:.1f}",
                )
            )
    print(f"searchHotel (depth {app.depth}) across 1/2/4 nodes, "
          f"{per_node:.0f} workload cores per node\n")
    print(
        format_table(
            ["nodes", "controller", "VV (ms·s)", "p98 (ms)", "cores", "energy (J)"],
            rows,
        )
    )
    print(
        "\nSurgeGuard stays effective as the app spreads out: hints reach\n"
        "remote downstream containers exclusively via the pkt.upscale field\n"
        "(there is no controller-to-controller channel to begin with)."
    )


if __name__ == "__main__":
    main()
