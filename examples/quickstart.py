#!/usr/bin/env python3
"""Quickstart: run one surge experiment and read the results.

This walks through the whole public API in ~40 lines:

1. pick a workload from the paper's Table III,
2. run it under a 1.75× surge with SurgeGuard and with the Parties
   baseline,
3. compare violation volume (the paper's headline metric), tail
   latency, cores, and energy.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, PartiesController, SurgeGuardController
from repro.experiments import run_experiment
from repro.analysis.render import format_table


def main() -> None:
    rows = []
    for label, factory in (
        ("parties", PartiesController),
        ("surgeguard", SurgeGuardController),
    ):
        cfg = ExperimentConfig(
            workload="chain",           # the CHAIN microbenchmark
            controller_factory=factory,
            spike_magnitude=1.75,       # surge rate = 1.75 × base (§VI-B)
            spike_len=2.0,              # 2 s surges...
            spike_period=10.0,          # ...every 10 s
            duration=10.0,              # measurement window
            warmup=3.0,
            seed=1,
        )
        result = run_experiment(cfg)
        rows.append(
            (
                label,
                f"{result.violation_volume * 1e3:.2f}",
                f"{result.p98 * 1e3:.2f}",
                f"{result.avg_cores:.2f}",
                f"{result.energy:.1f}",
            )
        )
        print(f"{label}: {result.summary}")

    print()
    print(format_table(["controller", "VV (ms·s)", "p98 (ms)", "cores", "energy (J)"], rows))
    vv = {r[0]: float(r[1]) for r in rows}
    print(
        f"\nSurgeGuard reduces violation volume by "
        f"{(1 - vv['surgeguard'] / vv['parties']) * 100:.1f}% vs Parties "
        f"(paper reports 61% on average at 1.75x surges)."
    )


if __name__ == "__main__":
    main()
