#!/usr/bin/env python3
"""Hidden-dependency deep dive on socialNetwork ReadUserTimeline.

This example reproduces the intuition behind the paper's Fig. 14 at the
level of individual services: under a fixed-size Thrift threadpool, a
surge queues *inside* user-timeline-service waiting for pool
connections.  We run the surge under Parties and under SurgeGuard and
print, per service:

* the queueBuildup ratio during the surge (where is the hidden queue?),
* core-allocation timelines (who got fed, who starved, what was revoked),
* the end-to-end latency timeline as a sparkline.

Run:  python examples/social_network_surge.py
"""

from collections import defaultdict

import numpy as np

from repro import ExperimentConfig, PartiesController, SurgeGuardController
from repro.analysis.render import format_table, sparkline
from repro.experiments import run_experiment
from repro.metrics.timeseries import StepSeries
from repro.services import get_workload

SURGE_START, SURGE_LEN = 5.0, 4.0


def run(factory):
    return run_experiment(
        ExperimentConfig(
            workload="readUserTimeline",
            controller_factory=factory,
            spike_magnitude=1.75,
            spike_len=SURGE_LEN,
            spike_period=1000.0,     # a single long surge
            spike_offset=SURGE_START - 3.0,
            duration=SURGE_LEN + 6.0,
            warmup=3.0,
            record_timelines=True,
            trace_runtimes=True,
            seed=1,
        )
    )


def alloc_timelines(result, app):
    initials = {s.name: s.initial_cores for s in app.services}
    series = {n: StepSeries(0.0, c) for n, c in initials.items()}
    for t, name, cores in sorted(result.alloc_events):
        if t > 0:
            series[name].append(t, cores)
    return series


def main() -> None:
    app = get_workload("readUserTimeline").build()
    surge = (SURGE_START, SURGE_START + SURGE_LEN)

    for label, factory in (
        ("Parties", PartiesController),
        ("SurgeGuard", SurgeGuardController),
    ):
        result = run(factory)
        print(f"\n=== {label} ===")
        print(f"violation volume: {result.violation_volume * 1e3:.2f} ms·s   "
              f"p98: {result.p98 * 1e3:.2f} ms   avg cores: {result.avg_cores:.2f}")

        # Per-service allocation during the surge.
        tls = alloc_timelines(result, app)
        rows = []
        for name in app.service_names:
            s = tls[name]
            rows.append(
                (
                    name,
                    f"{s.value_at(surge[0] - 0.5):.1f}",
                    f"{s.average(*surge):.2f}",
                    f"{max(v for _, v in s.changes()):.1f}",
                )
            )
        print(format_table(["service", "pre-surge", "surge avg", "peak"], rows))

        # End-to-end latency timeline.
        t = result.latency_trace[:, 0]
        lat = result.latency_trace[:, 1]
        if len(t):
            bins = np.linspace(t.min(), t.max(), 80)
            idx = np.digitize(t, bins)
            series = [
                lat[idx == i].mean() if (idx == i).any() else 0.0
                for i in range(1, len(bins))
            ]
            print(f"latency timeline  : {sparkline(series)}")
            print(f"surge window      : "
                  f"{' ' * int((surge[0] - t.min()) / (t.max() - t.min()) * 79)}"
                  f"{'^' * max(1, int(SURGE_LEN / (t.max() - t.min()) * 79))}")


if __name__ == "__main__":
    main()
