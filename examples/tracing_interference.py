#!/usr/bin/env python3
"""Root-causing an interference episode with the request tracer.

A co-located batch job steals memory bandwidth from the `profile`
service of hotelReservation/recommendHotel for two seconds (no
request-rate change!).  The span tracer's critical-path view pins the
lost time on the victim, and SurgeGuard's response is compared against
doing nothing.

Why recommendHotel: its gRPC connection-per-request model has no
connection pools, so span self-times are honest compute times.  On the
Thrift workloads the *upstream* services accumulate self-time while
waiting for pool connections — run this script with CHAIN and watch the
blame land on chain1 to see the hidden-queue effect from the tracing
side (that is precisely why the paper's queueBuildup metric exists).

Run:  python examples/tracing_interference.py
"""

from collections import Counter

from repro import (
    ClusterConfig,
    Cluster,
    ExperimentConfig,
    NullController,
    RateSchedule,
    RngRegistry,
    Simulator,
    SurgeGuardController,
)
from repro.cluster.interference import InterferenceInjector
from repro.cluster.tracing import RequestTracer
from repro.experiments.harness import profile_targets
from repro.metrics.violation import violation_volume
from repro.services import get_workload
from repro.workload import OpenLoopClient

WORKLOAD = "recommendHotel"
INTERFERENCE = dict(start=4.0, length=2.0, factor=0.4)
VICTIM = "profile"


def run(controller_factory, trace=False):
    sim = Simulator()
    profile = get_workload(WORKLOAD)
    app = profile.build()
    cluster = Cluster(
        sim, app, ClusterConfig(cores_per_node=12, placement="pack"), RngRegistry(9)
    )
    tracer = RequestTracer(cluster, max_requests=200_000) if trace else None
    InterferenceInjector(cluster).inject(VICTIM, **INTERFERENCE)

    cfg = ExperimentConfig(workload=WORKLOAD, duration=6.0, warmup=2.0,
                           spike_magnitude=None, profile_duration=2.0)
    targets = profile_targets(cfg)
    client = OpenLoopClient(
        sim, cluster, RateSchedule(profile.base_rate), duration=8.0
    )
    ctrl = controller_factory()
    ctrl.attach(sim, cluster, targets)
    client.begin()
    ctrl.start()
    sim.run(until=9.5)
    t, lat = client.stats.completed_arrays()
    vv = violation_volume(t, lat, targets.qos_target)
    return vv, tracer, t, lat, targets


def main() -> None:
    print(f"interference: {VICTIM} at {INTERFERENCE['factor']:.0%} speed "
          f"for {INTERFERENCE['length']}s (no load change)\n")

    vv_static, tracer, t, lat, targets = run(NullController, trace=True)

    # Blame analysis on requests arriving during the episode.
    window = (t >= INTERFERENCE["start"]) & (
        t < INTERFERENCE["start"] + INTERFERENCE["length"]
    )
    blame = Counter()
    n_traced = 0
    for rid in range(len(t)):
        if not window[rid]:
            continue
        path = tracer.critical_path(rid)
        if not path:
            continue
        n_traced += 1
        worst = max(path, key=lambda p: p[1])
        blame[worst[0]] += 1
    print("critical-path blame during the episode "
          f"({n_traced} traced requests):")
    for name, count in blame.most_common():
        print(f"  {name:18s} {count / n_traced:6.1%}")
    print(f"→ the tracer points at {blame.most_common(1)[0][0]} "
          f"(ground truth: {VICTIM})\n")

    vv_sg, *_ = run(SurgeGuardController)
    print(f"violation volume, static    : {vv_static * 1e3:9.2f} ms·s")
    print(f"violation volume, SurgeGuard: {vv_sg * 1e3:9.2f} ms·s "
          f"({(1 - vv_sg / vv_static) * 100:.1f}% lower)")


if __name__ == "__main__":
    main()
