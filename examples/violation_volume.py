#!/usr/bin/env python3
"""Violation volume (Fig. 3): why tail latency alone misleads.

The paper's C3 contribution is a metric that charges a QoS violation for
both its *magnitude* and its *duration*.  This example constructs the
exact Fig. 3 scenario — a short, tall latency spike (red) vs. a long,
shallow bump (blue) — and shows that P98/max latency and violation
volume rank them oppositely.  It runs in milliseconds (pure NumPy).

Run:  python examples/violation_volume.py
"""

import numpy as np

from repro.analysis.render import sparkline
from repro.metrics import summarize, violation_volume

QOS = 10e-3  # 10 ms end-to-end target


def make_traces():
    t = np.linspace(0.0, 20.0, 2000)
    base = 4e-3 + 0.3e-3 * np.sin(t)  # healthy steady state
    red = base.copy()
    red[np.abs(t - 10.0) < 0.25] = 40e-3  # 0.5 s spike to 40 ms
    blue = base.copy()
    blue[np.abs(t - 10.0) < 4.0] = 14e-3  # 8 s bump to 14 ms
    return t, red, blue


def main() -> None:
    t, red, blue = make_traces()
    for name, lat in (("red (short, tall)", red), ("blue (long, shallow)", blue)):
        s = summarize(t, lat, QOS)
        print(f"{name:22s} max={s.max * 1e3:5.1f}ms  p98={s.p98 * 1e3:5.1f}ms  "
              f"VV={s.violation_volume * 1e3:7.2f}ms·s  "
              f"violating for {s.violation_duration:.2f}s")
        print(f"{'':22s} {sparkline(lat[::25])}")

    vv_red = violation_volume(t, red, QOS)
    vv_blue = violation_volume(t, blue, QOS)
    assert red.max() > blue.max() and vv_red < vv_blue
    print(
        "\nRed has the worse tail latency, blue the worse violation volume —"
        "\nexactly Fig. 3: a controller optimized for tail latency alone"
        "\nwould chase the wrong incident."
    )


if __name__ == "__main__":
    main()
