"""SurgeGuard reproduction — fast and efficient vertical scaling for
microservices (SC'24, Ghosh / Yadwadkar / Erez).

Layout
------
``repro.sim``
    Deterministic discrete-event engine (clock, cancellable events,
    seeded RNG streams).
``repro.cluster``
    The simulated testbed: nodes, DVFS, processor-sharing containers,
    connection pools (both threading models), RPC fabric with
    SurgeGuard's packet metadata, runtime metrics, energy model.
``repro.services``
    The evaluated applications (CHAIN + four DeathStarBench actions).
``repro.workload``
    wrk2-style open-loop load generation with spike injection.
``repro.metrics``
    Violation volume (contribution C3), histograms, step timeseries.
``repro.controllers``
    Controller interface + baselines (Parties, CaladanAlgo, Oracle).
``repro.core``
    **SurgeGuard itself**: FirstResponder (per-packet fast path) and
    Escalator (execMetric/queueBuildup scoring + sensitivity-aware
    allocation), assembled per node.
``repro.experiments`` / ``repro.analysis``
    One driver per paper table/figure, plus the 17-run trimmed-mean
    protocol and normalization used in the evaluation.

Quickstart
----------
>>> from repro import ExperimentConfig, run_experiment, SurgeGuardController
>>> cfg = ExperimentConfig(workload="chain",
...                        controller_factory=SurgeGuardController,
...                        duration=6.0, warmup=2.0)
>>> result = run_experiment(cfg)          # doctest: +SKIP
>>> result.violation_volume               # doctest: +SKIP
"""

from repro.sim import PeriodicProcess, RngRegistry, Simulator
from repro.cluster import Cluster, ClusterConfig
from repro.services import AppSpec, EdgeSpec, ServiceSpec, WorkDist, get_workload
from repro.workload import OpenLoopClient, RateSchedule, Spike
from repro.metrics import (
    LatencyHistogram,
    LatencySummary,
    StepSeries,
    summarize,
    violation_volume,
)
from repro.controllers import (
    CaladanController,
    Controller,
    NullController,
    OracleController,
    PartiesController,
    TargetConfig,
)
from repro.core import (
    Escalator,
    FirstResponder,
    SensitivityTracker,
    SurgeGuardConfig,
    SurgeGuardController,
)
from repro.experiments import ExperimentConfig, ExperimentResult, run_experiment

__version__ = "1.0.0"

__all__ = [
    "AppSpec",
    "CaladanController",
    "Cluster",
    "ClusterConfig",
    "Controller",
    "EdgeSpec",
    "Escalator",
    "ExperimentConfig",
    "ExperimentResult",
    "FirstResponder",
    "LatencyHistogram",
    "LatencySummary",
    "NullController",
    "OpenLoopClient",
    "OracleController",
    "PartiesController",
    "PeriodicProcess",
    "RateSchedule",
    "RngRegistry",
    "SensitivityTracker",
    "ServiceSpec",
    "Simulator",
    "Spike",
    "StepSeries",
    "SurgeGuardConfig",
    "SurgeGuardController",
    "TargetConfig",
    "WorkDist",
    "get_workload",
    "run_experiment",
    "summarize",
    "violation_volume",
    "__version__",
]
