"""Result aggregation and presentation.

Implements the artifact's analysis protocol: 17 data points per (spike
pattern, controller) cell, drop the best and worst, average the
remaining 15 (:func:`trimmed_mean` / :func:`run_cell`); plus the
normalization used by Figs. 11–13 (everything relative to Parties) and
small text renderers for terminal figures.
"""

from repro.analysis.aggregate import (
    CellResult,
    default_reps,
    run_cell,
    trimmed_mean,
)
from repro.analysis.normalize import normalize_cells
from repro.analysis.render import bar_chart, format_table, sparkline

__all__ = [
    "CellResult",
    "bar_chart",
    "default_reps",
    "format_table",
    "normalize_cells",
    "run_cell",
    "sparkline",
    "trimmed_mean",
]
