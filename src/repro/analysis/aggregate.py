"""Repetition + outlier-trimming protocol (artifact §"Analysis").

"For each spike pattern, we collect 17 data-points for each controller.
While averaging these data-points, we exclude the best and worst
data-points to remove extreme outliers, and average the remaining 15."

Repetition count defaults to the ``REPRO_REPS`` environment variable so
the benchmark suite stays fast by default (1 rep) while the full paper
protocol (17) is one env var away.  With fewer than 3 reps nothing is
trimmed.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)

__all__ = ["CellResult", "default_reps", "run_cell", "trimmed_mean"]


def default_reps() -> int:
    """Repetitions per cell: ``REPRO_REPS`` env var, default 1, paper 17."""
    try:
        reps = int(os.environ.get("REPRO_REPS", "1"))
    except ValueError:
        raise ValueError("REPRO_REPS must be an integer") from None
    if reps < 1:
        raise ValueError("REPRO_REPS must be >= 1")
    return reps


def trimmed_mean(values: Sequence[float], trim: int = 1) -> float:
    """Mean after dropping the ``trim`` best and worst values.

    With ``len(values) <= 2·trim`` nothing is dropped (you cannot trim
    more than you have); this covers the fast default of 1 repetition.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("no values to average")
    if arr.size > 2 * trim:
        arr = arr[trim:-trim] if trim > 0 else arr
    return float(arr.mean())


@dataclass(frozen=True)
class CellResult:
    """Trimmed-mean metrics of one experiment cell."""

    workload: str
    controller: str
    reps: int
    violation_volume: float
    p98: float
    avg_cores: float
    energy: float
    #: Raw per-rep results (kept for figures that need traces).
    runs: tuple = dataclasses.field(default=(), repr=False)


def run_cell(
    cfg: ExperimentConfig,
    *,
    reps: Optional[int] = None,
    trim: int = 1,
    keep_runs: bool = False,
    jobs: Optional[int] = None,
) -> CellResult:
    """Run one cell ``reps`` times (seeds ``seed..seed+reps−1``) and trim.

    ``trim`` and ``reps`` interact: each metric drops the ``trim`` best
    and worst repetitions before averaging, so trimming needs at least
    ``2·trim + 1`` repetitions to leave anything.  The paper's default
    (``trim=1``) degrades gracefully — with 1 or 2 reps nothing is
    trimmed, which keeps the fast ``REPRO_REPS=1`` path meaningful — but
    a larger explicit ``trim`` that would discard *every* repetition is
    a configuration error and raises :class:`ValueError` instead of
    silently averaging untrimmed values.

    ``jobs > 1`` fans the repetitions out across worker processes
    (:mod:`repro.exec.pool`): the profiling pass runs once in the parent
    and is shipped to the workers, and results are bit-identical to
    serial execution (same seeds, same trimmed means).  Requires a
    picklable config — use :func:`repro.exec.specs.spec` controller
    factories, not lambdas.
    """
    n = default_reps() if reps is None else reps
    if trim < 0:
        raise ValueError(f"trim must be >= 0, got {trim}")
    if trim > 1 and n <= 2 * trim:
        raise ValueError(
            f"trim={trim} would discard all {n} repetition(s); "
            f"need reps >= {2 * trim + 1} (set REPRO_REPS or pass reps=)"
        )
    n_jobs = 1 if jobs is None else int(jobs)
    if n_jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if n_jobs > 1 and n > 1:
        from repro.exec.pool import run_reps

        results: List[ExperimentResult] = run_reps(cfg, n, jobs=n_jobs)
    else:
        results = []
        for i in range(n):
            results.append(
                run_experiment(dataclasses.replace(cfg, seed=cfg.seed + i))
            )
    return CellResult(
        workload=cfg.workload,
        controller=results[0].controller_name,
        reps=n,
        violation_volume=trimmed_mean([r.violation_volume for r in results], trim),
        p98=trimmed_mean([r.p98 for r in results], trim),
        avg_cores=trimmed_mean([r.avg_cores for r in results], trim),
        energy=trimmed_mean([r.energy for r in results], trim),
        runs=tuple(results) if keep_runs else (),
    )
