"""Normalization helpers for the Figs. 11–13 presentation.

The paper normalizes every metric to the Parties baseline ("All results
are normalized to Parties", Fig. 11; Figs. 12–13 show separate panels
normalized to Parties and to CaladanAlgo).  Values < 1 mean the subject
controller improves on the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.analysis.aggregate import CellResult

__all__ = ["NormalizedCell", "normalize_cells"]


@dataclass(frozen=True)
class NormalizedCell:
    """One controller's metrics relative to a baseline controller."""

    workload: str
    controller: str
    baseline: str
    violation_volume: float
    p98: float
    avg_cores: float
    energy: float


def _ratio(num: float, den: float) -> float:
    if den <= 0:
        # A perfect baseline (zero VV) makes the ratio meaningless;
        # surface it as infinity rather than hiding a division error.
        return float("inf") if num > 0 else 1.0
    return num / den


def normalize_cells(
    cells: Iterable[CellResult], baseline: CellResult
) -> Dict[str, NormalizedCell]:
    """Normalize each cell to ``baseline`` (same workload enforced)."""
    out: Dict[str, NormalizedCell] = {}
    for cell in cells:
        if cell.workload != baseline.workload:
            raise ValueError(
                f"cannot normalize {cell.workload!r} against {baseline.workload!r}"
            )
        out[cell.controller] = NormalizedCell(
            workload=cell.workload,
            controller=cell.controller,
            baseline=baseline.controller,
            violation_volume=_ratio(cell.violation_volume, baseline.violation_volume),
            p98=_ratio(cell.p98, baseline.p98),
            avg_cores=_ratio(cell.avg_cores, baseline.avg_cores),
            energy=_ratio(cell.energy, baseline.energy),
        )
    return out
