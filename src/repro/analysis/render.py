"""Plain-text rendering: tables, bars, sparklines.

The artifact's analysis step is manual; these helpers make every bench
target print the figure it regenerates directly in the terminal (and
into ``bench_output.txt``), so paper-vs-measured comparison needs no
plotting stack.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["bar_chart", "format_table", "sparkline"]

_SPARK = "▁▂▃▄▅▆▇█"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, lo: float = None, hi: float = None) -> str:
    """Unicode sparkline of a series (for latency timelines)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    lo = float(arr.min()) if lo is None else lo
    hi = float(arr.max()) if hi is None else hi
    if hi <= lo:
        return _SPARK[0] * arr.size
    idx = np.clip(
        ((arr - lo) / (hi - lo) * (len(_SPARK) - 1)).astype(int),
        0,
        len(_SPARK) - 1,
    )
    return "".join(_SPARK[i] for i in idx)


def bar_chart(
    labels: Sequence[str], values: Sequence[float], *, width: int = 40, unit: str = ""
) -> str:
    """Horizontal text bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must match")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    peak = float(np.abs(arr).max()) or 1.0
    wl = max(len(l) for l in labels)
    lines: List[str] = []
    for label, v in zip(labels, arr):
        n = int(round(abs(v) / peak * width))
        lines.append(f"{label.ljust(wl)} | {'█' * n} {v:.3g}{unit}")
    return "\n".join(lines)
