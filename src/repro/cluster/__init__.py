"""Simulated microservice cluster substrate.

This subpackage stands in for the paper's physical testbed (4× Xeon 6242
nodes running DeathStarBench under Docker).  It provides:

* :class:`~repro.cluster.node.Node` — cores, a per-container DVFS domain,
  and the RX-side hook point where FirstResponder attaches.
* :class:`~repro.cluster.container.Container` — a processor-sharing
  execution model: ``n`` active compute phases on ``c`` allocated cores at
  frequency ``f`` each progress at ``f · min(1, c/n)`` cycles/s.
* :class:`~repro.cluster.threadpool.ConnectionPool` — caller-side
  connection pools implementing both threading models from §II-A of the
  paper (fixed-size pool vs. connection-per-request).
* :class:`~repro.cluster.network.Network` — RPC packet delivery with
  configurable intra/inter-node latency and injectable latency surges.
* :class:`~repro.cluster.runtime.ContainerRuntime` — the per-container
  metric collection (execTime, timeWaitingForFreeConn, execMetric,
  queueBuildup) that the paper's modified DeathStarBench reports to the
  controllers over shared files.
* :class:`~repro.cluster.energy.EnergyModel` — integrated core power with
  idle subtraction, mirroring the paper's ``perf``-based measurement.
* :class:`~repro.cluster.cluster.Cluster` — assembly, placement, and the
  controller-facing allocation API (with per-node local views preserving
  SurgeGuard's decentralization).
"""

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.container import Container
from repro.cluster.energy import EnergyModel
from repro.cluster.frequency import DvfsModel
from repro.cluster.interference import InterferenceInjector, InterferenceWindow
from repro.cluster.network import Network, NetworkConfig
from repro.cluster.node import Node
from repro.cluster.packet import RpcPacket
from repro.cluster.runtime import ContainerRuntime, RuntimeWindow
from repro.cluster.threadpool import ConnectionPool
from repro.cluster.tracing import RequestTracer, Span

__all__ = [
    "Cluster",
    "ClusterConfig",
    "Container",
    "ConnectionPool",
    "ContainerRuntime",
    "DvfsModel",
    "EnergyModel",
    "InterferenceInjector",
    "InterferenceWindow",
    "Network",
    "NetworkConfig",
    "Node",
    "RequestTracer",
    "RpcPacket",
    "RuntimeWindow",
    "Span",
]
