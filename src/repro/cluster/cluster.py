"""Cluster assembly and the controller-facing API.

:class:`Cluster` turns an :class:`~repro.services.taskgraph.AppSpec` into
a running system: nodes with core budgets, one container + runtime +
service instance per service, caller-side connection pools per edge, and
a network with the client attached as an external endpoint.

Controllers interact with the cluster in two ways:

* **Global view** (used by the centralized-ish baselines Parties and
  CaladanAlgo, which the paper runs per node but which in practice treat
  containers independently anyway): :meth:`Cluster.set_cores`,
  :meth:`Cluster.set_frequency`, :attr:`Cluster.runtimes`.
* **Per-node local view** (:class:`NodeView`) — the *only* interface the
  SurgeGuard implementation receives.  A NodeView exposes exactly what a
  per-node daemon could know: the containers placed on that node, their
  runtimes, the node's free cores, and the same-node downstream-map
  derived from static task-graph knowledge shipped in the config file
  (the artifact's ``controllers/sample_config``).  Tests assert that
  SurgeGuard never touches remote containers through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.cluster.container import Container
from repro.cluster.energy import EnergyModel
from repro.cluster.frequency import DvfsModel
from repro.cluster.invocation import ServiceInstance
from repro.cluster.loadbalancer import (
    DOWN,
    DRAINING,
    LB_POLICIES,
    READY,
    WARMING,
    Replica,
    ReplicaSet,
    make_policy,
    replica_name,
)
from repro.cluster.network import Network, NetworkConfig
from repro.cluster.node import Node
from repro.cluster.packet import REQUEST, RpcPacket
from repro.cluster.placement import (
    by_depth,
    expand_depths,
    expand_replicas,
    pack_first,
    round_robin,
)
from repro.cluster.runtime import ContainerRuntime
from repro.cluster.threadpool import ConnectionPool
from repro.services.taskgraph import AppSpec

__all__ = ["Cluster", "ClusterConfig", "NodeView"]

CLIENT = "client"


@dataclass(frozen=True)
class ClusterConfig:
    """Static configuration of a simulated cluster."""

    n_nodes: int = 1
    #: Workload cores per node (the paper's 52; experiments here default
    #: to smaller nodes with proportionally smaller request rates).
    cores_per_node: float = 16.0
    dvfs: DvfsModel = field(default_factory=DvfsModel)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    #: ``"pack"``, ``"round_robin"``, or ``"by_depth"`` (see placement module).
    placement: str = "round_robin"
    #: Initial per-container frequency; ``None`` = DVFS floor (paper: 1.6 GHz).
    initial_frequency: Optional[float] = None
    #: Connection-establishment latency for connection-per-request edges.
    conn_setup_latency: float = 20e-6
    #: Keep per-request traces in runtimes (figures/tests only).
    trace_runtimes: bool = False
    #: Record (t, container, value) allocation/frequency change events
    #: (Fig. 14 timelines).
    record_timelines: bool = False
    #: ``None`` = legacy unreplicated routing (no LB tier at all).  An
    #: int ``>= 1`` arms the replica tier with that many initial replicas
    #: per service; ``replicas=1`` is the bit-identical pass-through seam.
    replicas: Optional[int] = None
    #: Load-balancing policy for the replica tier (see
    #: :mod:`repro.cluster.loadbalancer`).
    lb_policy: str = "round_robin"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if self.placement not in ("pack", "round_robin", "by_depth"):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.replicas is not None and self.replicas < 1:
            raise ValueError("replicas must be >= 1 when set")
        if self.lb_policy not in LB_POLICIES:
            raise ValueError(f"unknown lb_policy {self.lb_policy!r}")


class NodeView:
    """The strictly-local view a per-node SurgeGuard daemon gets.

    All mutation goes through the hosting node's budget checks; all
    reads are limited to containers placed on this node.
    """

    def __init__(self, cluster: "Cluster", node: Node):
        self._cluster = cluster
        self.node = node

    @property
    def container_names(self) -> List[str]:
        """Containers on this node."""
        return list(self.node.containers)

    @property
    def free_cores(self) -> float:
        """This node's unallocated cores."""
        return self.node.free_cores

    def container(self, name: str) -> Container:
        """Local container lookup; raises ``KeyError`` for remote names."""
        return self.node.containers[name]

    def runtime(self, name: str) -> ContainerRuntime:
        """Runtime of a local container; raises ``KeyError`` otherwise."""
        if name not in self.node.containers:
            raise KeyError(f"{name!r} is not on node {self.node.name!r}")
        return self._cluster.runtimes[name]

    def local_downstream(self, name: str) -> List[str]:
        """Downstream containers of ``name`` that live on *this* node.

        Task-graph adjacency is static configuration (shipped in the
        artifact's config files), so knowing it does not violate
        decentralization; the filter to same-node containers does the
        rest.  ``name`` may be a replica endpoint; downstream services
        expand to their same-node replicas (child order, then replica
        index — the identity ordering at replicas=1).
        """
        cl = self._cluster
        containers = self.node.containers
        out = []
        for d in cl.app.downstream_of(cl.service_of(name)):
            for rep in cl.replicas_of(d):
                if rep in containers:
                    out.append(rep)
        return out

    def set_cores(self, name: str, cores: float) -> None:
        """Adjust a *local* container's allocation (budget-checked)."""
        if name not in self.node.containers:
            raise KeyError(f"{name!r} is not on node {self.node.name!r}")
        self._cluster.set_cores(name, cores)

    def set_frequency(self, name: str, frequency: float) -> None:
        """Adjust a *local* container's frequency."""
        if name not in self.node.containers:
            raise KeyError(f"{name!r} is not on node {self.node.name!r}")
        self._cluster.set_frequency(name, frequency)

    def add_rx_hook(self, hook: Callable[[RpcPacket], None], *, cost: float = 0.0) -> None:
        """Attach a FirstResponder-style RX hook on this node."""
        self.node.add_rx_hook(hook, cost=cost)


class Cluster:
    """A deployed application on a set of simulated nodes.

    Parameters
    ----------
    sim:
        The simulator.
    app:
        Application specification.
    config:
        Cluster configuration.
    rng:
        RNG registry; streams ``work.<service>`` and ``network`` are used.
    """

    def __init__(
        self,
        sim: Simulator,
        app: AppSpec,
        config: ClusterConfig,
        rng: RngRegistry,
    ):
        self.sim = sim
        self.app = app
        self.config = config
        self.rng = rng
        self.energy_model = EnergyModel(config.dvfs)

        self.nodes: List[Node] = [
            Node(sim, f"node{i}", config.cores_per_node, config.dvfs)
            for i in range(config.n_nodes)
        ]
        self.network = Network(sim, config.network, rng.stream("network"))

        armed = config.replicas is not None
        n_reps = config.replicas if armed else 1
        # expand_replicas/expand_depths are the identity at n_reps=1, so
        # the unreplicated placement maps are reproduced byte-for-byte.
        names = expand_replicas(app.service_names, n_reps)
        if config.placement == "pack":
            placement = pack_first(names, config.n_nodes)
        elif config.placement == "round_robin":
            placement = round_robin(names, config.n_nodes)
        else:
            placement = by_depth(expand_depths(app.depths(), n_reps), config.n_nodes)
        self.placement: Dict[str, int] = placement

        self.containers: Dict[str, Container] = {}
        self.runtimes: Dict[str, ContainerRuntime] = {}
        self.instances: Dict[str, ServiceInstance] = {}
        self._spec_of = {s.name: s for s in app.services}
        #: Replica endpoint name -> service name (entries only for the
        #: numbered replicas; replica 0 *is* the service).
        self._service_of: Dict[str, str] = {}
        #: ``None`` until replication is armed — the LB tier then holds
        #: one :class:`ReplicaSet` per service.
        self.replica_sets: Optional[Dict[str, ReplicaSet]] = (
            {} if armed else None
        )

        for spec in app.services:
            rset = None
            if armed:
                rset = ReplicaSet(spec.name, make_policy(config.lb_policy))
                self.replica_sets[spec.name] = rset
            for k in range(n_reps):
                rname = replica_name(spec.name, k)
                if k:
                    self._service_of[rname] = spec.name
                node = self.nodes[placement[rname]]
                container, instance = self._deploy(spec, rname, node)
                if armed:
                    rset.add(
                        Replica(rname, spec.name, k, READY, container, instance, node)
                    )
                    self.network.add_virtual(rname, rset)

        self.network.register(CLIENT, None, self._client_rx)

        #: Allocation / frequency change logs for timeline figures.
        self.alloc_events: List[Tuple[float, str, float]] = []
        self.freq_events: List[Tuple[float, str, float]] = []
        if config.record_timelines:
            for name, c in self.containers.items():
                self.alloc_events.append((sim.now, name, c.cores))
                self.freq_events.append((sim.now, name, c.frequency))

        self._views = [NodeView(self, n) for n in self.nodes]
        #: ``None`` = unsharded (every node is local).  A sharded worker
        #: restricts this via :meth:`set_local_nodes`; remote nodes'
        #: containers then exist only as idle routing stubs.
        self._local_nodes: Optional[frozenset] = None
        self._ingress_count = 0
        #: Optional :class:`repro.faults.rpc.RpcCaller` installed by a
        #: fault injector; ``None`` keeps ingress on the direct path.
        self.rpc = None

    # ------------------------------------------------------------ deployment
    def _deploy(self, spec, rname: str, node: Node):
        """Build one replica's container/runtime/pools/instance and
        register its network endpoint.  Replica 0 of an unreplicated (or
        replicas=1) cluster reproduces the legacy construction exactly:
        same names, same ``work.<service>`` RNG stream, same order."""
        sim, config = self.sim, self.config
        container = Container(
            sim, rname, config.dvfs,
            cores=spec.initial_cores, frequency=config.initial_frequency,
        )
        node.add_container(container)
        runtime = ContainerRuntime(sim, rname, trace=config.trace_runtimes)
        pools = {
            e.child: ConnectionPool(
                sim,
                e.pool_size,
                setup_latency=config.conn_setup_latency,
                name=f"{rname}->{e.child}",
            )
            for e in spec.children
        }
        instance = ServiceInstance(
            sim, spec, container, runtime, self.network, pools,
            self.rng.stream(f"work.{rname}"), name=rname,
        )
        self.containers[rname] = container
        self.runtimes[rname] = runtime
        self.instances[rname] = instance
        self.network.register(rname, node, instance.handle_packet)
        return container, instance

    # ----------------------------------------------------------------- views
    @property
    def node_views(self) -> List[NodeView]:
        """One local view per node — SurgeGuard's only interface.

        On a sharded worker (:meth:`set_local_nodes`) only this shard's
        nodes are listed, so per-node controller daemons exist exactly
        once across the fleet — on the shard that owns their node.
        """
        return list(self._views)

    # ---------------------------------------------------------------- sharding
    def set_local_nodes(self, indices) -> None:
        """Restrict this cluster object to a shard's node subset.

        Every shard builds the *full* cluster identically (same
        endpoint registry, same placement, same RNG stream creation
        order — that is what keeps routing and seeding deterministic);
        this call then marks which nodes are actually simulated here.
        Controller views shrink to the local nodes, and the metric
        merge reads only local containers, so remote stubs (which never
        receive work) contribute nothing twice.
        """
        local = frozenset(indices)
        if not local <= set(range(len(self.nodes))):
            raise ValueError(f"unknown node indices {sorted(local)!r}")
        self._local_nodes = local
        self._views = [
            NodeView(self, n) for i, n in enumerate(self.nodes) if i in local
        ]

    @property
    def local_node_indices(self) -> List[int]:
        """Indices of the nodes simulated on this shard (all, unsharded)."""
        if self._local_nodes is None:
            return list(range(len(self.nodes)))
        return sorted(self._local_nodes)

    def local_containers(self) -> List[str]:
        """Names of containers hosted on this shard's nodes.

        The sharded metric merge sums accounting integrals over exactly
        these, per shard — each container is local to one shard, so the
        union is a partition of the fleet.
        """
        if self._local_nodes is None:
            return list(self.containers)
        local = self._local_nodes
        return [name for name, i in self.placement.items() if i in local]

    def node_of(self, container_name: str) -> Node:
        """The node hosting ``container_name``."""
        return self.nodes[self.placement[container_name]]

    # -------------------------------------------------------------- replicas
    #: Draining replicas are reaped only after this long with zero
    #: in-flight work — generously covers network flight time, so a
    #: packet dispatched just before the drain decision always lands.
    REAP_GRACE = 0.25

    def service_of(self, container_name: str) -> str:
        """The service a container (replica) endpoint belongs to."""
        return self._service_of.get(container_name, container_name)

    def replicas_of(self, service: str) -> List[str]:
        """Replica endpoint names of ``service`` in index order
        (``[service]`` itself when replication is unarmed)."""
        if self.replica_sets is None:
            return [service]
        return [r.name for r in self.replica_sets[service].replicas]

    def _best_node(self, need: float) -> Optional[Node]:
        """Most-free node with room for ``need`` cores (tie: lowest index)."""
        best = max(
            range(len(self.nodes)),
            key=lambda i: (self.nodes[i].free_cores, -i),
        )
        node = self.nodes[best]
        return node if node.free_cores + 1e-9 >= need else None

    def _schedule_ready(self, replica: Replica, delay: float) -> None:
        if delay <= 0.0:
            replica.state = READY
            replica.ready_at = self.sim.now
            return

        def _ready() -> None:
            if replica.state == WARMING:
                replica.state = READY
                replica.ready_at = self.sim.now

        self.sim.schedule(delay, _ready)

    def scale_out(self, service: str, ready_delay: float = 0.0) -> Optional[str]:
        """Add one replica of ``service``; returns its endpoint name.

        Preference order: un-drain a DRAINING replica (still warm — no
        spin-up), revive a reaped slot, else launch a fresh replica.
        New and revived replicas spend ``ready_delay`` WARMING — holding
        their cores but receiving no traffic (the spin-up cost the paper
        charges horizontal scaling with).  Returns ``None`` when no node
        can fit the replica's initial cores.
        """
        if self.replica_sets is None:
            raise RuntimeError("scale_out requires a replica-armed cluster")
        rset = self.replica_sets[service]
        for r in rset.replicas:
            if r.state == DRAINING:
                r.state = READY
                r.draining_since = -1.0
                return r.name
        for r in rset.replicas:
            if r.state == DOWN:
                return self._revive(r, ready_delay)
        return self._launch(service, ready_delay)

    def _launch(self, service: str, ready_delay: float) -> Optional[str]:
        spec = self._spec_of[service]
        node = self._best_node(spec.initial_cores)
        if node is None:
            return None
        rset = self.replica_sets[service]
        idx = len(rset.replicas)
        rname = replica_name(service, idx)
        self.placement[rname] = self.nodes.index(node)
        self._service_of[rname] = service
        container, instance = self._deploy(spec, rname, node)
        replica = Replica(rname, service, idx, WARMING, container, instance, node)
        rset.add(replica)
        self.network.add_virtual(rname, rset)
        if self.config.record_timelines:
            self.alloc_events.append((self.sim.now, rname, container.cores))
            self.freq_events.append((self.sim.now, rname, container.frequency))
        self._schedule_ready(replica, ready_delay)
        return rname

    def _revive(self, r: Replica, ready_delay: float) -> Optional[str]:
        spec = self._spec_of[r.service]
        node = self._best_node(spec.initial_cores)
        if node is None:
            return None
        r.container.set_cores(spec.initial_cores)  # fresh-pod allocation
        r.container.recommission()
        node.add_container(r.container)
        r.node = node
        self.placement[r.name] = self.nodes.index(node)
        r.instance.restart()
        r.state = WARMING
        if self.config.record_timelines:
            self.alloc_events.append((self.sim.now, r.name, r.container.cores))
        self._schedule_ready(r, ready_delay)
        return r.name

    def scale_in(self, service: str) -> Optional[str]:
        """Start draining the highest-index READY replica of ``service``.

        Replica 0 (the service-named endpoint) is never drained — it is
        the determinism anchor and the minimum deployment.  Returns the
        draining replica's name, or ``None`` if nothing is eligible.
        """
        if self.replica_sets is None:
            raise RuntimeError("scale_in requires a replica-armed cluster")
        rset = self.replica_sets[service]
        pick = None
        for r in rset.replicas:
            if r.state == READY and r.idx > 0:
                if pick is None or r.idx > pick.idx:
                    pick = r
        if pick is None:
            return None
        pick.state = DRAINING
        pick.draining_since = self.sim.now
        return pick.name

    def reap_draining(self, grace: Optional[float] = None) -> int:
        """Decommission idle DRAINING replicas past the grace period.

        Their cores return to the node budget and their accounting
        integrals freeze; the endpoint registration survives so a later
        scale-out can revive the slot.  Returns the number reaped.
        """
        if self.replica_sets is None:
            return 0
        g = self.REAP_GRACE if grace is None else grace
        now = self.sim.now
        reaped = 0
        for rset in self.replica_sets.values():
            for r in rset.replicas:
                if (
                    r.state == DRAINING
                    and r.instance.inflight == 0
                    and now - r.draining_since >= g
                ):
                    r.node.remove_container(r.name)
                    r.container.decommission()
                    r.instance.shutdown()
                    r.state = DOWN
                    r.node = None
                    if self.config.record_timelines:
                        self.alloc_events.append((now, r.name, 0.0))
                    reaped += 1
        return reaped

    # ------------------------------------------------------------- controller
    def set_cores(self, name: str, cores: float) -> None:
        """Set a container's core allocation (node budget enforced)."""
        self.node_of(name).set_cores(name, cores)
        if self.config.record_timelines:
            self.alloc_events.append((self.sim.now, name, cores))

    def set_frequency(self, name: str, frequency: float) -> None:
        """Set a container's DVFS level."""
        before = self.containers[name].frequency
        self.containers[name].set_frequency(frequency)
        after = self.containers[name].frequency
        if self.config.record_timelines and after != before:
            self.freq_events.append((self.sim.now, name, after))

    # --------------------------------------------------------------- ingress
    def client_send(
        self,
        request_id: int,
        on_response: Callable[[RpcPacket], None],
        *,
        upscale: int = 0,
        on_error: Optional[Callable[[RpcPacket], None]] = None,
    ) -> None:
        """Inject one end-to-end request at the application root.

        ``start_time`` is stamped now — the simulation equivalent of the
        first container setting it, since the client→root hop is part of
        the end-to-end budget either way.

        ``on_error`` fires instead of ``on_response`` when the RPC
        resilience layer is armed and the call exhausts its retries; it
        defaults to ``on_response`` with a synthetic ``error=True``
        response so legacy callers still observe a completion.
        """
        self._ingress_count += 1
        if self.rpc is None:
            # Direct path: the packet's ownership is unambiguous (the
            # serving instance releases it at completion), so it comes
            # from the pool.
            self.network.send(
                self.network.pool.acquire(
                    request_id,
                    REQUEST,
                    CLIENT,
                    self.app.root,
                    self.sim.now,
                    upscale,
                    context=on_response,
                )
            )
            return
        # RPC path: the caller retains the packet across retry attempts
        # while a slow server may still hold the same object (duplicated
        # server work is real and intended), so requests stay unmanaged.
        pkt = RpcPacket(
            request_id=request_id,
            kind=REQUEST,
            src=CLIENT,
            dst=self.app.root,
            start_time=self.sim.now,
            upscale=upscale,
        )
        if on_error is None:
            def on_error(failed: RpcPacket) -> None:
                on_response(failed.make_response(src=self.app.root, error=True))
        self.rpc.call(pkt, on_response, on_error)

    def client_sender(self) -> Callable[[int, Callable[[RpcPacket], None]], None]:
        """Prebound direct-path ingress for per-arrival hot loops.

        Binds the pool, network, root, and clock once so the open-loop
        client's injection path skips the attribute chains and keyword
        plumbing of :meth:`client_send` on every request.  Identical
        observable behavior (same acquire/send sequence, same
        ``ingress_count`` accounting); only valid while ``self.rpc`` is
        ``None`` — armed-fault runs must keep calling
        :meth:`client_send`, which callers check per injection exactly as
        before.
        """
        acquire = self.network.pool.acquire
        send = self.network.send
        root = self.app.root
        sim = self.sim

        def sender(
            request_id: int, on_response: Callable[[RpcPacket], None]
        ) -> None:
            self._ingress_count += 1
            send(
                acquire(
                    request_id,
                    REQUEST,
                    CLIENT,
                    root,
                    sim.now,
                    0,
                    context=on_response,
                )
            )

        return sender

    @staticmethod
    def _client_rx(pkt: RpcPacket) -> None:
        if pkt.context is None:  # pragma: no cover - wiring bug guard
            raise RuntimeError("client response without completion context")
        pkt.context(pkt)

    @property
    def ingress_count(self) -> int:
        """End-to-end requests injected via :meth:`client_send` so far."""
        return self._ingress_count

    # ------------------------------------------------------------ accounting
    def allocations(self) -> Dict[str, float]:
        """Instantaneous {container: allocated cores} snapshot.

        Reaped (decommissioned) replicas report 0.0 — their cores are
        back in the node budget, and the fingerprint should say so.
        """
        return {
            name: 0.0 if c.decommissioned else c.cores
            for name, c in self.containers.items()
        }

    def frequencies(self) -> Dict[str, float]:
        """Instantaneous {container: frequency in Hz} snapshot."""
        return {name: c.frequency for name, c in self.containers.items()}

    def sync_all(self) -> None:
        """Flush all containers' lazy accounting up to the current time."""
        for c in self.containers.values():
            c.sync()

    def total_energy(self) -> float:
        """Idle-subtracted application energy in joules (syncs first)."""
        self.sync_all()
        return self.energy_model.total_energy(self.containers.values())

    def average_cores(self, elapsed: float) -> float:
        """Time-averaged total allocated cores over ``elapsed`` seconds."""
        if elapsed <= 0:
            raise ValueError("elapsed must be positive")
        self.sync_all()
        return sum(c.alloc_core_seconds for c in self.containers.values()) / elapsed

    @property
    def total_allocated(self) -> float:
        """Instantaneous total allocated cores across all nodes."""
        return sum(n.allocated for n in self.nodes)
