"""Cluster assembly and the controller-facing API.

:class:`Cluster` turns an :class:`~repro.services.taskgraph.AppSpec` into
a running system: nodes with core budgets, one container + runtime +
service instance per service, caller-side connection pools per edge, and
a network with the client attached as an external endpoint.

Controllers interact with the cluster in two ways:

* **Global view** (used by the centralized-ish baselines Parties and
  CaladanAlgo, which the paper runs per node but which in practice treat
  containers independently anyway): :meth:`Cluster.set_cores`,
  :meth:`Cluster.set_frequency`, :attr:`Cluster.runtimes`.
* **Per-node local view** (:class:`NodeView`) — the *only* interface the
  SurgeGuard implementation receives.  A NodeView exposes exactly what a
  per-node daemon could know: the containers placed on that node, their
  runtimes, the node's free cores, and the same-node downstream-map
  derived from static task-graph knowledge shipped in the config file
  (the artifact's ``controllers/sample_config``).  Tests assert that
  SurgeGuard never touches remote containers through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.cluster.container import Container
from repro.cluster.energy import EnergyModel
from repro.cluster.frequency import DvfsModel
from repro.cluster.invocation import ServiceInstance
from repro.cluster.network import Network, NetworkConfig
from repro.cluster.node import Node
from repro.cluster.packet import REQUEST, RpcPacket
from repro.cluster.placement import by_depth, pack_first, round_robin
from repro.cluster.runtime import ContainerRuntime
from repro.cluster.threadpool import ConnectionPool
from repro.services.taskgraph import AppSpec

__all__ = ["Cluster", "ClusterConfig", "NodeView"]

CLIENT = "client"


@dataclass(frozen=True)
class ClusterConfig:
    """Static configuration of a simulated cluster."""

    n_nodes: int = 1
    #: Workload cores per node (the paper's 52; experiments here default
    #: to smaller nodes with proportionally smaller request rates).
    cores_per_node: float = 16.0
    dvfs: DvfsModel = field(default_factory=DvfsModel)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    #: ``"pack"``, ``"round_robin"``, or ``"by_depth"`` (see placement module).
    placement: str = "round_robin"
    #: Initial per-container frequency; ``None`` = DVFS floor (paper: 1.6 GHz).
    initial_frequency: Optional[float] = None
    #: Connection-establishment latency for connection-per-request edges.
    conn_setup_latency: float = 20e-6
    #: Keep per-request traces in runtimes (figures/tests only).
    trace_runtimes: bool = False
    #: Record (t, container, value) allocation/frequency change events
    #: (Fig. 14 timelines).
    record_timelines: bool = False

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if self.placement not in ("pack", "round_robin", "by_depth"):
            raise ValueError(f"unknown placement {self.placement!r}")


class NodeView:
    """The strictly-local view a per-node SurgeGuard daemon gets.

    All mutation goes through the hosting node's budget checks; all
    reads are limited to containers placed on this node.
    """

    def __init__(self, cluster: "Cluster", node: Node):
        self._cluster = cluster
        self.node = node

    @property
    def container_names(self) -> List[str]:
        """Containers on this node."""
        return list(self.node.containers)

    @property
    def free_cores(self) -> float:
        """This node's unallocated cores."""
        return self.node.free_cores

    def container(self, name: str) -> Container:
        """Local container lookup; raises ``KeyError`` for remote names."""
        return self.node.containers[name]

    def runtime(self, name: str) -> ContainerRuntime:
        """Runtime of a local container; raises ``KeyError`` otherwise."""
        if name not in self.node.containers:
            raise KeyError(f"{name!r} is not on node {self.node.name!r}")
        return self._cluster.runtimes[name]

    def local_downstream(self, name: str) -> List[str]:
        """Downstream containers of ``name`` that live on *this* node.

        Task-graph adjacency is static configuration (shipped in the
        artifact's config files), so knowing it does not violate
        decentralization; the filter to same-node containers does the
        rest.
        """
        return [
            d
            for d in self._cluster.app.downstream_of(name)
            if d in self.node.containers
        ]

    def set_cores(self, name: str, cores: float) -> None:
        """Adjust a *local* container's allocation (budget-checked)."""
        if name not in self.node.containers:
            raise KeyError(f"{name!r} is not on node {self.node.name!r}")
        self._cluster.set_cores(name, cores)

    def set_frequency(self, name: str, frequency: float) -> None:
        """Adjust a *local* container's frequency."""
        if name not in self.node.containers:
            raise KeyError(f"{name!r} is not on node {self.node.name!r}")
        self._cluster.set_frequency(name, frequency)

    def add_rx_hook(self, hook: Callable[[RpcPacket], None], *, cost: float = 0.0) -> None:
        """Attach a FirstResponder-style RX hook on this node."""
        self.node.add_rx_hook(hook, cost=cost)


class Cluster:
    """A deployed application on a set of simulated nodes.

    Parameters
    ----------
    sim:
        The simulator.
    app:
        Application specification.
    config:
        Cluster configuration.
    rng:
        RNG registry; streams ``work.<service>`` and ``network`` are used.
    """

    def __init__(
        self,
        sim: Simulator,
        app: AppSpec,
        config: ClusterConfig,
        rng: RngRegistry,
    ):
        self.sim = sim
        self.app = app
        self.config = config
        self.rng = rng
        self.energy_model = EnergyModel(config.dvfs)

        self.nodes: List[Node] = [
            Node(sim, f"node{i}", config.cores_per_node, config.dvfs)
            for i in range(config.n_nodes)
        ]
        self.network = Network(sim, config.network, rng.stream("network"))

        names = app.service_names
        if config.placement == "pack":
            placement = pack_first(names, config.n_nodes)
        elif config.placement == "round_robin":
            placement = round_robin(names, config.n_nodes)
        else:
            placement = by_depth(app.depths(), config.n_nodes)
        self.placement: Dict[str, int] = placement

        f0 = config.initial_frequency
        self.containers: Dict[str, Container] = {}
        self.runtimes: Dict[str, ContainerRuntime] = {}
        self.instances: Dict[str, ServiceInstance] = {}

        for spec in app.services:
            node = self.nodes[placement[spec.name]]
            container = Container(
                sim, spec.name, config.dvfs, cores=spec.initial_cores, frequency=f0
            )
            node.add_container(container)
            runtime = ContainerRuntime(sim, spec.name, trace=config.trace_runtimes)
            pools = {
                e.child: ConnectionPool(
                    sim,
                    e.pool_size,
                    setup_latency=config.conn_setup_latency,
                    name=f"{spec.name}->{e.child}",
                )
                for e in spec.children
            }
            instance = ServiceInstance(
                sim, spec, container, runtime, self.network, pools,
                rng.stream(f"work.{spec.name}"),
            )
            self.containers[spec.name] = container
            self.runtimes[spec.name] = runtime
            self.instances[spec.name] = instance
            self.network.register(spec.name, node, instance.handle_packet)

        self.network.register(CLIENT, None, self._client_rx)

        #: Allocation / frequency change logs for timeline figures.
        self.alloc_events: List[Tuple[float, str, float]] = []
        self.freq_events: List[Tuple[float, str, float]] = []
        if config.record_timelines:
            for name, c in self.containers.items():
                self.alloc_events.append((sim.now, name, c.cores))
                self.freq_events.append((sim.now, name, c.frequency))

        self._views = [NodeView(self, n) for n in self.nodes]
        self._ingress_count = 0
        #: Optional :class:`repro.faults.rpc.RpcCaller` installed by a
        #: fault injector; ``None`` keeps ingress on the direct path.
        self.rpc = None

    # ----------------------------------------------------------------- views
    @property
    def node_views(self) -> List[NodeView]:
        """One local view per node — SurgeGuard's only interface."""
        return list(self._views)

    def node_of(self, container_name: str) -> Node:
        """The node hosting ``container_name``."""
        return self.nodes[self.placement[container_name]]

    # ------------------------------------------------------------- controller
    def set_cores(self, name: str, cores: float) -> None:
        """Set a container's core allocation (node budget enforced)."""
        self.node_of(name).set_cores(name, cores)
        if self.config.record_timelines:
            self.alloc_events.append((self.sim.now, name, cores))

    def set_frequency(self, name: str, frequency: float) -> None:
        """Set a container's DVFS level."""
        before = self.containers[name].frequency
        self.containers[name].set_frequency(frequency)
        after = self.containers[name].frequency
        if self.config.record_timelines and after != before:
            self.freq_events.append((self.sim.now, name, after))

    # --------------------------------------------------------------- ingress
    def client_send(
        self,
        request_id: int,
        on_response: Callable[[RpcPacket], None],
        *,
        upscale: int = 0,
        on_error: Optional[Callable[[RpcPacket], None]] = None,
    ) -> None:
        """Inject one end-to-end request at the application root.

        ``start_time`` is stamped now — the simulation equivalent of the
        first container setting it, since the client→root hop is part of
        the end-to-end budget either way.

        ``on_error`` fires instead of ``on_response`` when the RPC
        resilience layer is armed and the call exhausts its retries; it
        defaults to ``on_response`` with a synthetic ``error=True``
        response so legacy callers still observe a completion.
        """
        self._ingress_count += 1
        if self.rpc is None:
            # Direct path: the packet's ownership is unambiguous (the
            # serving instance releases it at completion), so it comes
            # from the pool.
            self.network.send(
                self.network.pool.acquire(
                    request_id,
                    REQUEST,
                    CLIENT,
                    self.app.root,
                    self.sim.now,
                    upscale,
                    context=on_response,
                )
            )
            return
        # RPC path: the caller retains the packet across retry attempts
        # while a slow server may still hold the same object (duplicated
        # server work is real and intended), so requests stay unmanaged.
        pkt = RpcPacket(
            request_id=request_id,
            kind=REQUEST,
            src=CLIENT,
            dst=self.app.root,
            start_time=self.sim.now,
            upscale=upscale,
        )
        if on_error is None:
            def on_error(failed: RpcPacket) -> None:
                on_response(failed.make_response(src=self.app.root, error=True))
        self.rpc.call(pkt, on_response, on_error)

    def client_sender(self) -> Callable[[int, Callable[[RpcPacket], None]], None]:
        """Prebound direct-path ingress for per-arrival hot loops.

        Binds the pool, network, root, and clock once so the open-loop
        client's injection path skips the attribute chains and keyword
        plumbing of :meth:`client_send` on every request.  Identical
        observable behavior (same acquire/send sequence, same
        ``ingress_count`` accounting); only valid while ``self.rpc`` is
        ``None`` — armed-fault runs must keep calling
        :meth:`client_send`, which callers check per injection exactly as
        before.
        """
        acquire = self.network.pool.acquire
        send = self.network.send
        root = self.app.root
        sim = self.sim

        def sender(
            request_id: int, on_response: Callable[[RpcPacket], None]
        ) -> None:
            self._ingress_count += 1
            send(
                acquire(
                    request_id,
                    REQUEST,
                    CLIENT,
                    root,
                    sim.now,
                    0,
                    context=on_response,
                )
            )

        return sender

    @staticmethod
    def _client_rx(pkt: RpcPacket) -> None:
        if pkt.context is None:  # pragma: no cover - wiring bug guard
            raise RuntimeError("client response without completion context")
        pkt.context(pkt)

    @property
    def ingress_count(self) -> int:
        """End-to-end requests injected via :meth:`client_send` so far."""
        return self._ingress_count

    # ------------------------------------------------------------ accounting
    def allocations(self) -> Dict[str, float]:
        """Instantaneous {container: allocated cores} snapshot."""
        return {name: c.cores for name, c in self.containers.items()}

    def frequencies(self) -> Dict[str, float]:
        """Instantaneous {container: frequency in Hz} snapshot."""
        return {name: c.frequency for name, c in self.containers.items()}

    def sync_all(self) -> None:
        """Flush all containers' lazy accounting up to the current time."""
        for c in self.containers.values():
            c.sync()

    def total_energy(self) -> float:
        """Idle-subtracted application energy in joules (syncs first)."""
        self.sync_all()
        return self.energy_model.total_energy(self.containers.values())

    def average_cores(self, elapsed: float) -> float:
        """Time-averaged total allocated cores over ``elapsed`` seconds."""
        if elapsed <= 0:
            raise ValueError("elapsed must be positive")
        self.sync_all()
        return sum(c.alloc_core_seconds for c in self.containers.values()) / elapsed

    @property
    def total_allocated(self) -> float:
        """Instantaneous total allocated cores across all nodes."""
        return sum(n.allocated for n in self.nodes)
