"""Processor-sharing container execution model.

A container (one service instance in its own cgroup, as in the paper's
Docker deployment) owns ``c`` allocated cores running at frequency ``f``.
Its active *compute phases* (request handler segments that are actually
on-CPU, not blocked on a downstream RPC or a connection pool) share the
cores in the classic egalitarian processor-sharing discipline: with ``n``
active phases each progresses at

    ``rate = f · min(1, c / n)``   [cycles / second]

This single rule produces all three phenomena the paper's design keys on:

* **load → latency contention** — more concurrent requests slow each one
  down, so a rate surge raises ``execMetric`` (Fig. 5a/5c);
* **diminishing-returns sensitivity curves** — once ``c ≥ n`` extra cores
  change nothing, giving the flat tails of Fig. 6 that sensitivity-based
  revocation exploits;
* **linear frequency scaling** — FirstResponder's fast-path boost shrinks
  service times proportionally.

The implementation is event-driven: job state is lazily advanced on every
event that can change the sharing rate (arrival, completion, allocation
or frequency change), and the single pending next-completion event is
cancelled and re-issued — unless the winning job and shared rate are
both unchanged, in which case the pending event is provably still exact
and is kept (the common case for arrivals under ``c ≥ n`` and for pure
accounting syncs).  All jobs progress at the same rate, so the next
finisher is simply the job with minimal remaining work — an O(n) scan,
with n rarely above a few dozen.

Energy bookkeeping (allocated core-seconds, busy core-seconds, and the
f³-weighted busy integral consumed by :class:`repro.cluster.energy.EnergyModel`)
is folded into the same lazy-advance step so it costs nothing extra.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.sim.engine import EventHandle, Simulator
from repro.cluster.frequency import DvfsModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["Container"]

#: Completion slop, in cycles.  Sub-nanosecond at GHz clock rates.
_EPS_CYCLES = 1e-3


class _Job:
    __slots__ = ("jid", "remaining", "done")

    def __init__(self, jid: int, remaining: float, done: Callable[[], None]):
        self.jid = jid
        self.remaining = remaining
        self.done = done


class Container:
    """One service instance with processor-shared cores and DVFS.

    Parameters
    ----------
    sim:
        The simulator.
    name:
        Container name, unique within the cluster (e.g.
        ``"user-timeline-service"``).
    dvfs:
        Shared DVFS model of the host node.
    cores:
        Initial core allocation (may be fractional: CaladanAlgo allocates
        hyperthread, i.e. 0.5-core, units).
    frequency:
        Initial frequency in Hz; clamped to the DVFS range.
    """

    _ids = itertools.count()

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dvfs: DvfsModel,
        *,
        cores: float = 1.0,
        frequency: Optional[float] = None,
    ):
        if cores <= 0:
            raise ValueError(f"container {name!r}: cores must be positive")
        self.sim = sim
        self.name = name
        self.dvfs = dvfs
        self._cores = float(cores)
        self._freq = dvfs.clamp(dvfs.f_min if frequency is None else frequency)
        #: Execution-efficiency multiplier in (0, 1]: models interference
        #: from co-located work (cache/membw contention, noisy
        #: neighbours) — the "other disruptions" surge type.  1.0 = clean.
        self._speed_factor = 1.0
        self.node: Optional["Node"] = None  # set by Node.add_container

        self._jobs: Dict[int, _Job] = {}
        self._jid = itertools.count()
        self._last_t = sim.now
        self._next: Optional[EventHandle] = None
        #: A reaped replica's container stops accruing alloc/freq
        #: integrals (its cores are returned to the node) until revived.
        self.decommissioned = False
        # Winning job + rate behind the pending next-completion event, so
        # rescheduling can be skipped when neither changed (see
        # _reschedule): all jobs burn at the same rate, so an unchanged
        # (winner, rate) pair means the already-scheduled fire time is
        # still exact.
        self._next_jid = -1
        self._next_rate = 0.0

        # ---- cumulative integrals (energy / utilization accounting) ----
        self.alloc_core_seconds = 0.0
        self.busy_core_seconds = 0.0
        #: busy core-seconds weighted by (f/f_max)^3 — dynamic-energy integral.
        self.busy_weighted_seconds = 0.0
        #: ∫ frequency dt — lets controllers compute the mean frequency
        #: over a window (shFreq synchronization in the paper).
        self.freq_seconds = 0.0
        self.completed_jobs = 0
        #: Fault-injected crashes survived (see :meth:`crash`).
        self.crashes = 0

    # ----------------------------------------------------------- properties
    @property
    def cores(self) -> float:
        """Currently allocated cores (fractional allowed)."""
        return self._cores

    @property
    def frequency(self) -> float:
        """Current frequency in Hz."""
        return self._freq

    @property
    def active_jobs(self) -> int:
        """Number of on-CPU compute phases right now (runnable threads)."""
        return len(self._jobs)

    @property
    def speed_factor(self) -> float:
        """Current interference multiplier (1.0 = no interference)."""
        return self._speed_factor

    @property
    def rate_per_job(self) -> float:
        """Current per-phase progress rate in cycles/second."""
        n = len(self._jobs)
        if n == 0:
            return self._freq * self._speed_factor
        return self._freq * self._speed_factor * min(1.0, self._cores / n)

    # ------------------------------------------------------------- control
    def set_cores(self, cores: float) -> None:
        """Change the core allocation (controller-facing)."""
        if cores <= 0:
            raise ValueError(f"container {self.name!r}: cores must be positive")
        if cores == self._cores:
            return
        self._advance()
        self._cores = float(cores)
        self._reschedule()

    def set_frequency(self, frequency: float) -> None:
        """Change the DVFS level (controller- or FirstResponder-facing)."""
        f = self.dvfs.clamp(frequency)
        if f == self._freq:
            return
        self._advance()
        self._freq = f
        self._reschedule()

    def set_speed_factor(self, factor: float) -> None:
        """Apply or lift execution interference (environment-facing:
        injected by experiments, never by controllers — controllers only
        *observe* its latency effect through the runtime metrics)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"speed factor must be in (0, 1], got {factor!r}")
        if factor == self._speed_factor:
            return
        self._advance()
        self._speed_factor = factor
        self._reschedule()

    # ---------------------------------------------------------------- faults
    def crash(self) -> int:
        """Kill every in-progress compute phase (fault injection).

        Accounting integrals are brought up to now first (the cores were
        genuinely busy until the crash), then all jobs are discarded
        *without* firing their ``done`` callbacks and the pending
        next-completion event is cancelled.  Returns the number of jobs
        killed.  The container object itself survives — a restart is
        just new ``submit()`` traffic.
        """
        self._advance()
        killed = len(self._jobs)
        self._jobs.clear()
        if self._next is not None:
            self._next.cancel()
            self._next = None
        self._next_jid = -1
        self._next_rate = 0.0
        self.crashes += 1
        return killed

    # ---------------------------------------------------------- replica ops
    def decommission(self) -> None:
        """Stop the accounting clock: the replica was reaped.

        The container must be idle (scale-in drains first); its pending
        completion event, if any, is cancelled and alloc/freq integrals
        freeze until :meth:`recommission`.
        """
        if self._jobs:
            raise RuntimeError(f"decommission of busy container {self.name!r}")
        self._advance()
        if self._next is not None:
            self._next.cancel()
            self._next = None
        self._next_jid = -1
        self._next_rate = 0.0
        self.decommissioned = True

    def recommission(self) -> None:
        """Restart the accounting clock for a revived replica."""
        if not self.decommissioned:
            raise RuntimeError(f"container {self.name!r} is not decommissioned")
        self.decommissioned = False
        self._last_t = self.sim.now

    # -------------------------------------------------------------- compute
    def submit(self, work_cycles: float, done: Callable[[], None]) -> int:
        """Start a compute phase of ``work_cycles``; ``done()`` fires on finish.

        Zero-work phases complete via a scheduled zero-delay event (never
        synchronously) so callers can rely on uniform re-entrancy rules.
        """
        if work_cycles < 0:
            raise ValueError(f"negative work: {work_cycles!r}")
        self._advance()
        jid = next(self._jid)
        self._jobs[jid] = _Job(jid, max(work_cycles, 0.0), done)
        self._reschedule()
        return jid

    def sync(self) -> None:
        """Bring the accounting integrals up to the current time.

        Called by the cluster before reading energy/utilization totals.
        """
        self._advance()
        self._reschedule()

    # ------------------------------------------------------------ internals
    def _advance(self) -> None:
        """Integrate progress and accounting from ``_last_t`` to now."""
        now = self.sim.now
        dt = now - self._last_t
        if dt < 0:  # pragma: no cover - engine guarantees monotonic time
            raise RuntimeError("time went backwards")
        self._last_t = now
        if dt == 0.0 or self.decommissioned:
            return
        n = len(self._jobs)
        self.alloc_core_seconds += self._cores * dt
        self.freq_seconds += self._freq * dt
        if n == 0:
            return
        busy = min(float(n), self._cores)
        self.busy_core_seconds += busy * dt
        self.busy_weighted_seconds += (
            busy * (self._freq / self.dvfs.f_max) ** 3 * dt
        )
        burned = self._freq * self._speed_factor * min(1.0, self._cores / n) * dt
        for job in self._jobs.values():
            job.remaining -= burned

    def _reschedule(self) -> None:
        """(Re-)issue the next-completion event after any state change.

        Cheap path: when a pending event exists and neither the winning
        job nor the shared progress rate changed (e.g. a new arrival with
        more work than the current winner while ``c ≥ n`` keeps the rate
        at ``f``, or a pure accounting :meth:`sync`), the already-scheduled
        event is still exact — keep it instead of cancel + re-push, which
        otherwise dominates heap churn under load.
        """
        jobs = self._jobs
        # Fire completions that are already due (within epsilon).
        finished: List[_Job] = [
            j for j in jobs.values() if j.remaining <= _EPS_CYCLES
        ]
        if finished:
            for j in finished:
                del jobs[j.jid]
            self.completed_jobs += len(finished)
            # Callbacks may re-enter submit()/set_cores(); schedule the
            # continuation work as zero-delay events to keep a single,
            # predictable re-entrancy discipline.
            for j in finished:
                self.sim.schedule(0.0, j.done)
        pending = self._next
        if not jobs:
            if pending is not None:
                pending.cancel()
                self._next = None
            return
        winner = None
        min_rem = math.inf
        for j in jobs.values():
            if j.remaining < min_rem:
                min_rem = j.remaining
                winner = j
        rate = self.rate_per_job
        if rate <= 0:  # pragma: no cover - cores/freq are validated positive
            if pending is not None:
                pending.cancel()
                self._next = None
            return
        if (
            pending is not None
            and pending.active
            and self._next_jid == winner.jid
            and self._next_rate == rate
        ):
            return  # the pending event's fire time is unchanged
        if pending is not None:
            pending.cancel()
        self._next = self.sim.schedule(min_rem / rate, self._on_tick)
        self._next_jid = winner.jid
        self._next_rate = rate

    def _on_tick(self) -> None:
        self._next = None
        self._advance()
        self._reschedule()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Container {self.name!r} cores={self._cores} "
            f"f={self._freq / 1e9:.1f}GHz jobs={len(self._jobs)}>"
        )
