"""Energy accounting with idle subtraction (paper §V: ``perf`` minus idle).

The paper measures application energy with ``perf`` and subtracts the
machines' idle consumption, so what is compared across controllers is
the *marginal* energy of running the workload.  The simulator mirrors
that: a container's energy is

    ``E = static_w · ∫ allocated_cores dt  +  dyn_w_at_fmax · ∫ busy · (f/f_max)³ dt``

where both integrals are maintained incrementally by
:class:`repro.cluster.container.Container` (``alloc_core_seconds`` and
``busy_weighted_seconds``).  Unallocated cores contribute nothing —
that is the idle subtraction.
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.container import Container
from repro.cluster.frequency import DvfsModel

__all__ = ["EnergyModel"]


class EnergyModel:
    """Converts container accounting integrals into joules.

    Parameters
    ----------
    dvfs:
        Supplies the per-core power constants.  All nodes in an
        experiment share one DVFS model, matching the homogeneous
        testbed.
    """

    def __init__(self, dvfs: DvfsModel):
        self.dvfs = dvfs

    def container_energy(self, container: Container) -> float:
        """Idle-subtracted energy (J) consumed by one container so far.

        Callers must :meth:`~repro.cluster.container.Container.sync` the
        container (the cluster does this) before reading.
        """
        static = self.dvfs.static_w * container.alloc_core_seconds
        dynamic = self.dvfs.dyn_w_at_fmax * container.busy_weighted_seconds
        return static + dynamic

    def total_energy(self, containers: Iterable[Container]) -> float:
        """Sum of :meth:`container_energy` over ``containers``."""
        return sum(self.container_energy(c) for c in containers)

    def average_power(self, containers: Iterable[Container], elapsed: float) -> float:
        """Mean application power (W) over ``elapsed`` seconds."""
        if elapsed <= 0:
            raise ValueError("elapsed must be positive")
        return self.total_energy(containers) / elapsed
