"""DVFS model: discrete frequency levels, transition cost, and power.

The paper's testbed uses the Linux ``userspace`` frequency governor with
initial core frequencies of 1.6 GHz; FirstResponder's worker thread
raises frequencies by writing MSRs (2.1 µs per write, §VI-D).  Because
cores are partitioned between containers, per-core frequency control is
equivalent to per-container frequency control, which is how the model
exposes it.

The dynamic-power curve follows the classic CMOS scaling argument
``P_dyn ∝ C·f·V²`` with ``V`` roughly linear in ``f`` over the DVFS
range, i.e. ``P_dyn ∝ f³``; static power is a flat per-core floor.  The
absolute constants are calibrated loosely to a Cascade Lake core (a few
watts per core) — only *relative* energy matters for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["DvfsModel"]


@dataclass(frozen=True)
class DvfsModel:
    """Discrete DVFS levels plus a per-core power model.

    Attributes
    ----------
    f_min, f_max:
        Frequency range in Hz.  Paper initial frequency is 1.6 GHz; the
        ceiling is set to 2.4 GHz — a 1.5× headroom, about what a fully
        loaded 2-socket Cascade Lake sustains all-core.  The ratio is
        what matters: it must sit *below* the large surge magnitudes
        (1.75×) so frequency alone cannot absorb a long surge and core
        reallocation stays load-bearing, as on the testbed.
    step:
        Granularity of controller frequency changes (Hz).
    static_w:
        Power attributable to an *allocated* core regardless of load
        (leakage, uncore/LLC/package share), watts.  On Cascade Lake
        this fixed share dominates the marginal DVFS swing, which is
        why the paper's energy results track core counts first.
    dyn_w_at_fmax:
        Dynamic power of one fully-busy core at ``f_max``, watts.
    msr_write_latency:
        Modeled cost of one frequency update (FirstResponder worker
        thread's MSR write; 2.1 µs in the paper).
    """

    f_min: float = 1.6e9
    f_max: float = 2.4e9
    step: float = 0.2e9
    static_w: float = 2.0
    dyn_w_at_fmax: float = 1.5
    msr_write_latency: float = 2.1e-6

    def __post_init__(self) -> None:
        if self.f_min <= 0 or self.f_max < self.f_min:
            raise ValueError(f"invalid DVFS range [{self.f_min}, {self.f_max}]")
        if self.step <= 0:
            raise ValueError("step must be positive")

    def clamp(self, f: float) -> float:
        """Snap ``f`` to the nearest representable level inside the range."""
        f = min(max(f, self.f_min), self.f_max)
        k = round((f - self.f_min) / self.step)
        return min(self.f_min + k * self.step, self.f_max)

    def step_up(self, f: float) -> float:
        """One level above ``f`` (saturating at ``f_max``)."""
        return self.clamp(f + self.step)

    def step_down(self, f: float) -> float:
        """One level below ``f`` (saturating at ``f_min``)."""
        return self.clamp(f - self.step)

    @property
    def levels(self) -> Tuple[float, ...]:
        """All representable frequency levels, ascending."""
        n = int(round((self.f_max - self.f_min) / self.step)) + 1
        return tuple(self.clamp(self.f_min + i * self.step) for i in range(n))

    # ---------------------------------------------------------------- power
    def dynamic_power(self, f: float) -> float:
        """Dynamic watts of one fully-busy core at frequency ``f`` (∝ f³)."""
        return self.dyn_w_at_fmax * float(np.clip(f / self.f_max, 0.0, 1.0)) ** 3

    def core_power(self, f: float, utilization: float) -> float:
        """Total watts of one allocated core at ``f`` with given utilization."""
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ValueError(f"utilization out of range: {utilization!r}")
        return self.static_w + self.dynamic_power(f) * min(utilization, 1.0)
