"""Interference injection — execution-time surges without load surges.

The abstract scopes SurgeGuard to "surges in load and network latency,
or other disruptions to steady-state behavior"; Caladan (one of the
baselines) exists specifically for *interference* at microsecond
timescales.  :class:`InterferenceInjector` produces that third surge
type: for a time window, a container's effective execution speed drops
by a factor (cache/memory-bandwidth contention from a co-located
best-effort job), with no change to the incoming request rate.

Controllers never see the factor — only its consequences in the
latency metrics — so this doubles as a root-cause test: the slowdown
originates *inside* one container, and a dependence-aware controller
should direct resources there, not at the upstream services whose
latency also balloons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.cluster import Cluster

__all__ = ["InterferenceInjector", "InterferenceWindow"]


@dataclass(frozen=True)
class InterferenceWindow:
    """One planned interference episode."""

    container: str
    start: float
    end: float
    #: Execution-speed multiplier during the window, in (0, 1).
    factor: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("empty interference window")
        if not 0.0 < self.factor < 1.0:
            raise ValueError("factor must be in (0, 1)")


class InterferenceInjector:
    """Schedules interference windows on a cluster's containers."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.windows: List[InterferenceWindow] = []

    def inject(
        self, container: str, *, start: float, length: float, factor: float
    ) -> InterferenceWindow:
        """Slow ``container`` to ``factor`` speed during the window."""
        if container not in self.cluster.containers:
            raise KeyError(container)
        window = InterferenceWindow(container, start, start + length, factor)
        self.windows.append(window)
        sim = self.cluster.sim
        target = self.cluster.containers[container]
        sim.schedule_at(start, target.set_speed_factor, factor)
        sim.schedule_at(window.end, target.set_speed_factor, 1.0)
        return window
