"""Request lifecycle at one service instance.

This module is the glue between the task-graph spec and the execution
substrate: a :class:`ServiceInstance` owns a container, the connection
pools to its children, and a :class:`~repro.cluster.runtime.ContainerRuntime`,
and drives each incoming request through the state machine

    arrive → pre-work compute → [for each child: acquire connection →
    downstream round trip → release] → post-work compute → reply

The two details that carry the paper's Fig. 5 phenomenology:

* compute phases run on the container (processor-shared, on-CPU); the
  downstream round trip and the wait for a pooled connection do *not*
  occupy a core (the thread is blocked — that is precisely why the
  threadpool queue is invisible to per-container CPU metrics);
* connection-wait time is accumulated per request and reported to the
  runtime, which derives ``execMetric``/``queueBuildup`` from it.

Fan-out: ``sequential`` sums the per-child waits (the same thread blocks
for each in turn); ``parallel`` takes the maximum (waits overlap in wall
time), keeping ``execMetric = execTime − wait`` non-negative.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.cluster.container import Container
from repro.cluster.network import Network
from repro.cluster.packet import REQUEST, RESPONSE, RpcPacket
from repro.cluster.runtime import ContainerRuntime
from repro.cluster.threadpool import ConnectionPool
from repro.services.taskgraph import SEQUENTIAL, ServiceSpec

__all__ = ["ServiceInstance"]


class _Invocation:
    """Per-request state at one service instance."""

    __slots__ = (
        "pkt",
        "t_arrive",
        "upscale_in",
        "conn_wait",
        "par_waits",
        "child_idx",
        "pending",
        "failed",
        "dead",
    )

    def __init__(self, pkt: RpcPacket, t_arrive: float):
        self.pkt = pkt
        self.t_arrive = t_arrive
        self.upscale_in = pkt.upscale
        self.conn_wait = 0.0  # sequential accumulation
        self.par_waits: List[float] = []  # parallel per-branch waits
        self.child_idx = 0
        self.pending = 0
        #: A child call failed (error response or retry exhaustion);
        #: the request will complete as an error once branches resolve.
        self.failed = False
        #: Invocation was killed (container crash) or already finished as
        #: an error: every late callback must drop on the floor — in
        #: particular it must NOT release pools that were flushed.
        self.dead = False


class ServiceInstance:
    """One deployed service: container + pools + runtime + state machine.

    Parameters
    ----------
    sim, spec, container, runtime, network:
        Wired by :class:`repro.cluster.cluster.Cluster`.
    pools:
        Connection pool per child name (one per outgoing edge).
    rng:
        Stream for per-request work draws.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: ServiceSpec,
        container: Container,
        runtime: ContainerRuntime,
        network: Network,
        pools: Dict[str, ConnectionPool],
        rng: np.random.Generator,
        name: Optional[str] = None,
    ):
        missing = {e.child for e in spec.children} - set(pools)
        if missing:
            raise ValueError(f"{spec.name!r}: missing pools for {sorted(missing)}")
        self.sim = sim
        self.spec = spec
        #: Endpoint name — the replica name when this instance is one of
        #: several copies of ``spec``; defaults to the bare service name
        #: (and replica 0 of a replicated service keeps it too).
        self.name = name or spec.name
        self.container = container
        self.runtime = runtime
        self.network = network
        self.pools = pools
        self.rng = rng
        self.requests_started = 0
        self.requests_completed = 0
        #: Requests that completed as an *error* (a child call failed).
        self.requests_failed = 0
        #: REQUESTs that arrived while the process was down and vanished
        #: at the dead socket (replica-conservation bookkeeping).
        self.requests_dropped_down = 0
        #: In-flight invocations killed by :meth:`crash`.
        self.inflight_killed = 0
        #: Optional :class:`repro.faults.rpc.RpcCaller` installed by a
        #: fault injector; ``None`` (always, on fault-free runs) keeps
        #: child calls on the direct fire-and-forget path.
        self.rpc = None
        #: True between :meth:`crash` and :meth:`restart` — the process
        #: is gone and nothing listens on its socket.
        self._down = False
        #: Live invocations, so a crash can fail them all (and a drained
        #: run can prove none were orphaned).
        self._live: set = set()

    @property
    def inflight(self) -> int:
        """Live invocations on this instance (least-loaded LB signal)."""
        return len(self._live)

    # --------------------------------------------------------------- ingress
    def handle_packet(self, pkt: RpcPacket) -> None:
        """Network endpoint handler for this service's container."""
        if self._down:
            # Crashed process: requests and responses alike vanish at the
            # dead socket.  Caller-side RPC timeouts are the recovery
            # path (see repro.faults.rpc).
            if pkt.kind == REQUEST:
                self.requests_dropped_down += 1
            return
        if pkt.kind == RESPONSE:
            # Resume the waiting caller-side continuation.
            if pkt.context is None:  # pragma: no cover - wiring bug guard
                raise RuntimeError(f"response without context at {self.spec.name!r}")
            pkt.context(pkt)
            return
        if pkt.kind != REQUEST:  # pragma: no cover - wiring bug guard
            raise RuntimeError(f"unknown packet kind {pkt.kind!r}")
        self._on_request(pkt)

    def _on_request(self, pkt: RpcPacket) -> None:
        self.requests_started += 1
        now = self.sim.now
        self.runtime.on_arrival(now - pkt.start_time, pkt.upscale)
        inv = _Invocation(pkt, now)
        self._live.add(inv)
        work = self.spec.pre_work.sample(self.rng)
        if work > 0.0:
            self.container.submit(work, lambda: self._after_pre(inv))
        else:
            self._after_pre(inv)

    # ---------------------------------------------------------------- faults
    def crash(self) -> int:
        """Fault injection: the service process dies right now.

        In-flight invocations are marked dead (their pending callbacks
        become no-ops), the container's compute phases are discarded,
        and the caller-side connection pools are flushed — the threads
        holding/awaiting those connections died with the process.
        Returns the number of invocations killed.  The instance stays
        ``_down`` (dropping all arriving packets) until :meth:`restart`.
        """
        self._down = True
        for inv in self._live:
            inv.dead = True
        killed = len(self._live)
        self.inflight_killed += killed
        self._live.clear()
        self.container.crash()
        for pool in self.pools.values():
            pool.flush()
        return killed

    def restart(self) -> None:
        """Bring a crashed instance back up with a cold runtime window."""
        if not self._down:
            raise RuntimeError(f"{self.name!r}: restart without crash")
        self._down = False
        self.runtime.reset_window()

    def shutdown(self) -> None:
        """Orderly stop of a *drained* replica (scale-in reaping).

        Unlike :meth:`crash` there is nothing to kill — reaping waits for
        the in-flight set to empty — but the socket goes dead the same
        way, and :meth:`restart` is the shared revival path.
        """
        if self._live:
            raise RuntimeError(f"{self.name!r}: shutdown with live invocations")
        self._down = True

    def _send_child(self, out: RpcPacket, on_reply, on_error) -> None:
        """Dispatch one child request: direct send, or via the RPC layer.

        ``on_reply(resp)`` fires on any response (check ``resp.error``);
        ``on_error(pkt)`` fires only from the RPC layer, on retry
        exhaustion.  The direct path is the fault-free hot path and is
        kept verbatim (one ``is None`` check of separation).
        """
        if self.rpc is None:
            out.context = on_reply
            self.network.send(out)
        else:
            self.rpc.call(out, on_reply, on_error)

    def _fork(self, inv: _Invocation, dst: str) -> RpcPacket:
        """Next-hop request packet for ``inv``'s job.

        Pool-managed only on the direct path: under the RPC layer the
        caller's ``_Call`` retains the packet across retry attempts while
        a slow server may still be working on the same object, so there
        is no single point that could prove it dead and release it.
        """
        upscale = self.runtime.outgoing_upscale(inv.upscale_in)
        if self.rpc is None:
            return self.network.pool.fork_downstream(
                inv.pkt, dst=dst, src=self.name, upscale=upscale
            )
        return inv.pkt.fork_downstream(dst=dst, src=self.name, upscale=upscale)

    # ------------------------------------------------------------- children
    def _after_pre(self, inv: _Invocation) -> None:
        if inv.dead:
            return
        children = self.spec.children
        if not children:
            self._after_children(inv)
            return
        if self.spec.fanout == SEQUENTIAL:
            self._start_sequential_child(inv)
        else:
            inv.pending = len(children)
            for i in range(len(children)):
                self._start_parallel_child(inv, i)

    def _start_sequential_child(self, inv: _Invocation) -> None:
        edge = self.spec.children[inv.child_idx]
        pool = self.pools[edge.child]

        def granted(wait: float) -> None:
            if inv.dead:
                return  # pool was flushed with the crash; do not send
            inv.conn_wait += wait
            out = self._fork(inv, edge.child)
            self._send_child(
                out,
                lambda resp: self._sequential_child_done(inv, pool, resp),
                lambda _pkt: self._sequential_child_done(inv, pool, None),
            )

        pool.acquire(granted)

    def _sequential_child_done(
        self, inv: _Invocation, pool: ConnectionPool, resp: Optional[RpcPacket]
    ) -> None:
        if inv.dead:
            return
        pool.release()
        if resp is None or resp.error:
            # Child failed (retry exhaustion or explicit error): skip the
            # remaining children — the request cannot succeed anyway.
            self._finish_error(inv)
            return
        inv.child_idx += 1
        if inv.child_idx < len(self.spec.children):
            self._start_sequential_child(inv)
        else:
            self._after_children(inv)

    def _start_parallel_child(self, inv: _Invocation, idx: int) -> None:
        edge = self.spec.children[idx]
        pool = self.pools[edge.child]

        def granted(wait: float) -> None:
            if inv.dead:
                return  # pool was flushed with the crash; do not send
            inv.par_waits.append(wait)
            out = self._fork(inv, edge.child)
            self._send_child(
                out,
                lambda resp: self._parallel_child_done(inv, pool, resp),
                lambda _pkt: self._parallel_child_done(inv, pool, None),
            )

        pool.acquire(granted)

    def _parallel_child_done(
        self, inv: _Invocation, pool: ConnectionPool, resp: Optional[RpcPacket]
    ) -> None:
        if inv.dead:
            return
        pool.release()
        if resp is None or resp.error:
            inv.failed = True
        inv.pending -= 1
        if inv.pending == 0:
            if inv.failed:
                # All branches resolved (success, error, or exhaustion):
                # only now can the request complete, as an error.
                self._finish_error(inv)
                return
            inv.conn_wait += max(inv.par_waits, default=0.0)
            self._after_children(inv)

    # --------------------------------------------------------------- egress
    def _after_children(self, inv: _Invocation) -> None:
        work = self.spec.post_work.sample(self.rng)
        if work > 0.0:
            self.container.submit(work, lambda: self._finish(inv))
        else:
            self._finish(inv)

    def _finish(self, inv: _Invocation) -> None:
        if inv.dead:
            return
        self._live.discard(inv)
        self.requests_completed += 1
        exec_time = self.sim.now - inv.t_arrive
        self.runtime.on_complete(exec_time, inv.conn_wait)
        net = self.network
        pkt = inv.pkt
        net.send(net.pool.make_response(pkt, src=self.name))
        # Server-side release point: the request's life ends once its
        # response is built (a no-op for unmanaged packets, i.e. whenever
        # the RPC layer shares ownership with a possibly-live retry).
        net.pool.release(pkt)

    def _finish_error(self, inv: _Invocation) -> None:
        """Complete ``inv`` as a failure: error response, no metrics.

        The runtime's ``on_complete`` is deliberately *not* called — a
        failed request's wall time measures timeout/backoff policy, not
        container execution, and would poison ``execMetric`` windows.
        """
        inv.dead = True  # any straggling branch callback must no-op
        self._live.discard(inv)
        self.requests_failed += 1
        net = self.network
        pkt = inv.pkt
        net.send(net.pool.make_response(pkt, src=self.name, error=True))
        net.pool.release(pkt)
