"""Request lifecycle at one service instance.

This module is the glue between the task-graph spec and the execution
substrate: a :class:`ServiceInstance` owns a container, the connection
pools to its children, and a :class:`~repro.cluster.runtime.ContainerRuntime`,
and drives each incoming request through the state machine

    arrive → pre-work compute → [for each child: acquire connection →
    downstream round trip → release] → post-work compute → reply

The two details that carry the paper's Fig. 5 phenomenology:

* compute phases run on the container (processor-shared, on-CPU); the
  downstream round trip and the wait for a pooled connection do *not*
  occupy a core (the thread is blocked — that is precisely why the
  threadpool queue is invisible to per-container CPU metrics);
* connection-wait time is accumulated per request and reported to the
  runtime, which derives ``execMetric``/``queueBuildup`` from it.

Fan-out: ``sequential`` sums the per-child waits (the same thread blocks
for each in turn); ``parallel`` takes the maximum (waits overlap in wall
time), keeping ``execMetric = execTime − wait`` non-negative.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.sim.engine import Simulator
from repro.cluster.container import Container
from repro.cluster.network import Network
from repro.cluster.packet import REQUEST, RESPONSE, RpcPacket
from repro.cluster.runtime import ContainerRuntime
from repro.cluster.threadpool import ConnectionPool
from repro.services.taskgraph import SEQUENTIAL, ServiceSpec

__all__ = ["ServiceInstance"]


class _Invocation:
    """Per-request state at one service instance."""

    __slots__ = (
        "pkt",
        "t_arrive",
        "upscale_in",
        "conn_wait",
        "par_waits",
        "child_idx",
        "pending",
    )

    def __init__(self, pkt: RpcPacket, t_arrive: float):
        self.pkt = pkt
        self.t_arrive = t_arrive
        self.upscale_in = pkt.upscale
        self.conn_wait = 0.0  # sequential accumulation
        self.par_waits: List[float] = []  # parallel per-branch waits
        self.child_idx = 0
        self.pending = 0


class ServiceInstance:
    """One deployed service: container + pools + runtime + state machine.

    Parameters
    ----------
    sim, spec, container, runtime, network:
        Wired by :class:`repro.cluster.cluster.Cluster`.
    pools:
        Connection pool per child name (one per outgoing edge).
    rng:
        Stream for per-request work draws.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: ServiceSpec,
        container: Container,
        runtime: ContainerRuntime,
        network: Network,
        pools: Dict[str, ConnectionPool],
        rng: np.random.Generator,
    ):
        missing = {e.child for e in spec.children} - set(pools)
        if missing:
            raise ValueError(f"{spec.name!r}: missing pools for {sorted(missing)}")
        self.sim = sim
        self.spec = spec
        self.container = container
        self.runtime = runtime
        self.network = network
        self.pools = pools
        self.rng = rng
        self.requests_started = 0
        self.requests_completed = 0

    # --------------------------------------------------------------- ingress
    def handle_packet(self, pkt: RpcPacket) -> None:
        """Network endpoint handler for this service's container."""
        if pkt.kind == RESPONSE:
            # Resume the waiting caller-side continuation.
            if pkt.context is None:  # pragma: no cover - wiring bug guard
                raise RuntimeError(f"response without context at {self.spec.name!r}")
            pkt.context(pkt)
            return
        if pkt.kind != REQUEST:  # pragma: no cover - wiring bug guard
            raise RuntimeError(f"unknown packet kind {pkt.kind!r}")
        self._on_request(pkt)

    def _on_request(self, pkt: RpcPacket) -> None:
        self.requests_started += 1
        now = self.sim.now
        self.runtime.on_arrival(now - pkt.start_time, pkt.upscale)
        inv = _Invocation(pkt, now)
        work = self.spec.pre_work.sample(self.rng)
        if work > 0.0:
            self.container.submit(work, lambda: self._after_pre(inv))
        else:
            self._after_pre(inv)

    # ------------------------------------------------------------- children
    def _after_pre(self, inv: _Invocation) -> None:
        children = self.spec.children
        if not children:
            self._after_children(inv)
            return
        if self.spec.fanout == SEQUENTIAL:
            self._start_sequential_child(inv)
        else:
            inv.pending = len(children)
            for i in range(len(children)):
                self._start_parallel_child(inv, i)

    def _outgoing_ttl(self, inv: _Invocation) -> int:
        return self.runtime.outgoing_upscale(inv.upscale_in)

    def _start_sequential_child(self, inv: _Invocation) -> None:
        edge = self.spec.children[inv.child_idx]
        pool = self.pools[edge.child]

        def granted(wait: float) -> None:
            inv.conn_wait += wait
            out = inv.pkt.fork_downstream(
                dst=edge.child,
                src=self.spec.name,
                upscale=self._outgoing_ttl(inv),
            )
            out.context = lambda resp: self._sequential_child_done(inv, pool)
            self.network.send(out)

        pool.acquire(granted)

    def _sequential_child_done(self, inv: _Invocation, pool: ConnectionPool) -> None:
        pool.release()
        inv.child_idx += 1
        if inv.child_idx < len(self.spec.children):
            self._start_sequential_child(inv)
        else:
            self._after_children(inv)

    def _start_parallel_child(self, inv: _Invocation, idx: int) -> None:
        edge = self.spec.children[idx]
        pool = self.pools[edge.child]

        def granted(wait: float) -> None:
            inv.par_waits.append(wait)
            out = inv.pkt.fork_downstream(
                dst=edge.child,
                src=self.spec.name,
                upscale=self._outgoing_ttl(inv),
            )
            out.context = lambda resp: self._parallel_child_done(inv, pool)
            self.network.send(out)

        pool.acquire(granted)

    def _parallel_child_done(self, inv: _Invocation, pool: ConnectionPool) -> None:
        pool.release()
        inv.pending -= 1
        if inv.pending == 0:
            inv.conn_wait += max(inv.par_waits, default=0.0)
            self._after_children(inv)

    # --------------------------------------------------------------- egress
    def _after_children(self, inv: _Invocation) -> None:
        work = self.spec.post_work.sample(self.rng)
        if work > 0.0:
            self.container.submit(work, lambda: self._finish(inv))
        else:
            self._finish(inv)

    def _finish(self, inv: _Invocation) -> None:
        self.requests_completed += 1
        exec_time = self.sim.now - inv.t_arrive
        self.runtime.on_complete(exec_time, inv.conn_wait)
        self.network.send(inv.pkt.make_response(src=self.spec.name))
