"""Replica sets and the load-balancer tier of the packet path.

Horizontal scaling makes *replicas* first-class: a service may be backed
by N stateless copies, each with its own container, runtime, connection
pools, and deterministic work stream.  Replica 0 keeps the bare service
name (``chain2``); replica ``k >= 1`` is named ``chain2@k``.  Keeping the
zeroth replica's name equal to the service name is the determinism seam:
with ``replicas=1`` every endpoint name, RNG stream, placement entry,
and packet address is byte-for-byte what the unreplicated cluster
produces, so the golden fingerprints cannot tell the two apart.

The LB sits at the *top* of :meth:`Network.send` (see
``cluster/network.py``): REQUEST packets addressed to a virtual (service)
name are resolved to a concrete replica endpoint before routing.  RPC
retries re-resolve too — a ``clone_retry`` keeps its concrete
destination, but every replica endpoint is also aliased to its
:class:`ReplicaSet`, so a retry aimed at a crashed replica is re-routed
through the policy and lands on a survivor.

Lifecycle: ``WARMING -> READY -> DRAINING -> DOWN`` (and back, on
revival).  A warming replica holds its cores (that *is* the spin-up
cost, mirroring cold-start) but receives no traffic; a draining replica
finishes its in-flight work and is reaped once idle; a reaped replica's
slot can be revived by a later scale-out, which re-uses the registered
endpoint (the network rejects duplicate registration by design).

Policy selection is deliberately RNG-free — round-robin is a monotone
counter, least-loaded breaks ties by replica index, and consistent
hashing uses CRC-32 (never Python's salted ``hash()``) — so a replicated
run is exactly reproducible and the replicas=1 pass-through consumes no
random draws at all.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cluster.container import Container
    from repro.cluster.invocation import ServiceInstance
    from repro.cluster.node import Node
    from repro.cluster.packet import RpcPacket

__all__ = [
    "REPLICA_SEP",
    "WARMING",
    "READY",
    "DRAINING",
    "DOWN",
    "replica_name",
    "service_of_name",
    "Replica",
    "ReplicaSet",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "ConsistentHashPolicy",
    "LB_POLICIES",
    "make_policy",
]

#: Separator between a service name and a replica index (``chain2@3``).
#: Service names come from the workload registry and never contain it.
REPLICA_SEP = "@"

# Replica lifecycle states.
WARMING = "warming"
READY = "ready"
DRAINING = "draining"
DOWN = "down"


def replica_name(service: str, idx: int) -> str:
    """Endpoint name of replica ``idx`` of ``service``.

    Replica 0 *is* the service name — the replicas=1 identity seam.
    """
    return service if idx == 0 else f"{service}{REPLICA_SEP}{idx}"


def service_of_name(name: str) -> str:
    """The service a replica endpoint name belongs to."""
    base, sep, idx = name.partition(REPLICA_SEP)
    return base if sep and idx.isdigit() else name


class Replica:
    """One deployed copy of a service: container + instance + lifecycle."""

    __slots__ = (
        "name",
        "service",
        "idx",
        "state",
        "container",
        "instance",
        "node",
        "dispatched",
        "draining_since",
        "ready_at",
    )

    def __init__(
        self,
        name: str,
        service: str,
        idx: int,
        state: str = READY,
        container: Optional["Container"] = None,
        instance: Optional["ServiceInstance"] = None,
        node: Optional["Node"] = None,
    ):
        self.name = name
        self.service = service
        self.idx = idx
        self.state = state
        self.container = container
        self.instance = instance
        self.node = node
        #: REQUEST packets the LB routed here (counted at dispatch).
        self.dispatched = 0
        self.draining_since = -1.0
        self.ready_at = -1.0

    @property
    def down(self) -> bool:
        """Health (crashed?) — orthogonal to the lifecycle state."""
        inst = self.instance
        return inst is not None and inst._down

    @property
    def inflight(self) -> int:
        inst = self.instance
        return 0 if inst is None else inst.inflight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Replica({self.name!r}, {self.state}, dispatched={self.dispatched})"


# ------------------------------------------------------------------ policies
class RoundRobinPolicy:
    """Cycle through the routable pool with a monotone counter.

    Over any prefix of dispatches against a fixed pool the per-replica
    counts differ by at most one (exact fairness — property-tested).
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, pool: List[Replica], pkt: "RpcPacket") -> Replica:
        r = pool[self._next % len(pool)]
        self._next += 1
        return r


class LeastLoadedPolicy:
    """Route to the replica with the fewest in-flight requests.

    Ties break by replica index, keeping selection deterministic.
    """

    name = "least_loaded"

    def select(self, pool: List[Replica], pkt: "RpcPacket") -> Replica:
        best = pool[0]
        best_load = best.inflight
        for r in pool[1:]:
            load = r.inflight
            if load < best_load:
                best, best_load = r, load
        return best


def _hash_key(key: int) -> int:
    """Deterministic 32-bit hash of a request id (CRC-32, never the
    process-salted builtin ``hash``)."""
    return zlib.crc32((key & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))


class ConsistentHashPolicy:
    """Classic ring hashing: ``vnodes`` virtual points per replica.

    The same request id maps to the same replica for as long as that
    replica is in the pool, and adding a replica only moves keys *onto*
    the new replica (minimal remap — property-tested).  The ring is
    rebuilt lazily and cached per pool composition.
    """

    name = "consistent_hash"

    def __init__(self, vnodes: int = 64) -> None:
        self.vnodes = vnodes
        self._ring_key: Optional[Tuple[str, ...]] = None
        self._ring_hashes: List[int] = []
        self._ring_replicas: List[Replica] = []

    def _rebuild(self, pool: List[Replica]) -> None:
        points = []
        for r in pool:
            for v in range(self.vnodes):
                points.append((zlib.crc32(f"{r.name}#{v}".encode()), r.name, r))
        # Secondary sort on name makes hash collisions deterministic.
        points.sort(key=lambda p: (p[0], p[1]))
        self._ring_hashes = [p[0] for p in points]
        self._ring_replicas = [p[2] for p in points]
        self._ring_key = tuple(r.name for r in pool)

    def select(self, pool: List[Replica], pkt: "RpcPacket") -> Replica:
        key = tuple(r.name for r in pool)
        if key != self._ring_key:
            self._rebuild(pool)
        h = _hash_key(pkt.request_id)
        i = bisect_right(self._ring_hashes, h) % len(self._ring_hashes)
        return self._ring_replicas[i]


LB_POLICIES = {
    "round_robin": RoundRobinPolicy,
    "least_loaded": LeastLoadedPolicy,
    "consistent_hash": ConsistentHashPolicy,
}


def make_policy(name: str):
    """Instantiate a load-balancing policy by registry name."""
    try:
        return LB_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown lb policy {name!r}; choose from {sorted(LB_POLICIES)}"
        ) from None


# --------------------------------------------------------------- replica set
class ReplicaSet:
    """All replicas of one service plus the policy that picks among them.

    :meth:`resolve` is the only routing decision point: it filters to
    lifecycle-READY replicas, then to healthy (not crashed) ones —
    *failing open* to the ready pool when every ready replica is crashed,
    so a replicas=1 crash behaves exactly like the unreplicated
    dead-socket path (packets still flow and are dropped at the down
    instance, keeping fault goldens bit-identical).
    """

    __slots__ = ("service", "policy", "replicas", "dispatched", "unroutable",
                 "nonready_dispatches")

    def __init__(self, service: str, policy) -> None:
        self.service = service
        self.policy = policy
        self.replicas: List[Replica] = []
        #: Total REQUESTs routed through this set.
        self.dispatched = 0
        #: REQUESTs with no READY replica to take them (packet discarded).
        self.unroutable = 0
        #: Dispatches to a non-READY replica — structurally impossible;
        #: asserted zero by ReplicaConservationMonitor.
        self.nonready_dispatches = 0

    def add(self, replica: Replica) -> None:
        self.replicas.append(replica)

    def ready(self) -> List[Replica]:
        return [r for r in self.replicas if r.state == READY]

    def by_name(self, name: str) -> Replica:
        for r in self.replicas:
            if r.name == name:
                return r
        raise KeyError(name)

    def resolve(self, pkt: "RpcPacket") -> Optional[str]:
        """Pick a concrete replica endpoint for ``pkt`` (or ``None``)."""
        ready = [r for r in self.replicas if r.state == READY]
        if not ready:
            self.unroutable += 1
            return None
        if len(ready) == 1:
            r = ready[0]  # replicas=1 pass-through: no policy, no filter
        else:
            pool = [r for r in ready if not r.down] or ready
            r = self.policy.select(pool, pkt) if len(pool) > 1 else pool[0]
        if r.state != READY:  # pragma: no cover - defensive
            self.nonready_dispatches += 1
        r.dispatched += 1
        self.dispatched += 1
        return r.name


def virtual_aliases(rset: ReplicaSet) -> Dict[str, ReplicaSet]:
    """Endpoint-name -> set map entries for one replica set.

    Covers the service name (replica 0's endpoint) *and* every numbered
    replica endpoint, so in-place retries addressed to a concrete replica
    re-resolve through the policy.
    """
    out = {rset.service: rset}
    for r in rset.replicas:
        out[r.name] = rset
    return out
