"""RPC fabric: packet routing, latency, and injectable latency surges.

Every packet between endpoints (containers or the external client) takes
one network hop with a configurable base latency — small for same-node
(bridge/loopback) traffic, larger for cross-node traffic — plus optional
lognormal-ish jitter.  On arrival at a *server* node the packet first
passes through the node's RX hooks (FirstResponder's attachment point,
see :mod:`repro.cluster.node`), whose modeled per-packet cost is added to
the delivery latency, and is then handed to the destination endpoint.

The abstract says SurgeGuard guards QoS "during surges in load and
network latency"; :meth:`Network.add_latency_surge` injects the latter —
an additive delay applied to packets sent inside a time window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.engine import Simulator
from repro.cluster.node import Node
from repro.cluster.packet import RpcPacket

__all__ = ["Network", "NetworkConfig"]

Endpoint = Callable[[RpcPacket], None]


@dataclass(frozen=True)
class NetworkConfig:
    """Latency parameters of the simulated fabric.

    Defaults approximate a ToR-switched datacenter rack: ~20 µs
    kernel-stack RTT share per one-way cross-node hop, ~6 µs for
    same-node container-to-container traffic, and client traffic treated
    as cross-node (the paper's client is a separate machine).
    """

    intra_node_latency: float = 6e-6
    inter_node_latency: float = 20e-6
    #: Relative jitter: one-way latency is multiplied by ``1 + U(0, jitter)``.
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.intra_node_latency < 0 or self.inter_node_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")


@dataclass
class _LatencySurge:
    start: float
    end: float
    extra: float


class Network:
    """Routes :class:`RpcPacket` objects between registered endpoints.

    Parameters
    ----------
    sim:
        The simulator.
    config:
        Latency parameters.
    rng:
        Generator for jitter draws (pass a dedicated stream).
    """

    def __init__(
        self,
        sim: Simulator,
        config: NetworkConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        self.sim = sim
        self.config = config
        self.rng = rng
        self._endpoints: Dict[str, Tuple[Optional[Node], Endpoint]] = {}
        self._surges: List[_LatencySurge] = []
        self._observers: List[Endpoint] = []
        self.packets_sent = 0
        self.packets_delivered = 0

    def add_observer(self, fn: Endpoint) -> None:
        """Register a read-only tap invoked on *every* delivery —
        including to external endpoints, which node RX hooks never see.
        Zero modeled cost: observers are measurement, not mechanism."""
        self._observers.append(fn)

    # ------------------------------------------------------------- registry
    def register(self, name: str, node: Optional[Node], handler: Endpoint) -> None:
        """Register an endpoint.  ``node=None`` marks an external endpoint
        (the client machine — no RX hooks run for packets it receives)."""
        if name in self._endpoints:
            raise ValueError(f"duplicate endpoint {name!r}")
        self._endpoints[name] = (node, handler)

    def endpoint_node(self, name: str) -> Optional[Node]:
        """The node hosting ``name`` (``None`` for external endpoints)."""
        return self._endpoints[name][0]

    # -------------------------------------------------------------- surges
    def add_latency_surge(self, start: float, end: float, extra: float) -> None:
        """Add ``extra`` seconds to every packet sent in ``[start, end)``."""
        if end <= start or extra < 0:
            raise ValueError("invalid latency surge window")
        self._surges.append(_LatencySurge(start, end, extra))

    def _surge_extra(self, t: float) -> float:
        return sum(s.extra for s in self._surges if s.start <= t < s.end)

    # ------------------------------------------------------------- delivery
    def latency(self, src: str, dst: str) -> float:
        """One-way latency for a packet sent *now* from ``src`` to ``dst``."""
        src_node = self._endpoints[src][0]
        dst_node = self._endpoints[dst][0]
        if src_node is not None and src_node is dst_node:
            base = self.config.intra_node_latency
        else:
            base = self.config.inter_node_latency
        if self.rng is not None and self.config.jitter > 0:
            base *= 1.0 + float(self.rng.random()) * self.config.jitter
        base += self._surge_extra(self.sim.now)
        if dst_node is not None:
            base += dst_node.rx_overhead
        return base

    def send(self, packet: RpcPacket) -> None:
        """Send ``packet``; it is delivered after the modeled latency.

        Delivery runs the destination node's RX hooks (if any) and then
        the endpoint handler.
        """
        if packet.dst not in self._endpoints:
            raise KeyError(f"unknown destination endpoint {packet.dst!r}")
        if packet.src not in self._endpoints:
            raise KeyError(f"unknown source endpoint {packet.src!r}")
        packet.send_time = self.sim.now
        self.packets_sent += 1
        self.sim.schedule(self.latency(packet.src, packet.dst), self._deliver, packet)

    def _deliver(self, packet: RpcPacket) -> None:
        node, handler = self._endpoints[packet.dst]
        self.packets_delivered += 1
        for obs in self._observers:
            obs(packet)
        if node is not None:
            node.on_packet(packet)
        handler(packet)
