"""RPC fabric: packet routing, latency, and injectable latency surges.

Every packet between endpoints (containers or the external client) takes
one network hop with a configurable base latency — small for same-node
(bridge/loopback) traffic, larger for cross-node traffic — plus optional
lognormal-ish jitter.  On arrival at a *server* node the packet first
passes through the node's RX hooks (FirstResponder's attachment point,
see :mod:`repro.cluster.node`), whose modeled per-packet cost is added to
the delivery latency, and is then handed to the destination endpoint.

The abstract says SurgeGuard guards QoS "during surges in load and
network latency"; :meth:`Network.add_latency_surge` injects the latter —
an additive delay applied to packets sent inside a time window.

**Fast lane.**  The per-packet path is the hottest code in the whole
simulation (one ``send`` + one delivery per RPC hop), so it avoids
re-deriving anything that is invariant per (src, dst) pair or per time
window:

* **Route cache** — endpoints register exactly once (duplicates are
  rejected), so the (base latency, destination node, handler) triple of
  a pair never changes after first use and is cached in a flat dict.
* **Batched jitter** — uniform draws are pre-drawn in blocks of
  :data:`JITTER_BLOCK` via ``rng.random(n)`` and consumed by index.
  numpy Generators produce bit-identical streams whether drawn one at a
  time or in blocks, so results match the unbatched path exactly.
* **Surge timeline** — surges are kept sorted by start; the currently
  active extra and the timestamp until which it is valid are cached, so
  the common case is one comparison.  Expired windows are pruned (sim
  time is monotonic on the send path), so long runs never scan dead
  surges.
* **Packet recycling** — the network owns a
  :class:`~repro.cluster.packet.PacketPool`; delivery is the central
  release point for responses, so the steady state re-circulates a
  handful of packet objects instead of allocating one per hop
  (DESIGN.md §8).
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass
from operator import attrgetter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.engine import Simulator
from repro.cluster.node import Node
from repro.cluster.packet import REQUEST, RESPONSE, PacketPool, RpcPacket

__all__ = ["Network", "NetworkConfig"]

Endpoint = Callable[[RpcPacket], None]

#: Uniform jitter draws pre-drawn per ``rng.random(n)`` refill.
JITTER_BLOCK = 1024


@dataclass(frozen=True)
class NetworkConfig:
    """Latency parameters of the simulated fabric.

    Defaults approximate a ToR-switched datacenter rack: ~20 µs
    kernel-stack RTT share per one-way cross-node hop, ~6 µs for
    same-node container-to-container traffic, and client traffic treated
    as cross-node (the paper's client is a separate machine).
    """

    intra_node_latency: float = 6e-6
    inter_node_latency: float = 20e-6
    #: Relative jitter: one-way latency is multiplied by ``1 + U(0, jitter)``.
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.intra_node_latency < 0 or self.inter_node_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")


@dataclass
class _LatencySurge:
    start: float
    end: float
    extra: float


class Network:
    """Routes :class:`RpcPacket` objects between registered endpoints.

    Parameters
    ----------
    sim:
        The simulator.
    config:
        Latency parameters.
    rng:
        Generator for jitter draws (pass a dedicated stream).
    """

    def __init__(
        self,
        sim: Simulator,
        config: NetworkConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        self.sim = sim
        self.config = config
        self.rng = rng
        #: Free-list recycler for hot-path packets.  The network owns it
        #: because the network is the one place every packet's life ends:
        #: responses are released centrally in :meth:`_deliver` once the
        #: destination handler returns (nothing retains a response —
        #: callers copy what they need synchronously), and an armed loss
        #: window releases what it drops.
        self.pool = PacketPool()
        self._endpoints: Dict[str, Tuple[Optional[Node], Endpoint]] = {}
        self._surges: List[_LatencySurge] = []
        self._observers: List[Endpoint] = []
        self.packets_sent = 0
        self.packets_delivered = 0
        #: Packets discarded by an armed fault injector's loss windows
        #: (never incremented on the fault-free path — see repro.faults).
        self.packets_dropped = 0
        # (src, dst) -> (base latency, dst node, handler); safe to cache
        # forever because registration is once-only.
        self._routes: Dict[Tuple[str, str], Tuple[float, Optional[Node], Endpoint]] = {}
        # Load-balancer tier: virtual endpoint name -> ReplicaSet.  Empty
        # unless the cluster armed replication; the unarmed cost is one
        # falsy-dict check per send.  Maps the service name *and* every
        # replica endpoint, so retries to a concrete replica re-resolve.
        self._virtual: Dict[str, object] = {}
        #: REQUESTs the LB could not place (no READY replica); the packet
        #: is released, not sent — mirrors a connection-refused at the VIP.
        self.packets_unroutable = 0
        # Pre-drawn U(0,1) jitter block, consumed by index.
        self._jitter_block: List[float] = []
        self._jitter_idx = 0
        self._jitter_on = rng is not None and config.jitter > 0
        # Active-surge cache: total extra valid for t in [_surge_from, _surge_until).
        self._surge_active = 0.0
        self._surge_from = -math.inf
        self._surge_until = math.inf
        # Sharded tier (DESIGN.md §12): when armed, sends whose
        # destination node lives on another shard are diverted to the
        # boundary outbox instead of being scheduled locally.  ``None``
        # keeps the legacy path untouched; an armed context with an
        # *empty* remote set (shards=1) costs one identity check plus an
        # empty-frozenset membership test per send and changes nothing
        # else — that is the bit-identical pass-through.
        self._shard = None
        self._shard_remote: Optional[frozenset] = None
        # Expired-surge pruning assumes latency queries are monotonic in
        # time, which boundary receives (queried at the sender's earlier
        # send_time) break; armed sharding with peers disables it.
        self._surge_prune = True

    def add_observer(self, fn: Endpoint) -> None:
        """Register a read-only tap invoked on *every* delivery —
        including to external endpoints, which node RX hooks never see.
        Zero modeled cost: observers are measurement, not mechanism."""
        self._observers.append(fn)

    def remove_observer(self, fn: Endpoint) -> None:
        """Detach a previously-added observer (no-op if absent).

        Lets the validation monitors disarm cleanly, restoring the
        zero-observer fast path.  Equality (not identity) comparison, so
        a re-derived bound method like ``tracer._on_packet`` matches the
        one originally registered."""
        self._observers = [obs for obs in self._observers if obs != fn]

    # ------------------------------------------------------------- registry
    def register(self, name: str, node: Optional[Node], handler: Endpoint) -> None:
        """Register an endpoint.  ``node=None`` marks an external endpoint
        (the client machine — no RX hooks run for packets it receives)."""
        if name in self._endpoints:
            raise ValueError(f"duplicate endpoint {name!r}")
        self._endpoints[name] = (node, handler)

    def add_virtual(self, name: str, rset: object) -> None:
        """Alias ``name`` to a replica set for LB resolution on send."""
        self._virtual[name] = rset

    def endpoint_node(self, name: str) -> Optional[Node]:
        """The node hosting ``name`` (``None`` for external endpoints)."""
        return self._endpoints[name][0]

    def _route(self, src: str, dst: str) -> Tuple[float, Optional[Node], Endpoint]:
        """Resolve and cache the (base latency, dst node, handler) of a pair."""
        if dst not in self._endpoints:
            raise KeyError(f"unknown destination endpoint {dst!r}")
        if src not in self._endpoints:
            raise KeyError(f"unknown source endpoint {src!r}")
        src_node = self._endpoints[src][0]
        dst_node, handler = self._endpoints[dst]
        if src_node is not None and src_node is dst_node:
            base = self.config.intra_node_latency
        else:
            base = self.config.inter_node_latency
        route = (base, dst_node, handler)
        self._routes[(src, dst)] = route
        return route

    # -------------------------------------------------------------- surges
    def add_latency_surge(self, start: float, end: float, extra: float) -> None:
        """Add ``extra`` seconds to every packet sent in ``[start, end)``.

        Windows entirely in the past (``end <= now``) can never affect a
        packet and are dropped immediately rather than kept on the
        timeline.
        """
        if end <= start or extra < 0:
            raise ValueError("invalid latency surge window")
        if end <= self.sim.now:
            return
        insort(self._surges, _LatencySurge(start, end, extra), key=attrgetter("start"))
        # Invalidate the active-window cache.
        self._surge_from = math.inf
        self._surge_until = -math.inf

    def _surge_extra(self, t: float) -> float:
        if self._surge_from <= t < self._surge_until:
            return self._surge_active
        return self._surge_rescan(t)

    def _surge_rescan(self, t: float) -> float:
        """Recompute the active extra at ``t`` and its validity window,
        pruning surges that ended at or before ``t``.

        Pruning is skipped when the sharded boundary is armed (queries
        are then non-monotonic); the ``s.end > t`` guard below keeps the
        computed extra correct either way — with pruning on it can never
        be false, so the pruned path's arithmetic is unchanged.
        """
        surges = self._surges
        if surges and self._surge_prune:
            live = [s for s in surges if s.end > t]
            if len(live) != len(surges):
                self._surges = surges = live
        extra = 0.0
        until = math.inf
        for s in surges:  # sorted by start
            if s.start <= t:
                if s.end > t:
                    extra += s.extra
                    if s.end < until:
                        until = s.end
            else:
                # First future window bounds the cache validity.
                if s.start < until:
                    until = s.start
                break
        self._surge_active = extra
        self._surge_from = t
        self._surge_until = until
        return extra

    # ------------------------------------------------------------- delivery
    def _jitter_factor(self) -> float:
        """Next ``1 + U(0, jitter)`` multiplier from the pre-drawn block."""
        i = self._jitter_idx
        if i >= len(self._jitter_block):
            # tolist() keeps the exact float64 values as Python floats.
            self._jitter_block = self.rng.random(JITTER_BLOCK).tolist()
            i = 0
        self._jitter_idx = i + 1
        return 1.0 + self._jitter_block[i] * self.config.jitter

    def latency(self, src: str, dst: str) -> float:
        """One-way latency for a packet sent *now* from ``src`` to ``dst``."""
        route = self._routes.get((src, dst))
        if route is None:
            route = self._route(src, dst)
        base, dst_node, _ = route
        if self._jitter_on:
            base *= self._jitter_factor()
        base += self._surge_extra(self.sim.now)
        if dst_node is not None:
            base += dst_node.rx_overhead
        return base

    def send(self, packet: RpcPacket) -> None:
        """Send ``packet``; it is delivered after the modeled latency.

        Delivery runs the destination node's RX hooks (if any) and then
        the endpoint handler.
        """
        if self._virtual and packet.kind == REQUEST:
            rset = self._virtual.get(packet.dst)
            if rset is not None:
                resolved = rset.resolve(packet)
                if resolved is None:
                    # No READY replica: the request dies at the VIP.
                    self.packets_unroutable += 1
                    packet.send_time = self.sim.now
                    self.pool.release(packet)
                    return
                packet.dst = resolved
        route = self._routes.get((packet.src, packet.dst))
        if route is None:
            route = self._route(packet.src, packet.dst)
        base, dst_node, handler = route
        remote = self._shard_remote
        if remote is not None and dst_node in remote:
            # Boundary crossing: stamp + count the send here (the
            # receiver counts the delivery), then hand the packet to the
            # shard context, which serializes it and releases it to the
            # local pool.  Jitter is deliberately *not* drawn here — the
            # receiving shard draws it from its own stream so each
            # shard's RNG consumption is self-contained.
            packet.send_time = self.sim.now
            self.packets_sent += 1
            self._shard.divert(packet, self.pool, dst_node)
            return
        if self._jitter_on:
            base *= self._jitter_factor()
        t = self.sim.now
        if self._surge_from <= t < self._surge_until:
            base += self._surge_active
        else:
            base += self._surge_rescan(t)
        if dst_node is not None:
            base += dst_node._rx_overhead
        packet.send_time = t
        self.packets_sent += 1
        self.sim.schedule(base, self._deliver, packet, dst_node, handler)

    # ------------------------------------------------------- shard boundary
    def arm_shard(self, ctx) -> None:
        """Arm the sharded boundary (see :mod:`repro.sim.shard`).

        With a bound context whose remote set is empty (``shards=1``)
        every send still takes the legacy path — the pass-through the
        golden cells pin.  With peers present, expired-surge pruning is
        disabled because boundary receives query the surge timeline at
        the sender's send_time, which may precede earlier local queries.
        """
        self._shard = ctx
        self._shard_remote = ctx.remote_nodes
        if ctx.remote_nodes:
            self._surge_prune = False

    def recv_boundary(
        self,
        request_id: int,
        kind: int,
        src: str,
        dst: str,
        start_time: float,
        upscale: int,
        send_time: float,
        error: bool,
        context,
    ) -> None:
        """Materialize a packet that crossed a shard boundary.

        Mirrors :meth:`send`'s latency arithmetic exactly — same route
        base, same jitter-then-surge-then-RX order — except the jitter
        draw comes from *this* shard's stream and the surge timeline is
        queried at the original ``send_time``.  The rebuilt packet is
        acquired from this shard's own pool (pooled objects never cross
        the boundary) and delivery lands at ``send_time + latency``,
        which conservative sync guarantees is never in this shard's
        past.  ``packets_sent`` is not incremented: the sender already
        counted it, so cluster-wide totals sum correctly across shards.
        """
        route = self._routes.get((src, dst))
        if route is None:
            route = self._route(src, dst)
        base, dst_node, handler = route
        if self._jitter_on:
            base *= self._jitter_factor()
        if self._surge_from <= send_time < self._surge_until:
            base += self._surge_active
        else:
            base += self._surge_rescan(send_time)
        if dst_node is not None:
            base += dst_node._rx_overhead
        packet = self.pool.acquire(
            request_id, kind, src, dst, start_time, upscale,
            error=error, context=context,
        )
        packet.send_time = send_time
        self.sim.schedule_at(send_time + base, self._deliver, packet, dst_node, handler)

    def _deliver(
        self, packet: RpcPacket, node: Optional[Node], handler: Endpoint
    ) -> None:
        self.packets_delivered += 1
        for obs in self._observers:
            obs(packet)
        if node is not None:
            node.on_packet(packet)
        handler(packet)
        if packet.kind == RESPONSE:
            # Central release point: a response's life ends with its
            # delivery — every consumer (client callback, invocation
            # continuation, RPC reply latch, monitors, tracer) reads it
            # synchronously inside ``handler`` and retains nothing.
            self.pool.release(packet)
