"""Nodes: core budgets, container hosting, and the RX hook point.

A :class:`Node` models one server of the paper's testbed.  The paper
reserves cores per node for the OS/network stack and the controller
itself (16 + 3 of 64 logical cores) and exposes the remainder to the
workload; :attr:`Node.cores` here is that *workload* budget — controller
and OS overheads are modeled as explicit costs, not as simulated cores.

The node also owns the **RX hook list**: callables invoked for every
packet delivered to a container on this node, *before* the packet
reaches the container.  This is the simulation analogue of
FirstResponder's kernel hook at ``netif_receive_skb`` — earliest
possible interception on the receive path.  Each hook declares a
per-packet processing cost which the network adds to the delivery
latency (the paper measures 0.26 µs for FirstResponder's primary
thread).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, TYPE_CHECKING

from repro.sim.engine import Simulator
from repro.cluster.container import Container
from repro.cluster.frequency import DvfsModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.packet import RpcPacket

__all__ = ["Node"]

RxHook = Callable[["RpcPacket"], None]


class Node:
    """One server node hosting containers under a shared core budget.

    Parameters
    ----------
    sim:
        The simulator.
    name:
        Node name (e.g. ``"node0"``).
    cores:
        Workload core budget (logical cores usable by containers).
    dvfs:
        DVFS model shared by all containers on this node.
    """

    def __init__(self, sim: Simulator, name: str, cores: float, dvfs: DvfsModel):
        if cores <= 0:
            raise ValueError(f"node {name!r}: cores must be positive")
        self.sim = sim
        self.name = name
        self.cores = float(cores)
        self.dvfs = dvfs
        self.containers: Dict[str, Container] = {}
        self._hooks: List[Tuple[float, RxHook]] = []
        # Per-packet caches, rebuilt on hook add/remove: total hook cost
        # and the hook callables in run order.  The network reads these on
        # every delivery, so they must not be recomputed per packet.
        self._rx_overhead = 0.0
        self._hook_fns: Tuple[RxHook, ...] = ()

    # ----------------------------------------------------------- containers
    def add_container(self, container: Container) -> None:
        """Host ``container`` on this node (its allocation counts here)."""
        if container.name in self.containers:
            raise ValueError(f"duplicate container {container.name!r} on {self.name!r}")
        if container.node is not None:
            raise ValueError(f"container {container.name!r} already placed")
        if self.allocated + container.cores > self.cores + 1e-9:
            raise ValueError(
                f"node {self.name!r}: adding {container.name!r} "
                f"({container.cores} cores) exceeds budget {self.cores}"
            )
        container.node = self
        self.containers[container.name] = container

    def remove_container(self, name: str) -> Container:
        """Evict a container (replica reaping); its cores return to the
        node budget and feasibility sweeps stop seeing it."""
        container = self.containers.pop(name)
        container.node = None
        return container

    @property
    def allocated(self) -> float:
        """Total cores currently allocated to containers on this node."""
        return sum(c.cores for c in self.containers.values())

    @property
    def free_cores(self) -> float:
        """Unallocated workload cores available for upscaling."""
        return self.cores - self.allocated

    def can_grow(self, container_name: str, delta: float) -> bool:
        """True if ``container_name`` may gain ``delta`` cores within budget."""
        if container_name not in self.containers:
            raise KeyError(container_name)
        return delta <= self.free_cores + 1e-9

    def set_cores(self, container_name: str, cores: float) -> None:
        """Set a container's allocation, enforcing the node budget."""
        container = self.containers[container_name]
        others = self.allocated - container.cores
        if others + cores > self.cores + 1e-9:
            raise ValueError(
                f"node {self.name!r}: allocation {cores} for {container_name!r} "
                f"exceeds remaining budget {self.cores - others:.2f}"
            )
        container.set_cores(cores)

    def allocation_errors(self, eps: float = 1e-6) -> List[str]:
        """Core-feasibility problems on this node, as human-readable strings.

        Empty list = feasible: every container holds a positive
        allocation and the sum stays within the node's workload budget.
        Used by the runtime invariant monitors (:mod:`repro.validate`).
        """
        errors: List[str] = []
        total = 0.0
        for c in self.containers.values():
            if c.cores <= 0:
                errors.append(
                    f"{self.name}: container {c.name!r} has non-positive "
                    f"allocation {c.cores}"
                )
            total += c.cores
        if total > self.cores + eps:
            errors.append(
                f"{self.name}: allocated {total:.6f} cores exceeds "
                f"budget {self.cores:.6f}"
            )
        return errors

    # -------------------------------------------------------------- RX path
    def add_rx_hook(self, hook: RxHook, *, cost: float = 0.0) -> None:
        """Attach an RX-side packet hook with a per-packet processing cost."""
        if cost < 0:
            raise ValueError("hook cost must be non-negative")
        self._hooks.append((cost, hook))
        self._refresh_hook_caches()

    def remove_rx_hook(self, hook: RxHook) -> None:
        """Detach a previously-added hook (no-op if absent)."""
        self._hooks = [(c, h) for (c, h) in self._hooks if h is not hook]
        self._refresh_hook_caches()

    def _refresh_hook_caches(self) -> None:
        self._rx_overhead = sum(c for c, _ in self._hooks)
        self._hook_fns = tuple(h for _, h in self._hooks)

    @property
    def rx_overhead(self) -> float:
        """Total per-packet latency added by the installed hooks."""
        return self._rx_overhead

    def on_packet(self, packet: "RpcPacket") -> None:
        """Run all RX hooks on an arriving packet (called by the network)."""
        for hook in self._hook_fns:
            hook(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Node {self.name!r} cores={self.cores} "
            f"allocated={self.allocated:.1f} containers={len(self.containers)}>"
        )
