"""RPC packets and the SurgeGuard metadata fields (paper Fig. 8).

Every inter-container message in the simulation is an :class:`RpcPacket`.
Two fields implement the paper's protocol extension:

* ``start_time`` — the timestamp at which the end-to-end job entered the
  application.  Set by the *first* container and propagated unchanged by
  every subsequent hop.  FirstResponder uses it for per-packet progress
  tracking (Eq. 4–5).
* ``upscale`` — a decentralized upscaling hint.  A container whose
  ``queueBuildup`` exceeds its threshold stamps outgoing *request*
  packets with a positive TTL; each downstream container propagates the
  hint decremented by one, bounding how far down the task graph a single
  upstream violation reaches (Table II, §IV "Metadata Fields").

Packets also carry plumbing for the simulation itself (routing ids and a
reference to the in-flight call record); controllers never read those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["RpcPacket", "REQUEST", "RESPONSE"]

REQUEST = "request"
RESPONSE = "response"


@dataclass(slots=True)
class RpcPacket:
    """A single RPC message travelling between two containers.

    Parameters mirror the wire format sketched in Fig. 8 of the paper:
    the application payload (not modeled), plus the two SurgeGuard
    metadata fields.
    """

    #: End-to-end request id (unique per user request).
    request_id: int
    #: ``REQUEST`` or ``RESPONSE``.
    kind: str
    #: Name of the sending container ("client" for ingress packets).
    src: str
    #: Name of the destination container (or "client" for the final reply).
    dst: str
    #: SurgeGuard metadata: job start timestamp (seconds). Propagated unchanged.
    start_time: float
    #: SurgeGuard metadata: downstream-upscale hint TTL (hops). 0 = no hint.
    upscale: int = 0
    #: Simulated send timestamp; filled in by the network.
    send_time: float = 0.0
    #: Response-only: the callee completed the request as a *failure*
    #: (a downstream call exhausted its retries, or the callee crashed).
    #: Error responses are terminal — callers propagate the failure
    #: instead of retrying, like a gRPC status error vs a transport loss.
    error: bool = False
    #: Opaque reference used by the invocation machinery to resume a caller.
    context: Optional[Any] = field(default=None, repr=False)

    def fork_downstream(self, dst: str, src: str, upscale: int) -> "RpcPacket":
        """Build the request packet for the next hop of the same job.

        ``start_time`` propagates unchanged; the ``upscale`` TTL is supplied
        by the caller (the container runtime applies the decrement/stamping
        rules — see :meth:`repro.cluster.runtime.ContainerRuntime.outgoing_upscale`).
        """
        return RpcPacket(
            request_id=self.request_id,
            kind=REQUEST,
            src=src,
            dst=dst,
            start_time=self.start_time,
            upscale=upscale,
        )

    def make_response(self, src: str, *, error: bool = False) -> "RpcPacket":
        """Build the response packet back to this packet's sender."""
        return RpcPacket(
            request_id=self.request_id,
            kind=RESPONSE,
            src=src,
            dst=self.src,
            start_time=self.start_time,
            upscale=0,
            error=error,
            context=self.context,
        )

    def clone_retry(self) -> "RpcPacket":
        """Fresh copy of a request for an RPC retransmission.

        A new object on purpose: the network mutates ``send_time`` and
        the RPC layer rebinds ``context`` per attempt, so attempts must
        not share packet state.
        """
        return RpcPacket(
            request_id=self.request_id,
            kind=self.kind,
            src=self.src,
            dst=self.dst,
            start_time=self.start_time,
            upscale=self.upscale,
        )
