"""RPC packets and the SurgeGuard metadata fields (paper Fig. 8).

Every inter-container message in the simulation is an :class:`RpcPacket`.
Two fields implement the paper's protocol extension:

* ``start_time`` — the timestamp at which the end-to-end job entered the
  application.  Set by the *first* container and propagated unchanged by
  every subsequent hop.  FirstResponder uses it for per-packet progress
  tracking (Eq. 4–5).
* ``upscale`` — a decentralized upscaling hint.  A container whose
  ``queueBuildup`` exceeds its threshold stamps outgoing *request*
  packets with a positive TTL; each downstream container propagates the
  hint decremented by one, bounding how far down the task graph a single
  upstream violation reaches (Table II, §IV "Metadata Fields").

Packets also carry plumbing for the simulation itself (routing ids and a
reference to the in-flight call record); controllers never read those.

**Allocation discipline.**  One packet per hop is the dominant hot-path
allocation, so the network owns a :class:`PacketPool`: packets built by
the pool are returned to a free list at explicit release points (central
response release after delivery, loss-window drop, server-side request
release at completion — see DESIGN.md §8) and reused by the next
acquire.  Pool management is tracked per object in ``_pool_state``, so
packets constructed directly (tests, the RPC retry layer, external
tooling) are simply never recycled; releasing one is a no-op and
double-releasing a pooled one always raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, List, Optional

from repro.sim.recycle import pool_debug, pool_enabled

__all__ = ["PacketPool", "PoolError", "RpcPacket", "REQUEST", "RESPONSE"]

REQUEST = "request"
RESPONSE = "response"

# ``_pool_state`` values.
_UNMANAGED = 0  # directly constructed: never enters a free list
_LIVE = 1  # acquired from a pool, currently in flight
_FREED = 2  # sitting in a free list; any use is a bug


class PoolError(RuntimeError):
    """Raised on pool misuse: double release, or (in debug mode) any use
    of a packet after it was released."""


@dataclass(slots=True)
class RpcPacket:
    """A single RPC message travelling between two containers.

    Parameters mirror the wire format sketched in Fig. 8 of the paper:
    the application payload (not modeled), plus the two SurgeGuard
    metadata fields.
    """

    #: End-to-end request id (unique per user request).
    request_id: int
    #: ``REQUEST`` or ``RESPONSE``.
    kind: str
    #: Name of the sending container ("client" for ingress packets).
    src: str
    #: Name of the destination container (or "client" for the final reply).
    dst: str
    #: SurgeGuard metadata: job start timestamp (seconds). Propagated unchanged.
    start_time: float
    #: SurgeGuard metadata: downstream-upscale hint TTL (hops). 0 = no hint.
    upscale: int = 0
    #: Simulated send timestamp; filled in by the network.
    send_time: float = 0.0
    #: Response-only: the callee completed the request as a *failure*
    #: (a downstream call exhausted its retries, or the callee crashed).
    #: Error responses are terminal — callers propagate the failure
    #: instead of retrying, like a gRPC status error vs a transport loss.
    error: bool = False
    #: Opaque reference used by the invocation machinery to resume a caller.
    context: Optional[Any] = field(default=None, repr=False)
    #: Pool bookkeeping (``_UNMANAGED``/``_LIVE``/``_FREED``); simulation
    #: semantics never depend on it.
    _pool_state: int = field(default=0, init=False, repr=False, compare=False)

    def fork_downstream(self, dst: str, src: str, upscale: int) -> "RpcPacket":
        """Build the request packet for the next hop of the same job.

        ``start_time`` propagates unchanged; the ``upscale`` TTL is supplied
        by the caller (the container runtime applies the decrement/stamping
        rules — see :meth:`repro.cluster.runtime.ContainerRuntime.outgoing_upscale`).

        Built with :func:`dataclasses.replace` so a future field is
        *propagated by default* and has to be reset here deliberately
        (``tests/cluster/test_packet.py`` pins the full field ledger).
        """
        return replace(
            self,
            kind=REQUEST,
            src=src,
            dst=dst,
            upscale=upscale,
            send_time=0.0,
            error=False,
            context=None,
        )

    def make_response(self, src: str, *, error: bool = False) -> "RpcPacket":
        """Build the response packet back to this packet's sender."""
        return replace(
            self,
            kind=RESPONSE,
            src=src,
            dst=self.src,
            upscale=0,
            send_time=0.0,
            error=error,
        )

    def clone_retry(self) -> "RpcPacket":
        """Fresh copy of a request for an RPC retransmission.

        A new object on purpose: the network mutates ``send_time`` and
        the RPC layer rebinds ``context`` per attempt, so attempts must
        not share packet state.  Everything else — including ``error`` —
        propagates verbatim.
        """
        return replace(self, send_time=0.0, context=None)


def _poison_context(*_args: Any, **_kwargs: Any) -> None:
    """Installed as ``context`` on released packets in debug mode."""
    raise PoolError("use-after-release: context of a released RpcPacket called")


#: Debug-mode sentinel written into the string fields of released
#: packets: routes on it miss, ``handle_packet`` rejects it.
_POISON = "\x00released-packet\x00"


class PacketPool:
    """Free-list recycler for hot-path :class:`RpcPacket` objects.

    One pool per :class:`~repro.cluster.network.Network`.  The switches
    are read from the environment **at construction time**
    (:mod:`repro.sim.recycle`), so a test can build one cluster with
    pooling and one without in the same process.

    Ownership rules (the full release-point map is DESIGN.md §8):

    * Packets the pool hands out are ``_LIVE`` and must be released
      exactly once; a second :meth:`release` raises even outside debug
      mode (state corruption would otherwise be silent and seed-dependent).
    * Directly-constructed packets are ``_UNMANAGED``; releasing them is
      a no-op, so release points don't need to know how a packet was made.
    * A *missed* release merely leaks the object to the garbage
      collector — exactly the pre-pool behavior, never a correctness bug.
    """

    __slots__ = ("enabled", "debug", "_free", "constructed", "recycled", "released")

    def __init__(
        self, *, enabled: Optional[bool] = None, debug: Optional[bool] = None
    ):
        self.enabled = pool_enabled() if enabled is None else enabled
        self.debug = pool_debug() if debug is None else debug
        self._free: List[RpcPacket] = []
        #: Fresh ``RpcPacket`` constructions through this pool (the
        #: object-churn numerator of the allocation benchmark).
        self.constructed = 0
        #: Acquisitions served from the free list.
        self.recycled = 0
        #: Successful releases (``len(_free)`` at quiescence).
        self.released = 0

    # --------------------------------------------------------------- acquire
    def acquire(
        self,
        request_id: int,
        kind: str,
        src: str,
        dst: str,
        start_time: float,
        upscale: int = 0,
        *,
        error: bool = False,
        context: Optional[Any] = None,
    ) -> RpcPacket:
        """A packet with the given fields — recycled when possible."""
        free = self._free
        if free:
            pkt = free.pop()
            pkt.request_id = request_id
            pkt.kind = kind
            pkt.src = src
            pkt.dst = dst
            pkt.start_time = start_time
            pkt.upscale = upscale
            pkt.send_time = 0.0
            pkt.error = error
            pkt.context = context
            pkt._pool_state = _LIVE
            self.recycled += 1
            return pkt
        pkt = RpcPacket(
            request_id=request_id,
            kind=kind,
            src=src,
            dst=dst,
            start_time=start_time,
            upscale=upscale,
            error=error,
            context=context,
        )
        self.constructed += 1
        if self.enabled:
            pkt._pool_state = _LIVE
        return pkt

    def fork_downstream(
        self, pkt: RpcPacket, *, dst: str, src: str, upscale: int
    ) -> RpcPacket:
        """Pooled :meth:`RpcPacket.fork_downstream` for the hot path."""
        return self.acquire(
            pkt.request_id, REQUEST, src, dst, pkt.start_time, upscale
        )

    def make_response(
        self, pkt: RpcPacket, *, src: str, error: bool = False
    ) -> RpcPacket:
        """Pooled :meth:`RpcPacket.make_response` for the hot path."""
        return self.acquire(
            pkt.request_id,
            RESPONSE,
            src,
            pkt.src,
            pkt.start_time,
            0,
            error=error,
            context=pkt.context,
        )

    # --------------------------------------------------------------- release
    def release(self, pkt: RpcPacket) -> None:
        """Return ``pkt`` to the free list (no-op for unmanaged packets)."""
        state = pkt._pool_state
        if state == _UNMANAGED:
            return
        if state == _FREED:
            raise PoolError(
                f"double release of pooled packet (request_id={pkt.request_id!r})"
            )
        pkt._pool_state = _FREED
        pkt.context = None  # never keep a continuation graph alive in the pool
        if self.debug:
            nan = float("nan")
            pkt.kind = _POISON
            pkt.src = _POISON
            pkt.dst = _POISON
            pkt.start_time = nan
            pkt.send_time = nan
            pkt.context = _poison_context
        self.released += 1
        self._free.append(pkt)

    # ------------------------------------------------------------ accounting
    @property
    def free(self) -> int:
        """Packets currently sitting in the free list."""
        return len(self._free)

    def stats(self) -> dict:
        """Picklable counter snapshot for the allocation benchmark."""
        return {
            "constructed": self.constructed,
            "recycled": self.recycled,
            "released": self.released,
            "free": len(self._free),
        }
