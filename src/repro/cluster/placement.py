"""Service-to-node placement policies.

The paper distributes each application's containers across the cluster's
nodes (Fig. 1: "each node contains one instance of SurgeGuard managing
resources for the containers on that node") and scales experiments from
1 to 4 nodes (Fig. 13).  Placement here is static for the duration of a
run — SurgeGuard is robust to re-placement because it keeps only local
state, and tests exercise that property directly, but the evaluation
scenarios do not migrate containers mid-run.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.loadbalancer import replica_name

__all__ = [
    "round_robin",
    "pack_first",
    "by_depth",
    "expand_replicas",
    "expand_depths",
    "node_shard_map",
]


def round_robin(services: Sequence[str], n_nodes: int) -> Dict[str, int]:
    """Spread services across nodes in declaration order.

    Declaration order follows the task graph root-to-leaves, so adjacent
    graph stages usually land on different nodes — the worst case for a
    controller that needed global knowledge, and therefore the honest
    case for demonstrating SurgeGuard's decentralization.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    return {name: i % n_nodes for i, name in enumerate(services)}


def pack_first(services: Sequence[str], n_nodes: int) -> Dict[str, int]:
    """Place everything on node 0 (single-node experiments)."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    return {name: 0 for name in services}


def by_depth(depths: Dict[str, int], n_nodes: int) -> Dict[str, int]:
    """Place services so consecutive task-graph *stages* alternate nodes.

    Guarantees that for ``n_nodes > 1`` every parent→child edge crosses
    nodes, maximizing the reliance on packet-carried upscale hints (the
    decentralization stress test used in the node-scaling experiments).
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    return {name: depth % n_nodes for name, depth in depths.items()}


def node_shard_map(n_nodes: int, shards: int) -> Dict[int, int]:
    """Partition node indices into ``shards`` contiguous, balanced blocks.

    Node ``i`` goes to shard ``i * shards // n_nodes`` — the standard
    balanced-block rule (block sizes differ by at most one, shard 0 gets
    the first block, every shard is non-empty for ``shards <= n_nodes``).
    Contiguity matters for the sharded tier: node 0 — where round-robin
    placement puts the workload root — always lands on shard 0, which
    also hosts the external client, keeping client↔root traffic off the
    boundary.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if shards < 1:
        raise ValueError("need at least one shard")
    if shards > n_nodes:
        raise ValueError(f"cannot split {n_nodes} nodes across {shards} shards")
    return {i: i * shards // n_nodes for i in range(n_nodes)}


def expand_replicas(services: Sequence[str], replicas: int) -> List[str]:
    """Expand service names to replica endpoint names, in declaration
    order with a service's replicas consecutive.

    ``replicas=1`` is the identity (replica 0 keeps the bare service
    name), so every placement policy produces byte-identical maps for an
    unreplicated-equivalent cluster — the golden-fingerprint seam.
    """
    if replicas < 1:
        raise ValueError("need at least one replica")
    return [replica_name(s, k) for s in services for k in range(replicas)]


def expand_depths(depths: Dict[str, int], replicas: int) -> Dict[str, int]:
    """Replica-expanded variant of a task-graph depth map: every replica
    inherits its service's stage depth (stage-alternating placement
    treats replicas of one service as one stage)."""
    if replicas < 1:
        raise ValueError("need at least one replica")
    return {
        replica_name(s, k): d for s, d in depths.items() for k in range(replicas)
    }
