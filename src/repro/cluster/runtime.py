"""Per-container runtime metrics — the paper's modified service runtimes.

The paper instruments DeathStarBench so each container reports averaged
metrics to Escalator over shared files (Fig. 7 step ④).  This module is
that instrumentation.  For every completed request at a container it
records:

* ``execTime`` — wall time from request arrival at the container to the
  response leaving it (includes downstream round trips, exactly as a
  service-side span would measure it);
* ``timeWaitingForFreeConn`` — total time blocked waiting for a pooled
  connection (the *implicit* threadpool queue of §III-B);
* ``execMetric = execTime − timeWaitingForFreeConn``  (Eq. 2);
* ``observedTimeFromStart`` at arrival — used for profiling
  ``expectedTimeFromStart``.

Controllers read *windows* — aggregates over all requests completed
since their previous read — via :meth:`ContainerRuntime.collect`; the
window-level ``queueBuildup = Σ execTime / Σ execMetric`` (Eq. 3, the
ratio of the window means).

The runtime also implements the decentralized **upscale-hint plumbing**
(Table II / §IV):

* Escalator stamps a container via :meth:`stamp_upscale`; while the stamp
  is live, outgoing request packets carry ``upscale = ttl``.
* A request arriving with ``pkt.upscale = k > 0`` marks the container as
  an upscaling candidate *and* propagates ``k − 1`` on that request's own
  downstream packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.sim.engine import Simulator

__all__ = ["ContainerRuntime", "RuntimeWindow"]


@dataclass(frozen=True)
class RuntimeWindow:
    """Aggregated metrics for one reporting window of one container."""

    #: Window boundaries (simulated seconds).
    t_start: float
    t_end: float
    #: Requests completed in the window.
    count: int
    #: Mean wall execution time per request (seconds).
    avg_exec_time: float
    #: Mean connection-wait per request (seconds).
    avg_conn_wait: float
    #: Mean execMetric per request (seconds) — Eq. 2.
    avg_exec_metric: float
    #: Window queue-buildup ratio — Eq. 3 (1.0 when idle or no pools).
    queue_buildup: float
    #: Requests that *arrived* carrying a positive ``upscale`` hint.
    upscale_hints: int
    #: Largest incoming hint TTL seen in the window.
    max_hint_ttl: int
    #: Mean observedTimeFromStart at arrival (seconds).
    avg_time_from_start: float

    @property
    def throughput(self) -> float:
        """Completed requests per second over the window."""
        dt = self.t_end - self.t_start
        return self.count / dt if dt > 0 else 0.0


class ContainerRuntime:
    """Metric collector and hint relay for one container.

    Parameters
    ----------
    sim:
        The simulator (timestamps).
    name:
        Container name (matches the :class:`~repro.cluster.container.Container`).
    trace:
        When true, keep per-request tuples ``(t_done, exec_time, conn_wait)``
        for figure generation and tests.  Off in large benchmark runs.
    """

    def __init__(self, sim: Simulator, name: str, *, trace: bool = False):
        self.sim = sim
        self.name = name
        self.trace = trace
        self.records: list[tuple[float, float, float]] = []
        self._reset_window()
        self._window_start = sim.now
        # Live upscale stamp (set by Escalator on a queueBuildup violation).
        self._stamp_ttl = 0
        self._stamp_until = -1.0
        # Lifetime totals (used by profiling and diagnostics).
        self.total_count = 0
        self.total_exec_time = 0.0
        self.total_exec_metric = 0.0
        self.total_conn_wait = 0.0
        self.total_arrivals = 0
        self.total_time_from_start = 0.0

    def reset_window(self) -> None:
        """Discard the in-progress window (container restart semantics).

        A restarted container's runtime starts a fresh reporting window
        at the restart time: pre-crash partial sums describe a process
        that no longer exists and would skew the controller's first
        post-restart window.  Lifetime totals are kept (profiling reads
        them once, before any fault fires).  The live upscale stamp is
        cleared — stamps live in the crashed process's memory.
        """
        self._reset_window()
        self._window_start = self.sim.now
        self._stamp_ttl = 0
        self._stamp_until = -1.0

    def _reset_window(self) -> None:
        self._sum_exec = 0.0
        self._sum_wait = 0.0
        self._sum_metric = 0.0
        self._sum_tfs = 0.0
        self._count = 0
        self._hints = 0
        self._max_ttl = 0

    # ------------------------------------------------------------ recording
    def on_arrival(self, time_from_start: float, upscale_ttl: int) -> None:
        """Record request-arrival observations (progress + incoming hints)."""
        self._sum_tfs += time_from_start
        self.total_arrivals += 1
        self.total_time_from_start += time_from_start
        if upscale_ttl > 0:
            self._hints += 1
            if upscale_ttl > self._max_ttl:
                self._max_ttl = upscale_ttl

    def on_complete(self, exec_time: float, conn_wait: float) -> None:
        """Record one finished request at this container."""
        if exec_time < 0 or conn_wait < 0:
            raise ValueError("negative timing")
        # Clamp: with parallel fan-out the accumulated wait is capped by the
        # invocation layer, but guard against float slop regardless.
        conn_wait = min(conn_wait, exec_time)
        metric = exec_time - conn_wait
        self._sum_exec += exec_time
        self._sum_wait += conn_wait
        self._sum_metric += metric
        self._count += 1
        self.total_count += 1
        self.total_exec_time += exec_time
        self.total_exec_metric += metric
        self.total_conn_wait += conn_wait
        if self.trace:
            self.records.append((self.sim.now, exec_time, conn_wait))

    # ----------------------------------------------------------- collection
    def collect(self) -> RuntimeWindow:
        """Return the window since the previous collect, and start a new one."""
        t0, t1 = self._window_start, self.sim.now
        n = self._count
        if n > 0:
            avg_exec = self._sum_exec / n
            avg_wait = self._sum_wait / n
            avg_metric = self._sum_metric / n
            qb = self._sum_exec / self._sum_metric if self._sum_metric > 0 else 1.0
            avg_tfs = self._sum_tfs / n
        else:
            avg_exec = avg_wait = avg_metric = avg_tfs = 0.0
            qb = 1.0
        win = RuntimeWindow(
            t_start=t0,
            t_end=t1,
            count=n,
            avg_exec_time=avg_exec,
            avg_conn_wait=avg_wait,
            avg_exec_metric=avg_metric,
            queue_buildup=qb,
            upscale_hints=self._hints,
            max_hint_ttl=self._max_ttl,
            avg_time_from_start=avg_tfs,
        )
        self._reset_window()
        self._window_start = t1
        return win

    # ------------------------------------------------------------ hint relay
    def stamp_upscale(self, ttl: int, duration: float) -> None:
        """Escalator marks this container: outgoing requests carry ``ttl``
        for the next ``duration`` seconds (Table II, row *queueBuildup*)."""
        if ttl < 0 or duration < 0:
            raise ValueError("ttl and duration must be non-negative")
        self._stamp_ttl = ttl
        self._stamp_until = self.sim.now + duration

    @property
    def stamp_active(self) -> bool:
        """True while an Escalator queueBuildup stamp is live."""
        return self._stamp_ttl > 0 and self.sim.now < self._stamp_until

    def outgoing_upscale(self, incoming_ttl: int) -> int:
        """TTL for this request's downstream packets.

        The propagated hint is ``incoming − 1`` (bounded reach, §IV); a
        live local stamp overrides it if larger.
        """
        propagated = max(incoming_ttl - 1, 0)
        if self.stamp_active:
            return max(propagated, self._stamp_ttl)
        return propagated
