"""Caller-side connection pools — the two threading models of §II-A.

The paper identifies the *fixed-size threadpool* connection model as the
source of **hidden inter-container dependencies**: when the pool is
exhausted, extra requests queue *implicitly* inside the upstream service
(threads polling / sleeping for a free connection), invisible to network
queue monitors like Caladan's.  The pool is provisioned via Little's Law
(Eq. 1): ``ThPoolSize = DesiredReqRate × DownstreamLatency``.

:class:`ConnectionPool` models one (caller-service → callee-service) edge:

* ``capacity=None`` ⇒ *connection-per-request*: every acquire succeeds
  immediately but pays a connection-setup delay (the paper's motivation
  for pools at high request rates).
* ``capacity=k`` ⇒ *fixed-size pool*: at most ``k`` connections in
  flight; excess acquirers wait FIFO, accumulating the
  ``timeWaitingForFreeConn`` that feeds ``execMetric`` (Eq. 2).

The pool exposes instantaneous and cumulative statistics used both by the
runtime metrics and by the tests' invariant checks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.sim.engine import Simulator

__all__ = ["ConnectionPool"]


class ConnectionPool:
    """A connection pool on one task-graph edge.

    Parameters
    ----------
    sim:
        The simulator (for timestamps and scheduling setup delays).
    capacity:
        Number of pooled connections, or ``None`` for
        connection-per-request.
    setup_latency:
        One-way cost of establishing a fresh connection.  Paid on *every*
        acquire in connection-per-request mode and never in pool mode
        (pooled connections are pre-established — that is the point of
        the model, per the gRPC performance guidance the paper cites).
    name:
        Edge label, e.g. ``"frontend->geo"`` (diagnostics only).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int],
        *,
        setup_latency: float = 20e-6,
        name: str = "",
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"pool capacity must be >= 1 or None, got {capacity!r}")
        if setup_latency < 0:
            raise ValueError("setup_latency must be non-negative")
        self.sim = sim
        self.capacity = capacity
        self.setup_latency = setup_latency
        self.name = name
        self.in_flight = 0
        self._waiters: Deque[Tuple[float, Callable[[float], None]]] = deque()
        # --- cumulative statistics -------------------------------------
        self.total_acquires = 0
        self.total_waited = 0  # acquires that had to queue
        self.total_wait_time = 0.0
        self.max_queue_len = 0

    # ------------------------------------------------------------ properties
    @property
    def is_per_request(self) -> bool:
        """True in connection-per-request mode (unbounded concurrency)."""
        return self.capacity is None

    @property
    def queue_len(self) -> int:
        """Number of callers currently waiting for a free connection."""
        return len(self._waiters)

    @property
    def free(self) -> Optional[int]:
        """Free pooled connections (``None`` when unbounded)."""
        if self.capacity is None:
            return None
        return self.capacity - self.in_flight

    # --------------------------------------------------------------- acquire
    def acquire(self, done: Callable[[float], None]) -> None:
        """Request a connection; ``done(wait_time)`` fires when granted.

        ``wait_time`` is the time spent blocked waiting for a *pooled*
        connection (zero in per-request mode — setup latency is a network
        cost, not an implicit-queue cost, and must *not* pollute
        ``timeWaitingForFreeConn``; with unlimited pools the paper notes
        ``execMetric == execTime``).
        """
        self.total_acquires += 1
        if self.capacity is None:
            self.in_flight += 1
            if self.setup_latency > 0.0:
                self.sim.schedule(self.setup_latency, done, 0.0)
            else:
                done(0.0)
            return
        if self.in_flight < self.capacity:
            self.in_flight += 1
            done(0.0)
            return
        self.total_waited += 1
        self._waiters.append((self.sim.now, done))
        if len(self._waiters) > self.max_queue_len:
            self.max_queue_len = len(self._waiters)

    def release(self) -> None:
        """Return a connection; wakes the oldest waiter if any."""
        if self.in_flight <= 0:
            raise RuntimeError(f"release() on idle pool {self.name!r}")
        if self.capacity is None:
            self.in_flight -= 1
            return
        if self._waiters:
            # Hand the connection straight to the next waiter: in_flight
            # stays constant, the waiter's wait time ends now.
            enq_t, done = self._waiters.popleft()
            wait = self.sim.now - enq_t
            self.total_wait_time += wait
            done(wait)
        else:
            self.in_flight -= 1

    def flush(self) -> int:
        """Drop all in-flight grants and queued waiters (crash semantics).

        When the owning service instance crashes, its threads die with
        it: connections held by in-flight calls are gone (the matching
        ``release()`` will never come — callers are marked dead and must
        not release after a flush) and queued acquirers are abandoned.
        Returns the number of waiters discarded.  Cumulative statistics
        are left intact — they describe history, not live state.
        """
        dropped = len(self._waiters)
        self.in_flight = 0
        self._waiters.clear()
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return (
            f"<ConnectionPool {self.name!r} cap={cap} in_flight={self.in_flight} "
            f"queued={self.queue_len}>"
        )
