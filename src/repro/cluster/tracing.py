"""Request-flow tracing: per-request span logs, stored columnar.

A distributed-tracing facility for the simulated cluster, in the shape
downstream users expect (Jaeger/Zipkin-like spans).  It taps the
network's delivery path as a zero-cost observer (unlike FirstResponder's
RX hook it also sees packets bound for the external client, which close
root spans), producing one span tree per request:

* span per (request, container) visit with receive/complete timestamps,
* critical-path extraction (which service chain dominated latency),
* no interference with controllers (hooks are read-only, zero modeled
  cost by default).

**Storage layout.**  Recording runs on every delivered packet, so the
tracer does not build one :class:`Span` object per visit.  Spans live in
a :class:`SpanStore` — parallel columns (request id, container, parent,
receive/complete timestamps) plus a per-request index — and ``Span``
views are materialized lazily, only when a query asks for them.  The
query API, :meth:`RequestTracer.critical_path`,
:meth:`RequestTracer.causality_errors`, and the validate monitors built
on them are unchanged, including the exact span ordering the old
dict-of-lists layout produced.

This is how the Fig. 14-style "where did the time go" questions get
answered for arbitrary apps; the social-network example uses the
aggregate metrics instead, but tests and users can go per-request here.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.packet import REQUEST, RESPONSE, RpcPacket

__all__ = ["RequestTracer", "Span", "SpanStore"]

_NAN = float("nan")


@dataclass
class Span:
    """One container visit of one request."""

    request_id: int
    container: str
    #: Packet-arrival timestamp at the container's node.
    t_receive: float
    #: Timestamp of the response leaving (None while open).
    t_complete: Optional[float] = None
    #: Caller container ("client" at the root).
    parent: str = ""

    @property
    def duration(self) -> Optional[float]:
        if self.t_complete is None:
            return None
        return self.t_complete - self.t_receive


class SpanStore:
    """Columnar span storage: parallel arrays plus a per-request index.

    One row per (request, container) visit, in global arrival order.
    ``t_complete`` uses NaN for still-open spans (a C double per row
    instead of a boxed ``Optional[float]``).  Rows are never deleted;
    :meth:`spans_of` materializes :class:`Span` views on demand in the
    same order the previous dict-of-lists layout produced: receive time,
    ties broken by container first-visit order, then by visit order
    within the container.
    """

    __slots__ = (
        "request_ids",
        "containers",
        "parents",
        "t_receive",
        "t_complete",
        "_by_request",
    )

    def __init__(self) -> None:
        self.request_ids: List[int] = []
        self.containers: List[str] = []
        self.parents: List[str] = []
        self.t_receive = array("d")
        self.t_complete = array("d")
        #: request_id -> row indices in arrival order.
        self._by_request: Dict[int, List[int]] = {}

    def __len__(self) -> int:
        return len(self.containers)

    @property
    def request_count(self) -> int:
        """Distinct requests with at least one recorded span."""
        return len(self._by_request)

    def request_ids_seen(self) -> List[int]:
        """Recorded request ids, sorted."""
        return sorted(self._by_request)

    def has_request(self, request_id: int) -> bool:
        return request_id in self._by_request

    # -------------------------------------------------------------- recording
    def open(self, request_id: int, container: str, parent: str, t: float) -> int:
        """Record a new open span; returns its row index."""
        idx = len(self.containers)
        rows = self._by_request.get(request_id)
        if rows is None:
            self._by_request[request_id] = [idx]
        else:
            rows.append(idx)
        self.request_ids.append(request_id)
        self.containers.append(container)
        self.parents.append(parent)
        self.t_receive.append(t)
        self.t_complete.append(_NAN)
        return idx

    def close(self, request_id: int, container: str, t: float) -> bool:
        """Close the most recent open span of ``container`` in this request."""
        rows = self._by_request.get(request_id)
        if rows is None:
            return False
        containers = self.containers
        t_complete = self.t_complete
        for i in reversed(rows):
            if containers[i] == container and t_complete[i] != t_complete[i]:
                t_complete[i] = t
                return True
        return False

    def ingest(self, span: Span) -> int:
        """Append a fully-formed span (synthetic traces in tests/tools)."""
        idx = self.open(span.request_id, span.container, span.parent, span.t_receive)
        if span.t_complete is not None:
            self.t_complete[idx] = span.t_complete
        return idx

    # ---------------------------------------------------------------- queries
    def spans_of(self, request_id: int) -> List[Span]:
        """Materialized :class:`Span` views of one request, legacy order."""
        rows = self._by_request.get(request_id)
        if not rows:
            return []
        containers = self.containers
        t_receive = self.t_receive
        # Sort key = (receive time, container first-visit rank, visit
        # index within the container): exactly the order a stable
        # receive-time sort of the old container-grouped flatten gave,
        # including float ties from zero-jitter parallel fan-out.
        rank: Dict[str, int] = {}
        visits: Dict[str, int] = {}
        keyed = []
        for i in rows:
            name = containers[i]
            r = rank.setdefault(name, len(rank))
            w = visits.get(name, 0)
            visits[name] = w + 1
            keyed.append((t_receive[i], r, w, i))
        keyed.sort()
        t_complete = self.t_complete
        parents = self.parents
        out = []
        for t, _, _, i in keyed:
            tc = t_complete[i]
            out.append(
                Span(
                    request_id=request_id,
                    container=containers[i],
                    t_receive=t,
                    t_complete=None if tc != tc else tc,
                    parent=parents[i],
                )
            )
        return out


class RequestTracer:
    """Collects span trees by observing a cluster's RX paths.

    Parameters
    ----------
    cluster:
        The cluster to observe.  Hooks are installed immediately on
        every node (cost 0 — tracing must not perturb the experiment).
    max_requests:
        Stop recording new requests beyond this many (memory guard);
        ``None`` = unbounded.
    """

    def __init__(self, cluster: Cluster, *, max_requests: Optional[int] = None):
        self.cluster = cluster
        self.max_requests = max_requests
        #: Columnar storage; query through :meth:`spans` or directly.
        self.store = SpanStore()
        # Network observer (not a node hook): responses to the external
        # client close the root span, and those never cross a node's RX
        # path.
        cluster.network.add_observer(self._on_packet)

    # ----------------------------------------------------------------- hooks
    def _on_packet(self, pkt: RpcPacket) -> None:
        # Single index probe up front: once max_requests is reached, the
        # common case is an untraced request, which must exit after one
        # lookup (this hook runs on every delivered packet).
        store = self.store
        known = store.has_request(pkt.request_id)
        if pkt.kind == REQUEST:
            if not known:
                if (
                    self.max_requests is not None
                    and store.request_count >= self.max_requests
                ):
                    return
            store.open(pkt.request_id, pkt.dst, pkt.src, self.cluster.sim.now)
        elif pkt.kind == RESPONSE:
            if known:
                store.close(pkt.request_id, pkt.src, self.cluster.sim.now)

    # --------------------------------------------------------------- queries
    def spans(self, request_id: int) -> List[Span]:
        """All spans of one request, ordered by receive time."""
        return self.store.spans_of(request_id)

    @property
    def traced_requests(self) -> int:
        return self.store.request_count

    def request_ids(self) -> List[int]:
        """Traced request ids, sorted (the monitors' iteration order)."""
        return self.store.request_ids_seen()

    def critical_path(self, request_id: int) -> List[Tuple[str, float]]:
        """(container, self-time) pairs along the longest child chain.

        Self-time of a span = its duration minus its directly-nested
        children's durations (clipped at zero for overlapping parallel
        fan-out, where "self time" is ill-defined).
        """
        return self._critical_path(self.spans(request_id))

    @staticmethod
    def _critical_path(ordered_spans: List[Span]) -> List[Tuple[str, float]]:
        """Critical path from an already receive-time-ordered span list
        (lets :meth:`causality_errors` reuse one ``spans()`` result)."""
        spans = [s for s in ordered_spans if s.duration is not None]
        if not spans:
            return []
        children: Dict[str, List[Span]] = {}
        # First (earliest-receive) span per container, built once —
        # `spans` is already receive-time ordered.
        first_span: Dict[str, Span] = {}
        for s in spans:
            children.setdefault(s.parent, []).append(s)
            if s.container not in first_span:
                first_span[s.container] = s

        roots = children.get("client", [])
        if not roots:
            return []
        root = roots[0].container

        # Iterative post-order walk (deep chains would blow the recursion
        # limit; a span list scan per node would be O(n²)).
        results: Dict[str, Tuple[float, List[Tuple[str, float]]]] = {}
        in_progress = set()
        stack: List[Tuple[str, bool]] = [(root, False)]
        while stack:
            name, ready = stack.pop()
            if ready:
                in_progress.discard(name)
                own = first_span.get(name)
                if own is None:
                    results[name] = (0.0, [])
                    continue
                kids = children.get(name, [])
                kids_total = sum(k.duration or 0.0 for k in kids)
                self_time = max(own.duration - kids_total, 0.0)
                kid_paths = [results.get(k.container, (0.0, [])) for k in kids]
                if not kid_paths:
                    results[name] = (own.duration, [(name, self_time)])
                else:
                    _, best_path = max(kid_paths, key=lambda p: p[0])
                    results[name] = (own.duration, [(name, self_time)] + best_path)
            elif name not in results and name not in in_progress:
                in_progress.add(name)
                stack.append((name, True))
                for k in children.get(name, []):
                    if k.container not in results and k.container not in in_progress:
                        stack.append((k.container, False))
        return results[root][1]

    def causality_errors(self, request_id: int, eps: float = 1e-12) -> List[str]:
        """Causality problems in one request's span tree (empty = clean).

        Checked invariants, used by the runtime monitors
        (:mod:`repro.validate`):

        * every closed span has ``t_complete >= t_receive``;
        * a child span is received at or after its parent's earliest
          receive (packets cannot travel backwards in time);
        * critical-path self-times are non-negative and their sum does
          not exceed the root span's duration.

        The span list is materialized once and shared with the
        critical-path walk (this runs per traced request at validate
        finalize — no reason to flatten and sort twice).
        """
        errors: List[str] = []
        spans = self.spans(request_id)
        if not spans:
            return errors
        first_receive: Dict[str, float] = {}
        for s in spans:
            if s.container not in first_receive:
                first_receive[s.container] = s.t_receive
        for s in spans:
            if s.t_complete is not None and s.t_complete < s.t_receive - eps:
                errors.append(
                    f"req {request_id}: span {s.container!r} completes at "
                    f"{s.t_complete!r} before its receive {s.t_receive!r}"
                )
            parent_rx = first_receive.get(s.parent)
            if parent_rx is not None and s.t_receive < parent_rx - eps:
                errors.append(
                    f"req {request_id}: span {s.container!r} received at "
                    f"{s.t_receive!r} before parent {s.parent!r} at {parent_rx!r}"
                )
        path = self._critical_path(spans)
        if path:
            for name, self_time in path:
                if self_time < -eps:
                    errors.append(
                        f"req {request_id}: negative critical-path self-time "
                        f"{self_time!r} at {name!r}"
                    )
            root = spans[0]
            if root.duration is not None:
                total = sum(st for _, st in path)
                if total > root.duration + eps:
                    errors.append(
                        f"req {request_id}: critical-path self-times sum to "
                        f"{total!r} > root duration {root.duration!r}"
                    )
        return errors

    def summary_by_container(self) -> Dict[str, Tuple[int, float]]:
        """(visit count, mean span duration) per container, all requests.

        Accumulates straight over the columns in arrival order (the old
        layout summed request-by-request; per-container totals can
        differ in the last float ulp, which no consumer resolves).
        """
        store = self.store
        t_receive = store.t_receive
        t_complete = store.t_complete
        acc: Dict[str, Tuple[int, float]] = {}
        for i, name in enumerate(store.containers):
            tc = t_complete[i]
            if tc != tc:
                continue
            n, total = acc.get(name, (0, 0.0))
            acc[name] = (n + 1, total + (tc - t_receive[i]))
        return {
            name: (n, total / n) for name, (n, total) in acc.items() if n > 0
        }
