"""Request-flow tracing: per-request span logs.

A distributed-tracing facility for the simulated cluster, in the shape
downstream users expect (Jaeger/Zipkin-like spans).  It taps the
network's delivery path as a zero-cost observer (unlike FirstResponder's
RX hook it also sees packets bound for the external client, which close
root spans), producing one span tree per request:

* span per (request, container) visit with receive/complete timestamps,
* critical-path extraction (which service chain dominated latency),
* no interference with controllers (hooks are read-only, zero modeled
  cost by default).

This is how the Fig. 14-style "where did the time go" questions get
answered for arbitrary apps; the social-network example uses the
aggregate metrics instead, but tests and users can go per-request here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.packet import REQUEST, RESPONSE, RpcPacket

__all__ = ["RequestTracer", "Span"]


@dataclass
class Span:
    """One container visit of one request."""

    request_id: int
    container: str
    #: Packet-arrival timestamp at the container's node.
    t_receive: float
    #: Timestamp of the response leaving (None while open).
    t_complete: Optional[float] = None
    #: Caller container ("client" at the root).
    parent: str = ""

    @property
    def duration(self) -> Optional[float]:
        if self.t_complete is None:
            return None
        return self.t_complete - self.t_receive


class RequestTracer:
    """Collects span trees by observing a cluster's RX paths.

    Parameters
    ----------
    cluster:
        The cluster to observe.  Hooks are installed immediately on
        every node (cost 0 — tracing must not perturb the experiment).
    max_requests:
        Stop recording new requests beyond this many (memory guard);
        ``None`` = unbounded.
    """

    def __init__(self, cluster: Cluster, *, max_requests: Optional[int] = None):
        self.cluster = cluster
        self.max_requests = max_requests
        #: request_id -> container -> list of spans (re-entries possible
        #: for fan-in topologies).
        self._spans: Dict[int, Dict[str, List[Span]]] = {}
        # Network observer (not a node hook): responses to the external
        # client close the root span, and those never cross a node's RX
        # path.
        cluster.network.add_observer(self._on_packet)

    # ----------------------------------------------------------------- hooks
    def _on_packet(self, pkt: RpcPacket) -> None:
        # Single dict probe up front: once max_requests is reached, the
        # common case is an untraced request, which must exit after one
        # lookup (this hook runs on every delivered packet).
        per_req = self._spans.get(pkt.request_id)
        if pkt.kind == REQUEST:
            if per_req is None:
                if (
                    self.max_requests is not None
                    and len(self._spans) >= self.max_requests
                ):
                    return
                per_req = self._spans[pkt.request_id] = {}
            per_req.setdefault(pkt.dst, []).append(
                Span(
                    request_id=pkt.request_id,
                    container=pkt.dst,
                    t_receive=self.cluster.sim.now,
                    parent=pkt.src,
                )
            )
        elif pkt.kind == RESPONSE:
            if per_req is None:
                return
            spans = per_req.get(pkt.src)
            if spans:
                # Close the most recent open span of the responder.
                for span in reversed(spans):
                    if span.t_complete is None:
                        span.t_complete = self.cluster.sim.now
                        break

    # --------------------------------------------------------------- queries
    def spans(self, request_id: int) -> List[Span]:
        """All spans of one request, ordered by receive time."""
        per_req = self._spans.get(request_id, {})
        out = [s for spans in per_req.values() for s in spans]
        return sorted(out, key=lambda s: s.t_receive)

    @property
    def traced_requests(self) -> int:
        return len(self._spans)

    def critical_path(self, request_id: int) -> List[Tuple[str, float]]:
        """(container, self-time) pairs along the longest child chain.

        Self-time of a span = its duration minus its directly-nested
        children's durations (clipped at zero for overlapping parallel
        fan-out, where "self time" is ill-defined).
        """
        spans = [s for s in self.spans(request_id) if s.duration is not None]
        if not spans:
            return []
        children: Dict[str, List[Span]] = {}
        # First (earliest-receive) span per container, built once —
        # `spans` is already receive-time ordered.
        first_span: Dict[str, Span] = {}
        for s in spans:
            children.setdefault(s.parent, []).append(s)
            if s.container not in first_span:
                first_span[s.container] = s

        roots = children.get("client", [])
        if not roots:
            return []
        root = roots[0].container

        # Iterative post-order walk (deep chains would blow the recursion
        # limit; a span list scan per node would be O(n²)).
        results: Dict[str, Tuple[float, List[Tuple[str, float]]]] = {}
        in_progress = set()
        stack: List[Tuple[str, bool]] = [(root, False)]
        while stack:
            name, ready = stack.pop()
            if ready:
                in_progress.discard(name)
                own = first_span.get(name)
                if own is None:
                    results[name] = (0.0, [])
                    continue
                kids = children.get(name, [])
                kids_total = sum(k.duration or 0.0 for k in kids)
                self_time = max(own.duration - kids_total, 0.0)
                kid_paths = [results.get(k.container, (0.0, [])) for k in kids]
                if not kid_paths:
                    results[name] = (own.duration, [(name, self_time)])
                else:
                    _, best_path = max(kid_paths, key=lambda p: p[0])
                    results[name] = (own.duration, [(name, self_time)] + best_path)
            elif name not in results and name not in in_progress:
                in_progress.add(name)
                stack.append((name, True))
                for k in children.get(name, []):
                    if k.container not in results and k.container not in in_progress:
                        stack.append((k.container, False))
        return results[root][1]

    def causality_errors(self, request_id: int, eps: float = 1e-12) -> List[str]:
        """Causality problems in one request's span tree (empty = clean).

        Checked invariants, used by the runtime monitors
        (:mod:`repro.validate`):

        * every closed span has ``t_complete >= t_receive``;
        * a child span is received at or after its parent's earliest
          receive (packets cannot travel backwards in time);
        * critical-path self-times are non-negative and their sum does
          not exceed the root span's duration.
        """
        errors: List[str] = []
        spans = self.spans(request_id)
        if not spans:
            return errors
        first_receive: Dict[str, float] = {}
        for s in spans:
            if s.container not in first_receive:
                first_receive[s.container] = s.t_receive
        for s in spans:
            if s.t_complete is not None and s.t_complete < s.t_receive - eps:
                errors.append(
                    f"req {request_id}: span {s.container!r} completes at "
                    f"{s.t_complete!r} before its receive {s.t_receive!r}"
                )
            parent_rx = first_receive.get(s.parent)
            if parent_rx is not None and s.t_receive < parent_rx - eps:
                errors.append(
                    f"req {request_id}: span {s.container!r} received at "
                    f"{s.t_receive!r} before parent {s.parent!r} at {parent_rx!r}"
                )
        path = self.critical_path(request_id)
        if path:
            for name, self_time in path:
                if self_time < -eps:
                    errors.append(
                        f"req {request_id}: negative critical-path self-time "
                        f"{self_time!r} at {name!r}"
                    )
            root = spans[0]
            if root.duration is not None:
                total = sum(st for _, st in path)
                if total > root.duration + eps:
                    errors.append(
                        f"req {request_id}: critical-path self-times sum to "
                        f"{total!r} > root duration {root.duration!r}"
                    )
        return errors

    def summary_by_container(self) -> Dict[str, Tuple[int, float]]:
        """(visit count, mean span duration) per container, all requests."""
        acc: Dict[str, Tuple[int, float]] = {}
        for per_req in self._spans.values():
            for name, spans in per_req.items():
                for s in spans:
                    if s.duration is None:
                        continue
                    n, total = acc.get(name, (0, 0.0))
                    acc[name] = (n + 1, total + s.duration)
        return {
            name: (n, total / n) for name, (n, total) in acc.items() if n > 0
        }
