"""Resource controllers: baselines and the controller interface.

The paper evaluates three controllers (§V "Controllers Evaluated"):

* **Parties** — the heuristic per-container FSM of Chen et al.
  (ASPLOS'19), reimplemented per the authors' open-source code;
* **CaladanAlgo** — the Caladan core-allocation algorithm (Fried et
  al., OSDI'20) ported to a userspace controller, using the paper's
  ``queueBuildup`` metric in place of network-queue visibility;
* **SurgeGuard** — the contribution, in :mod:`repro.core`.

This package holds the first two plus the shared interface, the
do-nothing :class:`NullController` (static allocation), and the
clairvoyant :class:`OracleController` used for the Fig. 4
detection-delay study.

Beyond the paper, the **controller zoo** (DESIGN.md §11) reproduces
related-work baselines as plugins consuming the same runtime metrics:

* **StatuScale** (Wen et al., arXiv:2407.10173) — status-aware load
  detection on a sliding latency window driving a correction-factor
  vertical scaler;
* **LSRAM** (Hu et al., arXiv:2411.11493) — per-service SLO resource
  allocation re-solved each cycle by projected gradient descent under
  the node core budget.
"""

from repro.controllers.base import Controller, ControllerStats
from repro.controllers.targets import TargetConfig
from repro.controllers.null import NullController
from repro.controllers.oracle import OracleController
from repro.controllers.parties import PartiesController, PartiesParams
from repro.controllers.caladan import CaladanController, CaladanParams
from repro.controllers.lsram import LsramController, LsramParams
from repro.controllers.ml_central import CentralizedMLController, MLParams
from repro.controllers.statuscale import StatuScaleController, StatuScaleParams
from repro.controllers.horizontal import (
    HorizontalAutoscaler,
    HpaParams,
    HybridController,
)

__all__ = [
    "CaladanController",
    "CaladanParams",
    "CentralizedMLController",
    "Controller",
    "ControllerStats",
    "HorizontalAutoscaler",
    "HpaParams",
    "HybridController",
    "LsramController",
    "LsramParams",
    "MLParams",
    "NullController",
    "OracleController",
    "PartiesController",
    "PartiesParams",
    "StatuScaleController",
    "StatuScaleParams",
    "TargetConfig",
]
