"""Resource controllers: baselines and the controller interface.

The paper evaluates three controllers (§V "Controllers Evaluated"):

* **Parties** — the heuristic per-container FSM of Chen et al.
  (ASPLOS'19), reimplemented per the authors' open-source code;
* **CaladanAlgo** — the Caladan core-allocation algorithm (Fried et
  al., OSDI'20) ported to a userspace controller, using the paper's
  ``queueBuildup`` metric in place of network-queue visibility;
* **SurgeGuard** — the contribution, in :mod:`repro.core`.

This package holds the first two plus the shared interface, the
do-nothing :class:`NullController` (static allocation), and the
clairvoyant :class:`OracleController` used for the Fig. 4
detection-delay study.
"""

from repro.controllers.base import Controller, ControllerStats
from repro.controllers.targets import TargetConfig
from repro.controllers.null import NullController
from repro.controllers.oracle import OracleController
from repro.controllers.parties import PartiesController, PartiesParams
from repro.controllers.caladan import CaladanController, CaladanParams
from repro.controllers.ml_central import CentralizedMLController, MLParams
from repro.controllers.horizontal import (
    HorizontalAutoscaler,
    HpaParams,
    HybridController,
)

__all__ = [
    "CaladanController",
    "CaladanParams",
    "CentralizedMLController",
    "Controller",
    "ControllerStats",
    "HorizontalAutoscaler",
    "HpaParams",
    "HybridController",
    "MLParams",
    "NullController",
    "OracleController",
    "PartiesController",
    "PartiesParams",
    "TargetConfig",
]
