"""Controller interface and bookkeeping shared by all controllers.

A controller's lifecycle is ``attach(sim, cluster, targets)`` →
``start()`` → (simulation runs; the controller's periodic processes make
decisions) → ``stop()``.  The harness attaches a fresh controller
instance per run — controllers are stateful and single-use by design,
mirroring how the real daemons are launched per experiment.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Simulator
from repro.cluster.cluster import Cluster
from repro.controllers.targets import TargetConfig

__all__ = ["Controller", "ControllerStats"]


@dataclass
class ControllerStats:
    """Decision counters every controller reports (Table I evidence)."""

    decision_cycles: int = 0
    upscale_core_actions: int = 0
    downscale_core_actions: int = 0
    freq_up_actions: int = 0
    freq_down_actions: int = 0

    @property
    def total_actions(self) -> int:
        return (
            self.upscale_core_actions
            + self.downscale_core_actions
            + self.freq_up_actions
            + self.freq_down_actions
        )


class Controller(abc.ABC):
    """Abstract resource controller."""

    #: Human-readable controller name (used in experiment reports).
    name: str = "abstract"

    #: Whether the controller partitions cleanly across simulation
    #: shards (DESIGN.md §12): it must act only through per-node local
    #: state reached via ``cluster.node_views`` (which a sharded worker
    #: restricts to its own nodes), never through fleet-global scans.
    #: Conservative default: opt in per class.
    shardable: bool = False

    def __init__(self) -> None:
        self.sim: Optional[Simulator] = None
        self.cluster: Optional[Cluster] = None
        self.targets: Optional[TargetConfig] = None
        self.stats = ControllerStats()
        self._attached = False
        self._started = False

    def attach(self, sim: Simulator, cluster: Cluster, targets: TargetConfig) -> None:
        """Bind the controller to a deployed cluster (once)."""
        if self._attached:
            raise RuntimeError(f"{self.name}: attach() called twice")
        self.sim = sim
        self.cluster = cluster
        self.targets = targets
        self._attached = True
        self._on_attach()

    def start(self) -> None:
        """Begin making decisions (schedules the periodic processes)."""
        if not self._attached:
            raise RuntimeError(f"{self.name}: start() before attach()")
        if self._started:
            raise RuntimeError(f"{self.name}: start() called twice")
        self._started = True
        self._on_start()

    def stop(self) -> None:
        """Stop all decision processes; idempotent."""
        if self._started:
            self._started = False
            self._on_stop()

    # ------------------------------------------------------------ subclasses
    def _on_attach(self) -> None:
        """Hook: wire node views, hooks, etc.  Default: nothing."""

    @abc.abstractmethod
    def _on_start(self) -> None:
        """Hook: schedule decision loops."""

    def _on_stop(self) -> None:
        """Hook: cancel decision loops.  Default: nothing."""

    # ------------------------------------------------------------- utilities
    def _step_cores_up(self, name: str, step: float) -> bool:
        """Grant ``step`` cores to ``name`` if the node budget allows."""
        assert self.cluster is not None
        node = self.cluster.node_of(name)
        if node.free_cores + 1e-9 < step:
            return False
        self.cluster.set_cores(name, self.cluster.containers[name].cores + step)
        self.stats.upscale_core_actions += 1
        return True

    def _step_cores_down(self, name: str, step: float, floor: float) -> bool:
        """Revoke ``step`` cores from ``name`` unless at/below ``floor``."""
        assert self.cluster is not None
        current = self.cluster.containers[name].cores
        if current - step < floor - 1e-9:
            return False
        self.cluster.set_cores(name, current - step)
        self.stats.downscale_core_actions += 1
        return True

    def _step_freq_up(self, name: str) -> bool:
        """Raise ``name``'s frequency one DVFS level if not at max."""
        assert self.cluster is not None
        c = self.cluster.containers[name]
        new = c.dvfs.step_up(c.frequency)
        if new == c.frequency:
            return False
        self.cluster.set_frequency(name, new)
        self.stats.freq_up_actions += 1
        return True

    def _step_freq_down(self, name: str) -> bool:
        """Lower ``name``'s frequency one DVFS level if not at min."""
        assert self.cluster is not None
        c = self.cluster.containers[name]
        new = c.dvfs.step_down(c.frequency)
        if new == c.frequency:
            return False
        self.cluster.set_frequency(name, new)
        self.stats.freq_down_actions += 1
        return True
