"""CaladanAlgo — Caladan's core allocator as a userspace controller.

Caladan (Fried et al., OSDI'20) grants a core to a task the moment its
queueing delay exceeds a threshold and reclaims cores that go idle; with
its custom network stack it runs every 5–20 µs.  The SurgeGuard paper
ports the *algorithm* to userspace ("CaladanAlgo"): without runtime-queue
visibility it (a) runs at a much coarser interval, and (b) substitutes
the paper's ``queueBuildup`` metric for the queueing-delay signal —
both choices reproduced here.

Consequences the paper highlights, which fall out of this port:

* for **connection-per-request** workloads there are no implicit queues,
  ``queueBuildup`` stays ≈1, and CaladanAlgo never upscales — low energy
  but enormous violation volume on the hotelReservation actions;
* for fixed-pool workloads, the congested *upstream* container gets all
  the grants (the signal fires where the queue is, not where the
  bottleneck is), starving downstream — Fig. 14's second panel.

CaladanAlgo allocates hyperthreads individually (0.5-core units, §V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.controllers.base import Controller
from repro.sim.process import PeriodicProcess

__all__ = ["CaladanController", "CaladanParams"]


@dataclass(frozen=True)
class CaladanParams:
    """Tunables of the userspace Caladan port."""

    #: Decision interval.  The real Caladan runs at 5–20 µs; the paper
    #: notes the userspace port's interval "is far larger with the Linux
    #: networking stack".  10 ms keeps it the fastest baseline while
    #: remaining meaningful for window statistics.
    interval: float = 0.01
    #: queueBuildup above this ⇒ congestion ⇒ grant a hyperthread.
    congestion_qb: float = 1.10
    #: Consecutive idle intervals before yielding a hyperthread.
    #: Caladan reclaims cores that go idle; the userspace port observes
    #: idleness as average busy-core time leaving at least
    #: ``yield_margin`` cores unused.
    yield_patience: int = 20
    #: Unused-core margin required before yielding (a full physical
    #: core's worth of headroom must be demonstrably idle).
    yield_margin: float = 1.0
    #: Hyperthread granularity (§V: "allocate hyperthreads individually").
    core_step: float = 0.5
    min_cores: float = 0.5

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.congestion_qb < 1.0:
            raise ValueError("congestion_qb must be >= 1")
        if self.yield_patience < 1:
            raise ValueError("yield_patience must be >= 1")


class CaladanController(Controller):
    """Congestion-triggered hyperthread granting/yielding."""

    name = "caladan"

    def __init__(self, params: Optional[CaladanParams] = None):
        super().__init__()
        self.params = params or CaladanParams()
        self._proc: Optional[PeriodicProcess] = None
        self._idle_streak: Dict[str, int] = {}
        self._last_busy: Dict[str, float] = {}

    def _on_start(self) -> None:
        assert self.sim is not None and self.cluster is not None
        self._idle_streak = {n: 0 for n in self.cluster.containers}
        self._last_busy = {
            n: c.busy_core_seconds for n, c in self.cluster.containers.items()
        }
        self._proc = PeriodicProcess(self.sim, self.params.interval, self._decide)

    def _on_stop(self) -> None:
        if self._proc is not None:
            self._proc.stop()

    def _decide(self) -> None:
        assert self.cluster is not None
        self.stats.decision_cycles += 1
        p = self.params
        for name, runtime in self.cluster.runtimes.items():
            window = runtime.collect()
            container = self.cluster.containers[name]
            container.sync()
            busy = container.busy_core_seconds
            avg_busy = (busy - self._last_busy[name]) / p.interval
            self._last_busy[name] = busy

            congested = window.count > 0 and window.queue_buildup > p.congestion_qb
            if congested:
                self._idle_streak[name] = 0
                self._step_cores_up(name, p.core_step)
                continue
            # Yield: a full margin of cores was unused on average.
            if avg_busy < container.cores - p.yield_margin:
                self._idle_streak[name] += 1
                if self._idle_streak[name] >= p.yield_patience:
                    self._idle_streak[name] = 0
                    self._step_cores_down(name, p.core_step, p.min_cores)
            else:
                self._idle_streak[name] = 0
