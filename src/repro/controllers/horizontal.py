"""Horizontal autoscaling interaction (§VII "Interaction with
Autoscaling Algorithms").

The paper argues SurgeGuard complements horizontal autoscalers: scaling
out takes seconds (spin up a container, warm it, re-balance), and
SurgeGuard "manag[es] QoS and prevent[s] request buildup while the
autoscaler launches a new container".

:class:`HorizontalAutoscaler` models a Kubernetes-HPA-style scaler that
actuates *replica counts* on a replica-armed cluster (see
:mod:`repro.cluster.loadbalancer`): a scale-out launches a real replica
behind the load balancer, which spends ``launch_delay`` WARMING —
holding its cores but receiving no traffic — before the LB starts
routing to it.  That actuation gap is exactly what the hybrid's
SurgeGuard units bridge.  It reads only utilization (busy / allocated
cores over the READY replicas of a service), like the real HPA's CPU
metric, so it can run *concurrently* with SurgeGuard: the two never
contend for the runtime metric windows.

The hybrid is assembled by :class:`HybridController`, which owns both
and is what the §VII bench exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.loadbalancer import READY, WARMING
from repro.controllers.base import Controller
from repro.core.config import SurgeGuardConfig
from repro.core.surgeguard import SurgeGuardController
from repro.sim.process import PeriodicProcess

__all__ = ["HorizontalAutoscaler", "HpaParams", "HybridController"]


@dataclass(frozen=True)
class HpaParams:
    """Kubernetes-HPA-flavoured tunables."""

    #: Evaluation period (HPA default: 15 s; scaled down with the rest
    #: of the experiments).
    interval: float = 2.0
    #: Scale out when service utilization (busy / allocated over READY
    #: replicas) exceeds this.
    target_utilization: float = 0.7
    #: Replica launch + warm-up delay: the new replica holds its cores
    #: but receives no traffic until it lands.
    launch_delay: float = 3.0
    #: Scale-in when utilization stays below this.
    scale_in_utilization: float = 0.35
    #: Consecutive low-utilization periods before scale-in.
    scale_in_patience: int = 3
    #: Replica-count bounds per service.
    min_replicas: int = 1
    max_replicas: int = 4

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.launch_delay < 0:
            raise ValueError("invalid timing parameters")
        if not 0 < self.scale_in_utilization < self.target_utilization < 1:
            raise ValueError("need 0 < scale_in < target < 1")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")


class HorizontalAutoscaler(Controller):
    """Utilization-triggered replica-count actuation with launch latency."""

    name = "hpa"

    def __init__(self, params: Optional[HpaParams] = None):
        super().__init__()
        self.params = params or HpaParams()
        self._proc: Optional[PeriodicProcess] = None
        #: Last seen busy-core integral per replica endpoint.
        self._last_busy: Dict[str, float] = {}
        self._low_streak: Dict[str, int] = {}
        self.scale_outs = 0
        self.scale_ins = 0

    def _on_attach(self) -> None:
        assert self.cluster is not None
        if self.cluster.replica_sets is None:
            raise RuntimeError(
                "HorizontalAutoscaler needs a replica-armed cluster "
                "(set ClusterConfig.replicas / ExperimentConfig.replicas)"
            )

    def _on_start(self) -> None:
        assert self.sim is not None and self.cluster is not None
        self._last_busy = {
            n: c.busy_core_seconds for n, c in self.cluster.containers.items()
        }
        self._low_streak = {s: 0 for s in self.cluster.replica_sets}
        self._proc = PeriodicProcess(self.sim, self.params.interval, self._decide)

    def _on_stop(self) -> None:
        if self._proc is not None:
            self._proc.stop()

    # ------------------------------------------------------------- decision
    def _utilization(self, ready) -> float:
        """busy-delta / capacity over one interval, summed over ``ready``.

        The per-replica busy baseline starts at first sight, so a replica
        that just became READY contributes only its post-warm work.  The
        per-replica delta is clamped at >= 0: a container whose integral
        went backwards relative to the baseline (crash/restart fault
        plans reset runtime state mid-window) must read as idle, not as
        negative work cancelling the other replicas' utilization.
        """
        busy = 0.0
        cores = 0.0
        for r in ready:
            c = r.container
            c.sync()
            prev = self._last_busy.get(r.name, c.busy_core_seconds)
            self._last_busy[r.name] = c.busy_core_seconds
            busy += max(c.busy_core_seconds - prev, 0.0)
            cores += c.cores
        if cores <= 0:
            return 0.0
        return busy / (self.params.interval * cores)

    def _decide(self) -> None:
        assert self.cluster is not None and self.sim is not None
        self.stats.decision_cycles += 1
        p = self.params
        cluster = self.cluster
        cluster.reap_draining()
        for service, rset in cluster.replica_sets.items():
            # Evict busy baselines of replicas that left the READY set
            # (draining, reaped, or crashed out).  A drained replica keeps
            # accruing busy-seconds until it is reaped; comparing a later
            # revival against the stale pre-drain baseline would charge
            # all of that drain-time work to the revival's first interval
            # and wildly inflate utilization.  Evicting here restarts the
            # baseline at first sight after the replica becomes READY
            # again, exactly like a brand-new replica.
            for r in rset.replicas:
                if r.state != READY:
                    self._last_busy.pop(r.name, None)
            ready = [r for r in rset.replicas if r.state == READY]
            warming = any(r.state == WARMING for r in rset.replicas)
            util = self._utilization(ready)
            if warming:
                # Stabilization: no decisions while a launch is in flight
                # (mirrors HPA's readiness gating; prevents thrash from
                # utilization measured against not-yet-serving capacity).
                self._low_streak[service] = 0
                continue
            if util > p.target_utilization and len(ready) < p.max_replicas:
                self._low_streak[service] = 0
                if cluster.scale_out(service, ready_delay=p.launch_delay):
                    self.scale_outs += 1
                    self.stats.upscale_core_actions += 1
            elif util < p.scale_in_utilization and len(ready) > p.min_replicas:
                self._low_streak[service] += 1
                if self._low_streak[service] >= p.scale_in_patience:
                    self._low_streak[service] = 0
                    if cluster.scale_in(service):
                        self.scale_ins += 1
                        self.stats.downscale_core_actions += 1
            else:
                self._low_streak[service] = 0


class HybridController(Controller):
    """§VII hybrid: horizontal autoscaler + SurgeGuard side by side.

    The autoscaler owns capacity trends (utilization-driven, slow,
    replica-granular); the SurgeGuard units bridge the actuation gap
    (per-packet fast path + metric-window slow path, per replica).  They
    share nothing but the cluster.
    """

    name = "hpa+surgeguard"

    def __init__(
        self,
        hpa_params: Optional[HpaParams] = None,
        sg_config: Optional[SurgeGuardConfig] = None,
    ):
        super().__init__()
        self.hpa = HorizontalAutoscaler(hpa_params)
        self.surgeguard = SurgeGuardController(sg_config)

    def _on_attach(self) -> None:
        assert self.sim is not None and self.cluster is not None
        assert self.targets is not None
        self.hpa.attach(self.sim, self.cluster, self.targets)
        self.surgeguard.attach(self.sim, self.cluster, self.targets)
        # Aggregate both units' action counts into this controller's stats.
        self.hpa.stats = self.stats
        self.surgeguard.stats = self.stats
        for esc in self.surgeguard.escalators:
            esc.stats = self.stats
        for fr in self.surgeguard.firstresponders:
            fr.stats = self.stats

    def _on_start(self) -> None:
        self.hpa.start()
        self.surgeguard.start()

    def _on_stop(self) -> None:
        self.hpa.stop()
        self.surgeguard.stop()
