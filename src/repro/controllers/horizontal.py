"""Horizontal autoscaling interaction (§VII "Interaction with
Autoscaling Algorithms").

The paper argues SurgeGuard complements horizontal autoscalers: scaling
out takes seconds (spin up a container, warm it, re-balance), and
SurgeGuard "manag[es] QoS and prevent[s] request buildup while the
autoscaler launches a new container".

:class:`HorizontalAutoscaler` models a Kubernetes-HPA-style scaler on
the simulated cluster.  Scale-out of a service is modeled as a
*capacity* grant — its replica's worth of cores arrives after a launch
delay — which preserves the autoscaler-relevant dynamics (utilization
trigger, actuation lag, replica granularity) without changing the
routing substrate.  It reads only utilization (busy/allocated cores),
like the real HPA's CPU metric, so it can run *concurrently* with
SurgeGuard: the two never contend for the runtime metric windows.

The hybrid is assembled by :class:`HybridController`, which owns both
and is what the §VII bench exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.controllers.base import Controller
from repro.core.config import SurgeGuardConfig
from repro.core.surgeguard import SurgeGuardController
from repro.sim.process import PeriodicProcess

__all__ = ["HorizontalAutoscaler", "HpaParams", "HybridController"]


@dataclass(frozen=True)
class HpaParams:
    """Kubernetes-HPA-flavoured tunables."""

    #: Evaluation period (HPA default: 15 s; scaled down with the rest
    #: of the experiments).
    interval: float = 2.0
    #: Scale out when utilization (busy / allocated) exceeds this.
    target_utilization: float = 0.7
    #: Capacity added per scale-out ("one replica"), in cores.
    replica_cores: float = 1.0
    #: Container launch + warm-up delay before the capacity lands.
    launch_delay: float = 3.0
    #: Scale-in when utilization stays below this.
    scale_in_utilization: float = 0.35
    #: Consecutive low-utilization periods before scale-in.
    scale_in_patience: int = 3
    min_cores: float = 0.5

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.launch_delay < 0:
            raise ValueError("invalid timing parameters")
        if not 0 < self.scale_in_utilization < self.target_utilization < 1:
            raise ValueError("need 0 < scale_in < target < 1")


class HorizontalAutoscaler(Controller):
    """Utilization-triggered scale-out with launch latency."""

    name = "hpa"

    def __init__(self, params: Optional[HpaParams] = None):
        super().__init__()
        self.params = params or HpaParams()
        self._proc: Optional[PeriodicProcess] = None
        self._last_busy: Dict[str, float] = {}
        self._low_streak: Dict[str, int] = {}
        #: Scale-outs currently in flight (service -> count).
        self._launching: Dict[str, int] = {}
        self.scale_outs = 0
        self.scale_ins = 0

    def _on_start(self) -> None:
        assert self.sim is not None and self.cluster is not None
        self._last_busy = {
            n: c.busy_core_seconds for n, c in self.cluster.containers.items()
        }
        self._low_streak = {n: 0 for n in self.cluster.containers}
        self._proc = PeriodicProcess(self.sim, self.params.interval, self._decide)

    def _on_stop(self) -> None:
        if self._proc is not None:
            self._proc.stop()

    # ------------------------------------------------------------- decision
    def _utilization(self, name: str) -> float:
        assert self.cluster is not None
        c = self.cluster.containers[name]
        c.sync()
        busy = c.busy_core_seconds
        du = (busy - self._last_busy[name]) / self.params.interval
        self._last_busy[name] = busy
        return du / c.cores if c.cores > 0 else 0.0

    def _decide(self) -> None:
        assert self.cluster is not None and self.sim is not None
        self.stats.decision_cycles += 1
        p = self.params
        for name in list(self.cluster.containers):
            util = self._utilization(name)
            if util > p.target_utilization:
                self._low_streak[name] = 0
                self._launching[name] = self._launching.get(name, 0) + 1
                self.sim.schedule(p.launch_delay, self._land_replica, name)
            elif util < p.scale_in_utilization and not self._launching.get(name):
                self._low_streak[name] += 1
                if self._low_streak[name] >= p.scale_in_patience:
                    self._low_streak[name] = 0
                    if self._step_cores_down(name, p.replica_cores, p.min_cores):
                        self.scale_ins += 1
            else:
                self._low_streak[name] = 0

    def _land_replica(self, name: str) -> None:
        """The launched container becomes ready: capacity lands."""
        assert self.cluster is not None
        self._launching[name] = max(self._launching.get(name, 1) - 1, 0)
        if self._step_cores_up(name, self.params.replica_cores):
            self.scale_outs += 1


class HybridController(Controller):
    """§VII hybrid: horizontal autoscaler + SurgeGuard side by side.

    The autoscaler owns capacity trends (utilization-driven, slow); the
    SurgeGuard units bridge the actuation gap (per-packet fast path +
    metric-window slow path).  They share nothing but the cluster.
    """

    name = "hpa+surgeguard"

    def __init__(
        self,
        hpa_params: Optional[HpaParams] = None,
        sg_config: Optional[SurgeGuardConfig] = None,
    ):
        super().__init__()
        self.hpa = HorizontalAutoscaler(hpa_params)
        self.surgeguard = SurgeGuardController(sg_config)

    def _on_attach(self) -> None:
        assert self.sim is not None and self.cluster is not None
        assert self.targets is not None
        self.hpa.attach(self.sim, self.cluster, self.targets)
        self.surgeguard.attach(self.sim, self.cluster, self.targets)
        # Aggregate both units' action counts into this controller's stats.
        self.hpa.stats = self.stats
        self.surgeguard.stats = self.stats
        for esc in self.surgeguard.escalators:
            esc.stats = self.stats
        for fr in self.surgeguard.firstresponders:
            fr.stats = self.stats

    def _on_start(self) -> None:
        self.hpa.start()
        self.surgeguard.start()

    def _on_stop(self) -> None:
        self.hpa.stop()
        self.surgeguard.stop()
