"""LSRAM — lightweight SLO resource allocation by gradient descent
(Hu et al., arXiv:2411.11493), reproduced as a ``repro.controllers``
plugin.

LSRAM keeps a *lightweight* per-service latency-vs-resource model —
here the processor-sharing approximation ``L_i(c) ≈ a_i / c`` with the
pressure coefficient ``a_i`` estimated online from each window's
(cores, latency) observation and exponentially smoothed — and re-solves
the cluster-wide SLO allocation every decision cycle by **projected
gradient descent**:

    minimize   Σ_i  max(0, a_i/c_i − SLO_i)²/SLO_i²  +  λ·Σ_i c_i
    subject to Σ_i c_i ≤ B   (per-node core budget),
               c_i ≥ max(min_cores, demand_i · demand_margin)

The hinge term charges only SLO *violations* (normalized, so services
with different SLOs are commensurable); the λ term is the energy
pressure that walks over-provisioned services back down; the projection
step keeps every iterate feasible.  The warm-started solve from the
current allocation converges in a few dozen iterations — the "fast
scaling under highly dynamic load" pitch of the paper.

The allocation floor is the crucial stabilizer.  ``demand_i`` is the
service's *measured* core consumption (busy-core delta per decision
interval), probed multiplicatively upward while the service runs
saturated — demand above the current allocation is unobservable, so a
saturated service's floor grows by ``probe_growth`` per cycle until its
usage falls back under the saturation threshold.  Floors keep both
failure modes of a pure latency solve out:

* the energy term can never walk an allocation below what the service
  is actually consuming (early drafts bled every satisfied service by
  ~λ·lr·iters cores per cycle and met each surge from the global
  floor);
* under scarcity the projection reclaims only *idle* slack — in this
  simulator per-container ``execTime`` includes downstream round
  trips, so during a bottleneck every upstream ancestor also looks
  SLO-violating, and a latency-only solve steals from the one truly
  saturated container to feed its blocked ancestors (the
  dependence-blindness SurgeGuard §III attacks).  Usage floors make
  that theft impossible: the hinge gradient only steers the surplus.

Fidelity caveats vs the source paper:

* LSRAM's full pipeline includes a workload predictor feeding the
  allocator; this reproduction solves from *measured* windows only (the
  gradient-descent SLO allocator is the reproduced contribution);
* the paper allocates container CPU quotas across a Kubernetes cluster;
  here the budget ``B`` is each simulated node's core budget and the
  solve runs per node (shared-nothing, same enforcement every other
  controller faces);
* SLOs are the harness's profiled 2×-average ``expected_exec_time``
  targets — identical limits to every baseline, per the source paper's
  own per-service SLO formulation.

The solver is a pure module-level function (:func:`solve_allocation`)
so the property suite can pin feasibility (budget + floors respected)
and self-improvement (the solution's objective never exceeds the
projected starting point's) on synthetic models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.controllers.base import Controller
from repro.sim.process import PeriodicProcess

__all__ = [
    "LsramController",
    "LsramParams",
    "lower_bounds",
    "objective",
    "project",
    "solve_allocation",
]


@dataclass(frozen=True)
class LsramParams:
    """Tunables of the gradient-descent SLO allocator."""

    #: Decision (re-solve) interval.
    interval: float = 0.25
    #: EWMA decay factor for the per-service pressure coefficient
    #: ``a_i`` and demand estimate when the observation *falls* (1.0 =
    #: trust only the latest window).  Rising observations are adopted
    #: instantly — the processor-sharing model underestimates queueing
    #: blow-up, so the allocator must never lag a congestion onset
    #: behind an average.
    smoothing: float = 0.4
    #: SLO headroom: the solver targets ``slo_margin × SLO`` so the
    #: model-mismatch around saturation (a/c is far too optimistic near
    #: ρ→1) is absorbed as allocated slack instead of tail latency.
    slo_margin: float = 0.7
    #: Gradient-descent step size.
    lr: float = 0.3
    #: Gradient-descent iterations per solve (warm-started, so few).
    iterations: int = 40
    #: Energy pressure λ: marginal cost of one allocated core in the
    #: objective, pulling satisfied services back toward their floors.
    energy_weight: float = 0.02
    #: Allocation floor per container.
    min_cores: float = 0.5
    #: Floor headroom over measured demand (see module docstring).
    demand_margin: float = 1.5
    #: usage/cores above this ⇒ the service is *saturated* and its true
    #: demand is unobservable; probe upward instead of trusting usage.
    sat_threshold: float = 0.85
    #: Multiplicative demand probe applied to a saturated allocation.
    probe_growth: float = 1.6
    #: Actuation quantum: allocations move only in multiples of this
    #: (and only when the solve moved a container at least one quantum).
    quantum: float = 0.25

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not 0 < self.smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        if not 0 < self.slo_margin <= 1:
            raise ValueError("slo_margin must be in (0, 1]")
        if self.lr <= 0 or self.iterations < 1:
            raise ValueError("need lr > 0 and iterations >= 1")
        if self.energy_weight < 0:
            raise ValueError("energy_weight must be non-negative")
        if self.min_cores <= 0 or self.quantum <= 0:
            raise ValueError("min_cores and quantum must be positive")
        if self.demand_margin < 1.0:
            raise ValueError("demand_margin must be >= 1")
        if not 0 < self.sat_threshold < 1:
            raise ValueError("sat_threshold must be in (0, 1)")
        if self.probe_growth <= 1.0:
            raise ValueError("probe_growth must be > 1")


def objective(
    cores: Sequence[float],
    pressure: Sequence[float],
    slo: Sequence[float],
    energy_weight: float,
) -> float:
    """LSRAM's allocation objective (see module docstring)."""
    total = 0.0
    for c, a, s in zip(cores, pressure, slo):
        v = max(0.0, a / c - s) / s
        total += v * v + energy_weight * c
    return total


def lower_bounds(
    demand: Sequence[float], budget: float, params: "LsramParams"
) -> List[float]:
    """Per-service allocation floors: measured demand plus margin,
    shrunk proportionally (above ``min_cores``) if the raw floors
    exceed the budget — the projection must always have a feasible set
    to land in, and on a modeled-infeasible node proportional best
    effort is the least-bad answer.
    """
    lo = [max(params.min_cores, d * params.demand_margin) for d in demand]
    excess = sum(lo) - budget
    if excess <= 0:
        return lo
    slack = [x - params.min_cores for x in lo]
    total = sum(slack)
    if total <= 0:
        return lo
    shrink = min(1.0, excess / total)
    return [x - s * shrink for x, s in zip(lo, slack)]


def project(
    cores: Sequence[float], budget: float, lower: Sequence[float]
) -> List[float]:
    """Projection onto ``{c_i >= lower_i, Σc <= budget}``.

    Floors first, then removes any budget excess proportionally to each
    service's slack above its floor (services at the floor give nothing
    back).  When ``budget < Σ lower`` the floors win — the node was
    infeasible to begin with, and the floors are the least-bad answer.
    """
    c = [max(x, lo) for x, lo in zip(cores, lower)]
    excess = sum(c) - budget
    if excess <= 0:
        return c
    slack = [x - lo for x, lo in zip(c, lower)]
    total = sum(slack)
    if total <= 0:
        return c
    shrink = min(1.0, excess / total)
    return [x - s * shrink for x, s in zip(c, slack)]


def solve_allocation(
    current: Sequence[float],
    pressure: Sequence[float],
    slo: Sequence[float],
    budget: float,
    params: LsramParams,
    lower: Optional[Sequence[float]] = None,
) -> List[float]:
    """Projected gradient descent from ``current``; returns a feasible
    allocation whose objective is no worse than ``project(current)``'s.

    ``lower`` holds the per-service floors (``min_cores`` everywhere
    when omitted); callers must pass floors that fit the budget (see
    :func:`lower_bounds`) for the budget constraint to be satisfiable.
    Deterministic: fixed iteration count, no randomness, pure floats.
    """
    n = len(current)
    assert len(pressure) == n and len(slo) == n
    lo = [params.min_cores] * n if lower is None else list(lower)
    assert len(lo) == n
    c = project(current, budget, lo)
    best = list(c)
    best_f = objective(best, pressure, slo, params.energy_weight)
    for _ in range(params.iterations):
        grad = []
        for ci, a, s in zip(c, pressure, slo):
            v = max(0.0, a / ci - s) / s
            # d/dc [ max(0, a/c − s)²/s² ] = −2·v·a / (s·c²)
            g = -2.0 * v * a / (s * ci * ci) + params.energy_weight
            grad.append(g)
        c = project(
            [ci - params.lr * g for ci, g in zip(c, grad)],
            budget,
            lo,
        )
        f = objective(c, pressure, slo, params.energy_weight)
        if f < best_f:
            best_f = f
            best = list(c)
    return best


class LsramController(Controller):
    """Per-cycle gradient-descent SLO allocation under the node budget."""

    name = "lsram"

    def __init__(self, params: Optional[LsramParams] = None):
        super().__init__()
        self.params = params or LsramParams()
        self._proc: Optional[PeriodicProcess] = None
        #: Smoothed pressure coefficient a_i per container; absent until
        #: the container's first non-empty window (cold services hold
        #: their current allocation and are charged to the budget as-is).
        self._pressure: Dict[str, float] = {}
        #: Smoothed demand estimate (cores actually consumed) per
        #: container — the allocation floor input.
        self._demand: Dict[str, float] = {}
        #: Last seen busy-core integral per container (usage deltas).
        self._last_busy: Dict[str, float] = {}

    def _on_start(self) -> None:
        assert self.sim is not None and self.cluster is not None
        self._pressure = {}
        self._demand = {}
        self._last_busy = {}
        for name, c in self.cluster.containers.items():
            c.sync()
            self._last_busy[name] = c.busy_core_seconds
        self._proc = PeriodicProcess(self.sim, self.params.interval, self._decide)

    def _on_stop(self) -> None:
        if self._proc is not None:
            self._proc.stop()

    # ------------------------------------------------------------- modeling
    def _fold(self, store: Dict[str, float], name: str, observed: float) -> None:
        """EWMA with instant upward adoption (see ``smoothing``)."""
        prev = store.get(name)
        if prev is None or observed > prev:
            store[name] = observed
        else:
            alpha = self.params.smoothing
            store[name] = (1 - alpha) * prev + alpha * observed

    def _observe(self) -> None:
        """Fold this cycle's runtime windows into the smoothed model."""
        assert self.cluster is not None
        p = self.params
        for name, runtime in self.cluster.runtimes.items():
            container = self.cluster.containers[name]
            container.sync()
            prev_busy = self._last_busy.get(name, container.busy_core_seconds)
            self._last_busy[name] = container.busy_core_seconds
            # Clamped at >= 0: crash/restart fault plans can rewind the
            # busy integral, and a restarted container reads as idle.
            usage = max(container.busy_core_seconds - prev_busy, 0.0) / p.interval
            cores = container.cores
            if usage >= p.sat_threshold * cores:
                # Saturated: true demand is above the ceiling and
                # unobservable — probe upward multiplicatively.
                demand = cores * p.probe_growth
                self._demand[name] = max(self._demand.get(name, 0.0), demand)
            else:
                self._fold(self._demand, name, usage)
            window = runtime.collect()
            if window.count == 0:
                continue
            self._fold(self._pressure, name, window.avg_exec_time * cores)

    # ------------------------------------------------------------- decision
    def _decide(self) -> None:
        assert self.cluster is not None and self.targets is not None
        self.stats.decision_cycles += 1
        p = self.params
        self._observe()
        for node in self.cluster.nodes:
            modeled: List[Tuple[str, float, float, float, float]] = []
            reserved = 0.0
            for name, container in node.containers.items():
                if container.decommissioned:
                    continue
                a = self._pressure.get(name)
                if a is None:
                    reserved += container.cores
                    continue
                slo = p.slo_margin * self.targets.expected_exec_time[name]
                demand = self._demand.get(name, 0.0)
                modeled.append((name, container.cores, a, slo, demand))
            if not modeled:
                continue
            budget = node.cores - reserved
            lo = lower_bounds([m[4] for m in modeled], budget, p)
            solution = solve_allocation(
                [m[1] for m in modeled],
                [m[2] for m in modeled],
                [m[3] for m in modeled],
                budget,
                p,
                lower=lo,
            )
            self._actuate(modeled, solution)

    def _actuate(
        self,
        modeled: List[Tuple[str, float, float, float, float]],
        solution: List[float],
    ) -> None:
        """Apply the solve, quantized; releases first so the node budget
        always has room for the grants of the same cycle."""
        assert self.cluster is not None
        p = self.params
        moves: List[Tuple[str, float, float]] = []
        for (name, cores, _a, _s, _d), target in zip(modeled, solution):
            quantized = max(
                round(target / p.quantum) * p.quantum, p.min_cores
            )
            if quantized < cores:
                # Releases are rate-limited to one quantum per cycle:
                # grants must land instantly (surge reaction is the
                # whole point) but reclaim may stroll — a symmetric
                # actuator walks the whole cluster to its floors within
                # a few cycles and meets every surge from scratch.
                quantized = max(quantized, cores - p.quantum)
            if abs(quantized - cores) >= p.quantum - 1e-9:
                moves.append((name, cores, quantized))
        for name, cores, new in sorted(
            moves, key=lambda m: m[2] - m[1]
        ):  # releases (negative delta) before grants
            if new < cores:
                self.cluster.set_cores(name, new)
                self.stats.downscale_core_actions += 1
            else:
                node = self.cluster.node_of(name)
                if node.free_cores + 1e-9 < new - cores:
                    new = cores + node.free_cores
                    if new - cores < p.quantum - 1e-9:
                        continue
                self.cluster.set_cores(name, new)
                self.stats.upscale_core_actions += 1
