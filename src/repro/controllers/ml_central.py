"""A centralized ML-style controller (the Table I "ML" row).

The paper does not evaluate Sinan/Sage directly — it cites their
properties: *dependence-aware* (they learn inter-container dynamics and
identify root causes correctly), *centralized* (container metrics are
shipped to an inference server, decisions shipped back), and *slow*
(decision granularity >1 s even when inference itself takes tens of
milliseconds, §I/§III-A).

:class:`CentralizedMLController` models exactly that trade-off so the
detection-delay story (Fig. 4) and Table I can include the ML point:

* every ``interval`` (default 1 s) it *snapshots* all containers'
  windows — paying a metric-collection delay — then applies a
  root-cause-correct allocation after an additional inference delay;
* root-cause analysis is "oracle-quality" (it reuses SurgeGuard's own
  queueBuildup/execMetric scoring, globally, plus global downstream
  knowledge), so the only thing wrong with it is *when* it acts.

This is intentionally generous to the ML approach: anything it loses,
it loses to latency alone — which is the paper's argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.controllers.base import Controller
from repro.core.config import SurgeGuardConfig
from repro.core.scoring import score_container
from repro.sim.process import PeriodicProcess

__all__ = ["CentralizedMLController", "MLParams"]


@dataclass(frozen=True)
class MLParams:
    """Latency model of the centralized ML pipeline."""

    #: Decision granularity (Table I: >1 s for Sinan/Sage).
    interval: float = 1.0
    #: Metric collection (container → inference server) latency.
    collection_delay: float = 0.05
    #: Inference + decision distribution latency (paper: "tens to
    #: hundreds of milliseconds" for inference alone).
    inference_delay: float = 0.15
    core_step: float = 1.0
    min_cores: float = 0.5

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.collection_delay < 0 or self.inference_delay < 0:
            raise ValueError("delays must be non-negative")


class CentralizedMLController(Controller):
    """Root-cause-correct but slow and centralized."""

    name = "ml-central"

    def __init__(self, params: Optional[MLParams] = None):
        super().__init__()
        self.params = params or MLParams()
        # Reuse SurgeGuard's scoring thresholds for the "learned" model.
        self._score_cfg = SurgeGuardConfig()
        self._proc: Optional[PeriodicProcess] = None

    def _on_start(self) -> None:
        assert self.sim is not None
        self._proc = PeriodicProcess(self.sim, self.params.interval, self._cycle)

    def _on_stop(self) -> None:
        if self._proc is not None:
            self._proc.stop()

    # ----------------------------------------------------------- decision
    def _cycle(self) -> None:
        """Kick off one collect → infer → apply round."""
        assert self.sim is not None
        self.sim.schedule(self.params.collection_delay, self._collect)

    def _collect(self) -> None:
        assert self.cluster is not None and self.sim is not None
        windows = {n: rt.collect() for n, rt in self.cluster.runtimes.items()}
        self.sim.schedule(self.params.inference_delay, self._apply, windows)

    def _apply(self, windows) -> None:
        assert self.cluster is not None and self.targets is not None
        self.stats.decision_cycles += 1
        p = self.params
        scores: Dict[str, int] = {n: 0 for n in windows}
        for n, w in windows.items():
            cs = score_container(
                n,
                w,
                self.targets.expected_exec_metric[n],
                self.targets.expected_exec_time[n],
                self._score_cfg,
            )
            scores[n] += cs.self_score
            if cs.marks_downstream:
                # Centralized = global task-graph knowledge: score *all*
                # downstream containers, on any node.
                for d in self.cluster.app.downstream_of(n):
                    scores[d] += 1
        candidates: List[str] = sorted(
            (n for n in scores if scores[n] > 0),
            key=lambda n: scores[n],
            reverse=True,
        )
        for n in candidates:
            if not self._step_cores_up(n, p.core_step):
                self._step_freq_up(n)
        # Reclaim from clearly-idle containers (generous, Escalator-like).
        for n, w in windows.items():
            if scores[n] == 0 and w.count > 0:
                target = self.targets.expected_exec_metric[n]
                if w.avg_exec_metric < 0.4 * target and w.queue_buildup < 1.05:
                    c = self.cluster.containers[n]
                    if c.frequency > c.dvfs.f_min:
                        self._step_freq_down(n)
