"""Static allocation: the no-controller baseline.

Used to measure the raw impact of a surge (Fig. 4's "no mitigation"
region, substrate tests, and the profiling pass, which must run with
allocations frozen at their initial values).
"""

from __future__ import annotations

from repro.controllers.base import Controller

__all__ = ["NullController"]


class NullController(Controller):
    """Does nothing; allocations stay at their initial values."""

    name = "static"
    shardable = True  # schedules nothing, touches nothing

    def _on_start(self) -> None:  # noqa: D102 - nothing to schedule
        pass
