"""Clairvoyant controller for the Fig. 4 detection-delay study.

Fig. 4 compares "an ideal controller that, on detecting a surge,
allocates the exact amount of cores needed to overcome it (instead of
increasing allocations step-by-step as in real controllers)" under
different *detection delays* (0.2 ms / 0.5 s / 1 s).  The oracle knows
the surge schedule and the per-service demand model, so the only
variable is the delay — isolating detection latency's contribution to
violation volume and to the extra cores needed to drain the queue.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.controllers.base import Controller
from repro.workload.arrivals import RateSchedule

__all__ = ["OracleController"]


class OracleController(Controller):
    """Allocates exact surge demand after a fixed detection delay.

    Parameters
    ----------
    schedule:
        The (known) rate schedule driving the experiment.
    detection_delay:
        Seconds between a rate change and the oracle reacting to it.
    headroom:
        Demand multiplier; >1 leaves capacity to drain the queue that
        built up during the detection delay.  The *extra cores needed*
        output of Fig. 4 is the smallest headroom that clears the
        backlog before the surge ends, found by the experiment driver.
    target_util:
        Utilization the allocation aims for at the scheduled rate.
    """

    name = "oracle"

    def __init__(
        self,
        schedule: RateSchedule,
        *,
        detection_delay: float,
        headroom: float = 1.0,
        target_util: float = 0.7,
        granularity: float = 0.5,
    ):
        super().__init__()
        if detection_delay < 0:
            raise ValueError("detection_delay must be non-negative")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        self.schedule = schedule
        self.detection_delay = detection_delay
        self.headroom = headroom
        self.target_util = target_util
        self.granularity = granularity

    # ---------------------------------------------------------------- sizing
    def _cores_for_rate(self, service: str, rate: float) -> float:
        assert self.cluster is not None
        spec = self.cluster.app.service(service)
        f = self.cluster.config.dvfs.f_min
        cycles = spec.pre_work.mean_cycles + spec.post_work.mean_cycles
        demand = rate * cycles / f
        g = self.granularity
        return max(g, math.ceil(demand / self.target_util / g) * g)

    def _apply_rate(self, rate: float, boost: float) -> None:
        assert self.cluster is not None
        self.stats.decision_cycles += 1
        for name in self.cluster.app.service_names:
            want = self._cores_for_rate(name, rate) * boost
            g = self.granularity
            want = math.ceil(want / g) * g
            node = self.cluster.node_of(name)
            have = self.cluster.containers[name].cores
            want = min(want, have + node.free_cores)
            if want != have:
                self.cluster.set_cores(name, want)
                if want > have:
                    self.stats.upscale_core_actions += 1
                else:
                    self.stats.downscale_core_actions += 1

    # -------------------------------------------------------------- lifecycle
    def _on_start(self) -> None:
        assert self.sim is not None
        # React to every rate boundary, delayed by the detection latency.
        for spike in self.schedule.spikes:
            delay_on = max(spike.start - self.sim.now, 0.0) + self.detection_delay
            self.sim.schedule(delay_on, self._apply_rate, spike.rate, self.headroom)
            delay_off = max(spike.end - self.sim.now, 0.0) + self.detection_delay
            self.sim.schedule(
                delay_off, self._apply_rate, self.schedule.base_rate, 1.0
            )
