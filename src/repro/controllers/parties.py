"""Parties controller (Chen, Delimitrou, Martínez — ASPLOS'19), adapted
per-container as in the SurgeGuard paper's evaluation.

Parties manages multiple latency-critical jobs by monitoring each job's
slack — ``(target − measured) / target`` — every 500 ms and moving one
resource unit at a time:

* **upscale**: if any job's slack is below the violation threshold,
  give *the worst* job one unit of a resource (a core if the node has
  spares, else a frequency step — the paper's SurgeGuard evaluation
  manages cores + frequency for all controllers);
* **downscale**: if every job has comfortable slack for several
  consecutive intervals, reclaim one unit from the *most* comfortable
  job (frequency first, then cores), so resources return to the spare
  pool.

Fidelity notes for the reproduction (and the behaviours the paper
faults Parties for):

* one adjustment per decision interval per direction — the slow,
  step-by-step ramp Fig. 4 contrasts with an ideal controller;
* **per-container, dependence-blind targets on raw execTime** — during
  a fixed-threadpool surge the upstream service (whose execTime
  includes the implicit queue) is always the worst violator, so Parties
  feeds it cores forever while the true bottleneck starves (Fig. 14);
* averaged metrics over the 500 ms window — blind to sub-window surges
  (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.controllers.base import Controller
from repro.sim.process import PeriodicProcess

__all__ = ["PartiesController", "PartiesParams"]


@dataclass(frozen=True)
class PartiesParams:
    """Tunables of the Parties FSM (defaults follow the original paper)."""

    #: Decision interval (Table I: 500 ms).
    interval: float = 0.5
    #: Slack below this ⇒ violation (original paper: 0.05).
    violation_slack: float = 0.05
    #: Slack above this ⇒ candidate for downscaling (original: ~0.2).
    comfort_slack: float = 0.2
    #: Consecutive comfortable intervals required before reclaiming.
    downscale_patience: int = 3
    #: Core allocation unit.  The SurgeGuard paper allocates both
    #: hyperthreads of a physical core together for Parties: 1.0.
    core_step: float = 1.0
    #: Minimum cores a container may be squeezed to.
    min_cores: float = 0.5

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not 0 <= self.violation_slack < self.comfort_slack:
            raise ValueError("need 0 <= violation_slack < comfort_slack")
        if self.downscale_patience < 1:
            raise ValueError("downscale_patience must be >= 1")


class PartiesController(Controller):
    """Per-container Parties with cores + frequency."""

    name = "parties"

    def __init__(self, params: Optional[PartiesParams] = None):
        super().__init__()
        self.params = params or PartiesParams()
        self._proc: Optional[PeriodicProcess] = None
        self._comfort_streak: Dict[str, int] = {}
        # Downscale verification state: Parties reverts an adjustment
        # that degrades QoS and temporarily blacklists the victim.
        self._pending_downscale: Optional[tuple] = None  # (name, kind)
        self._cooldown: Dict[str, int] = {}

    def _on_start(self) -> None:
        assert self.sim is not None and self.cluster is not None
        self._comfort_streak = {n: 0 for n in self.cluster.containers}
        self._proc = PeriodicProcess(self.sim, self.params.interval, self._decide)

    def _on_stop(self) -> None:
        if self._proc is not None:
            self._proc.stop()

    # ------------------------------------------------------------- decisions
    def _slacks(self) -> Dict[str, float]:
        """Per-container slack from this interval's runtime windows.

        Containers that saw no requests keep neutral (comfortable) slack:
        an idle container is not violating.
        """
        assert self.cluster is not None and self.targets is not None
        slacks: Dict[str, float] = {}
        for name, runtime in self.cluster.runtimes.items():
            window = runtime.collect()
            target = self.targets.expected_exec_time[name]
            if window.count == 0:
                slacks[name] = 1.0
                continue
            slacks[name] = (target - window.avg_exec_time) / target
        return slacks

    def _decide(self) -> None:
        self.stats.decision_cycles += 1
        p = self.params
        slacks = self._slacks()

        # Verify the previous interval's downscale (Parties' sizing FSM:
        # an adjustment that hurts QoS is reverted and the container is
        # left alone for a while).
        if self._pending_downscale is not None:
            name, kind = self._pending_downscale
            self._pending_downscale = None
            if slacks[name] < p.violation_slack:
                if kind == "core":
                    self._step_cores_up(name, p.core_step)
                else:
                    self._step_freq_up(name)
                self._cooldown[name] = 10
        for n in list(self._cooldown):
            self._cooldown[n] -= 1
            if self._cooldown[n] <= 0:
                del self._cooldown[n]

        worst = min(slacks, key=lambda n: slacks[n])
        if slacks[worst] < p.violation_slack:
            # Upscale the worst container by one unit: core, else frequency.
            if not self._step_cores_up(worst, p.core_step):
                self._step_freq_up(worst)
            self._comfort_streak[worst] = 0

        # Track per-container comfort for hysteretic downscaling.
        for name, s in slacks.items():
            if s > p.comfort_slack:
                self._comfort_streak[name] += 1
            else:
                self._comfort_streak[name] = 0

        # Downscale only under resource pressure: Parties reclaims from
        # comfortable jobs to feed violating ones when the node has no
        # spare cores — it does *not* shed resources at steady state
        # (the paper's Fig. 6-right criticism is precisely that Parties
        # lets comfortable containers keep hogging what they were given).
        if slacks[worst] < p.violation_slack:
            node = self.cluster.node_of(worst)
            if node.free_cores + 1e-9 < p.core_step:
                candidates = [
                    n
                    for n, streak in self._comfort_streak.items()
                    if streak >= p.downscale_patience
                    and n not in self._cooldown
                    and n != worst
                    and self.cluster.node_of(n) is node
                ]
                if candidates:
                    best = max(candidates, key=lambda n: slacks[n])
                    if self._step_cores_down(best, p.core_step, p.min_cores):
                        self._pending_downscale = (best, "core")
                    elif self._step_freq_down(best):
                        self._pending_downscale = (best, "freq")
                    self._comfort_streak[best] = 0
