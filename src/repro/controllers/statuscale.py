"""StatuScale — status-aware elastic vertical scaling (Wen et al.,
arXiv:2407.10173), reproduced as a ``repro.controllers`` plugin.

StatuScale sizes each container's CPU limit from its recent *resource
usage* plus a status-dependent headroom, with a latency **correction
factor** layered on top.  The loop has two cooperating pieces:

* a **load status detector** that watches a sliding window of recent
  per-container usage samples and classifies the load as *stable* or
  *fluctuating* (the paper uses the window's variability and short-term
  trend — reproduced here as relative standard deviation plus the
  normalized first-to-last slope of the window);
* an **elastic limit sizer**: the target limit is the measured usage
  times a headroom factor — modest under a *stable* status, generous
  under a *fluctuating* one so the limit front-runs the surge instead
  of trailing it.  When observed latency additionally exceeds its SLO,
  a correction grant proportional to the latency excess (``ratio − 1``)
  is added on top.  Downscaling is the conservative mirror image — only
  after a patience streak of comfortably-low latency with the limit
  sitting well above usage, only in single steps, and never while the
  detector reports fluctuation.

Sizing from *local* usage rather than end-to-end latency matters in
this simulator: per-container ``execTime`` includes downstream round
trips, so during a bottleneck every upstream ancestor also reports
violating latency, and a latency-proportional sizer feeds the ancestors
while the true bottleneck starves (the dependence-blindness SurgeGuard
§III attacks).  Usage is local by construction — only the container
actually burning its cores attracts a bigger limit.

Fidelity caveats vs the source paper:

* StatuScale sizes Kubernetes CPU *limits*; here the sizer moves
  simulated core allocations through the shared
  :class:`~repro.controllers.base.Controller` actuation helpers (node
  budget enforced, same units every other baseline uses);
* the paper's Savitzky–Golay trend filter is replaced by the plain
  window slope — the detector's role (suppress downscale + boost
  headroom during fluctuation) is preserved, the smoothing pedigree is
  not;
* per-service SLOs come from the harness's profiled 2×-average targets
  (``expected_exec_time``), the same limits every baseline receives,
  rather than StatuScale's user-specified response-time SLOs.

The decision math is deliberately exposed as pure module-level
functions (:func:`load_status`, :func:`upscale_step`,
:func:`plan_decision`) so the property suite can pin **decision
monotonicity**: a service reporting uniformly higher latency never ends
up with fewer cores (see ``tests/controllers/test_statuscale.py``).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Sequence

from repro.controllers.base import Controller
from repro.sim.process import PeriodicProcess

__all__ = [
    "StatuScaleController",
    "StatuScaleParams",
    "ServiceState",
    "load_status",
    "plan_decision",
    "upscale_step",
]


@dataclass(frozen=True)
class StatuScaleParams:
    """Tunables of the StatuScale loop (defaults follow the paper's
    spirit at this repo's simulation scale)."""

    #: Decision interval (the paper samples at seconds granularity;
    #: scaled down with the rest of the experiments).
    interval: float = 0.25
    #: Sliding-window length (usage samples) for the status detector.
    window: int = 8
    #: Relative standard deviation above this ⇒ *fluctuating* status.
    surge_rsd: float = 0.15
    #: Normalized window slope above this ⇒ *fluctuating* status.
    surge_slope: float = 0.25
    #: Limit = usage × headroom under a *stable* status.
    headroom: float = 1.75
    #: Limit = usage × surge_headroom under a *fluctuating* status.
    surge_headroom: float = 2.0
    #: latency/SLO ratio above this ⇒ add the correction grant.
    upscale_ratio: float = 1.0
    #: latency/SLO ratio below this ⇒ downscale candidate.
    downscale_ratio: float = 0.7
    #: Correction-factor gain: fraction of the latency excess converted
    #: into a proportional core grant.
    correction_gain: float = 1.0
    #: Correction boost applied while the detector reports fluctuation.
    surge_boost: float = 2.0
    #: Hard cap on cores granted per service per decision.
    max_step: float = 2.0
    #: Actuation quantum (grants/releases are multiples of this).
    core_step: float = 0.5
    #: Consecutive comfortable intervals before releasing a step.
    downscale_patience: int = 8
    #: Minimum cores a container may be squeezed to.
    min_cores: float = 0.5

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.surge_rsd < 0 or self.surge_slope < 0:
            raise ValueError("detector thresholds must be non-negative")
        if not 1.0 <= self.headroom <= self.surge_headroom:
            raise ValueError("need 1 <= headroom <= surge_headroom")
        if not 0 < self.downscale_ratio < self.upscale_ratio:
            raise ValueError("need 0 < downscale_ratio < upscale_ratio")
        if self.correction_gain <= 0 or self.surge_boost < 1.0:
            raise ValueError("need correction_gain > 0 and surge_boost >= 1")
        if self.core_step <= 0 or self.max_step < self.core_step:
            raise ValueError("need 0 < core_step <= max_step")
        if self.downscale_patience < 1:
            raise ValueError("downscale_patience must be >= 1")
        if self.min_cores <= 0:
            raise ValueError("min_cores must be positive")


@dataclass
class ServiceState:
    """Per-service sliding usage window + downscale hysteresis."""

    samples: Deque[float] = field(default_factory=deque)
    low_streak: int = 0


def load_status(samples: Sequence[float], params: StatuScaleParams) -> bool:
    """Status detector: ``True`` = *fluctuating*, ``False`` = *stable*.

    Operates on the sliding window of usage samples.  Fluctuation is
    declared when the window's relative standard deviation exceeds
    ``surge_rsd`` or its normalized first-to-last slope exceeds
    ``surge_slope``.  Windows with fewer than 3 samples are *stable* —
    the detector has nothing to detect yet.
    """
    n = len(samples)
    if n < 3:
        return False
    mean = sum(samples) / n
    if mean <= 0:
        return False
    var = sum((s - mean) ** 2 for s in samples) / n
    if math.sqrt(var) / mean > params.surge_rsd:
        return True
    slope = (samples[-1] - samples[0]) / (n - 1)
    return slope / mean > params.surge_slope


def upscale_step(
    params: StatuScaleParams, ratio: float, cores: float, fluctuating: bool
) -> float:
    """Latency correction grant for one service, in cores (>= 0).

    The raw correction is ``gain · (ratio − 1) · cores`` — the paper's
    multiplicative limit adjustment expressed as an additive grant —
    boosted by ``surge_boost`` under a fluctuating status, rounded *up*
    to the actuation quantum, and capped at ``max_step``.  Monotone
    non-decreasing in ``ratio`` and in ``cores`` (for either status),
    which the Hypothesis suite pins.
    """
    if ratio <= params.upscale_ratio:
        return 0.0
    raw = params.correction_gain * (ratio - 1.0) * cores
    if fluctuating:
        raw *= params.surge_boost
    quantized = math.ceil(raw / params.core_step - 1e-12) * params.core_step
    return min(max(quantized, params.core_step), params.max_step)


def plan_decision(
    params: StatuScaleParams,
    state: ServiceState,
    ratio: float,
    usage: float,
    cores: float,
) -> float:
    """One decision step for one service: update ``state`` with this
    window's ``usage`` sample and return the signed core delta given the
    latency/SLO ``ratio`` and current allocation.

    Positive = grant (capped at ``max_step``), negative = release (one
    ``core_step``, respecting ``min_cores``), 0.0 = hold.  This is the
    whole per-service policy — the controller merely actuates the
    returned delta through the node budget — so tests can drive it
    directly on synthetic sequences.  Monotone: for the same state and
    usage, a higher ``ratio`` never yields a smaller delta.
    """
    state.samples.append(usage)
    while len(state.samples) > params.window:
        state.samples.popleft()
    fluctuating = load_status(state.samples, params)

    head = params.surge_headroom if fluctuating else params.headroom
    desired = usage * head
    if ratio > params.upscale_ratio:
        desired = max(desired, cores + upscale_step(params, ratio, cores, fluctuating))

    if desired > cores + 1e-9:
        state.low_streak = 0
        grant = math.ceil((desired - cores) / params.core_step - 1e-12)
        return min(grant * params.core_step, params.max_step)

    if desired <= cores - params.core_step and ratio < params.downscale_ratio:
        state.low_streak += 1
        # Status-aware: never release resources while the detector sees
        # fluctuation, nor before the window has even filled once — a
        # half-seen history cannot support a *stable* verdict (the
        # paper's guard against oscillating limits).
        if (
            not fluctuating
            and len(state.samples) >= params.window
            and state.low_streak >= params.downscale_patience
        ):
            state.low_streak = 0
            if cores - params.core_step >= params.min_cores - 1e-9:
                return -params.core_step
        return 0.0

    state.low_streak = 0
    return 0.0


class StatuScaleController(Controller):
    """Sliding-window status detection + headroom/correction sizing."""

    name = "statuscale"

    def __init__(self, params: Optional[StatuScaleParams] = None):
        super().__init__()
        self.params = params or StatuScaleParams()
        self._proc: Optional[PeriodicProcess] = None
        self._state: Dict[str, ServiceState] = {}
        #: Last seen busy-core integral per container (usage deltas).
        self._last_busy: Dict[str, float] = {}

    def _on_start(self) -> None:
        assert self.sim is not None and self.cluster is not None
        self._state = {n: ServiceState() for n in self.cluster.containers}
        self._last_busy = {}
        for name, c in self.cluster.containers.items():
            c.sync()
            self._last_busy[name] = c.busy_core_seconds
        self._proc = PeriodicProcess(self.sim, self.params.interval, self._decide)

    def _on_stop(self) -> None:
        if self._proc is not None:
            self._proc.stop()

    def _usage(self, name: str) -> float:
        """Mean cores burned by ``name`` since the previous decision.

        Clamped at >= 0: crash/restart fault plans can rewind the busy
        integral relative to the baseline, and a restarted container
        must read as idle, not as negative work.
        """
        assert self.cluster is not None
        c = self.cluster.containers[name]
        c.sync()
        prev = self._last_busy.get(name, c.busy_core_seconds)
        self._last_busy[name] = c.busy_core_seconds
        return max(c.busy_core_seconds - prev, 0.0) / self.params.interval

    def _decide(self) -> None:
        assert self.cluster is not None and self.targets is not None
        self.stats.decision_cycles += 1
        p = self.params
        grants: list = []
        for name, runtime in self.cluster.runtimes.items():
            window = runtime.collect()
            # Idle window: latency reads 0 ⇒ ratio 0 ⇒ the downscale
            # path's hysteresis applies (an idle service is maximally
            # comfortable, not unknown).
            target = self.targets.expected_exec_time[name]
            ratio = (window.avg_exec_time / target) if window.count else 0.0
            state = self._state.setdefault(name, ServiceState())
            usage = self._usage(name)
            cores = self.cluster.containers[name].cores
            delta = plan_decision(p, state, ratio, usage, cores)
            if delta > 0:
                grants.append((usage / max(cores, 1e-9), name, delta))
            elif delta < 0:
                # Releases actuate immediately so the same cycle's grants
                # can reuse the freed cores.
                self._step_cores_down(name, -delta, p.min_cores)
        # Grants go most-saturated-first (usage/cores): when the node's
        # free cores cannot cover every sized limit, they must reach the
        # container actually burning its allocation — feeding a blocked
        # upstream instead only tightens the burst arriving at the
        # starved bottleneck.
        for _, name, delta in sorted(grants, reverse=True):
            # Grant in quanta so a partially-full node yields what it
            # can instead of rejecting the whole correction.
            steps = int(round(delta / p.core_step))
            for _ in range(steps):
                if not self._step_cores_up(name, p.core_step):
                    break
