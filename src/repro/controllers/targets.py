"""Per-container QoS targets — the artifact's config-file contents.

The paper sets two parameters per container (§IV "SurgeGuard
Parameters"): ``expectedExecMetric`` and ``expectedTimeFromStart``,
obtained by profiling the application at low load for 1–2 minutes and
taking **2× the measured averages** (the methodology of Dirigent and
Nightcore).  The baselines use the analogous per-container latency
limit on raw execTime ("we set the same per-container QoS limits for
all three controllers").

:meth:`TargetConfig.from_windows` implements that profiling recipe from
one low-load run's collected runtime windows; the experiment harness
drives it automatically before each measured run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.cluster.runtime import RuntimeWindow

__all__ = ["TargetConfig"]


class _ReplicaFallback(dict):
    """Per-container target dict that resolves replica endpoint names.

    Stateless replicas share their service's profile, so a lookup for
    ``chain2@3`` falls back to the ``chain2`` entry (and caches it, so
    the dict stays C-speed after first touch).  Only used on
    replica-armed runs — unarmed clusters keep plain dicts, so the
    golden fast path never pays for the subclass.
    """

    def __missing__(self, key):
        base = key.partition("@")[0]
        if base != key:
            val = dict.get(self, base)
            if val is not None:
                self[key] = val
                return val
        raise KeyError(key)

    def get(self, key, default=None):
        # dict.get never consults __missing__; route through it so
        # FirstResponder's per-packet ``targets.get(pkt.dst)`` sees
        # replica names too.
        try:
            return self[key]
        except KeyError:
            return default


@dataclass(frozen=True)
class TargetConfig:
    """Per-container targets plus the end-to-end QoS limit."""

    #: expectedExecMetric per container (seconds).
    expected_exec_metric: Dict[str, float]
    #: Expected raw execTime per container (baseline controllers' limit).
    expected_exec_time: Dict[str, float]
    #: expectedTimeFromStart per container (seconds) — FirstResponder's
    #: per-packet progress target at request arrival.
    expected_time_from_start: Dict[str, float]
    #: End-to-end QoS target (the wrk2 ``-qos`` value).
    qos_target: float

    def __post_init__(self) -> None:
        if self.qos_target <= 0:
            raise ValueError("qos_target must be positive")
        for name, d in (
            ("expected_exec_metric", self.expected_exec_metric),
            ("expected_exec_time", self.expected_exec_time),
            ("expected_time_from_start", self.expected_time_from_start),
        ):
            for k, v in d.items():
                if v <= 0:
                    raise ValueError(f"{name}[{k!r}] must be positive, got {v!r}")

    def with_replica_fallback(self) -> "TargetConfig":
        """A copy whose per-container dicts resolve replica endpoint
        names (``svc@k``) to the service's profiled targets.

        The copy is fresh per call — fallback lookups cache into it, and
        the profile cache's shared instance must never be mutated.
        """
        return dataclasses.replace(
            self,
            expected_exec_metric=_ReplicaFallback(self.expected_exec_metric),
            expected_exec_time=_ReplicaFallback(self.expected_exec_time),
            expected_time_from_start=_ReplicaFallback(self.expected_time_from_start),
        )

    @classmethod
    def from_windows(
        cls,
        windows: Mapping[str, RuntimeWindow],
        *,
        multiplier: float = 2.0,
        tfs_multiplier: float = 4.0,
        qos_target: float,
    ) -> "TargetConfig":
        """Build targets from one low-load profiling pass.

        ``multiplier`` is the paper's 2× slack factor; the artifact notes
        it can be changed for tighter or looser bounds.
        ``tfs_multiplier`` applies to the per-packet progress target used
        by FirstResponder; it is looser because per-request
        time-from-start has far higher tail dispersion than windowed
        execMetric averages — a tight bound makes the fast path fire on
        ordinary steady-state tails (exactly the noise §IV-A's hold
        window exists to damp).
        """
        if multiplier <= 0 or tfs_multiplier <= 0:
            raise ValueError("multipliers must be positive")
        exec_metric: Dict[str, float] = {}
        exec_time: Dict[str, float] = {}
        tfs: Dict[str, float] = {}
        for name, w in windows.items():
            if w.count == 0:
                raise ValueError(f"profiling window for {name!r} saw no requests")
            exec_metric[name] = multiplier * w.avg_exec_metric
            exec_time[name] = multiplier * w.avg_exec_time
            tfs[name] = tfs_multiplier * w.avg_time_from_start
        return cls(
            expected_exec_metric=exec_metric,
            expected_exec_time=exec_time,
            expected_time_from_start=tfs,
            qos_target=qos_target,
        )
