"""SurgeGuard — the paper's contribution (§III–§IV).

Two complementary units per node, both strictly node-local:

* :class:`~repro.core.firstresponder.FirstResponder` — the fast path.
  A per-node RX hook computes per-packet slack
  (``expectedTimeFromStart − observedTimeFromStart``) and, on negative
  slack, immediately boosts the frequency of the destination container
  and its same-node downstream containers, then freezes that path for a
  hold window (~2× the end-to-end latency).
* :class:`~repro.core.escalator.Escalator` — the slow path.  Every
  decision cycle it scores each local container against the three
  Table II conditions (incoming ``pkt.upscale`` hint, ``queueBuildup``
  over threshold, ``execMetric`` over threshold), upscales candidates
  in (score, core-sensitivity) priority order one core at a time, and
  downscales score-zero containers — including the sensitivity-based
  revocation that frees cores from flat-curve hoarders (Fig. 6 right).

:class:`~repro.core.surgeguard.SurgeGuardController` assembles one
Escalator + one FirstResponder per node from the cluster's
:class:`~repro.cluster.cluster.NodeView` objects — the controller never
receives a global handle, making the decentralization claim structural.
"""

from repro.core.config import SurgeGuardConfig
from repro.core.sensitivity import SensitivityTracker
from repro.core.scoring import UPSCALE_RULES, ContainerScore, score_container
from repro.core.escalator import Escalator
from repro.core.firstresponder import FirstResponder
from repro.core.surgeguard import SurgeGuardController

__all__ = [
    "ContainerScore",
    "Escalator",
    "FirstResponder",
    "SensitivityTracker",
    "SurgeGuardConfig",
    "SurgeGuardController",
    "UPSCALE_RULES",
    "score_container",
]
