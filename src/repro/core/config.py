"""SurgeGuard configuration — the artifact's ``sample_config`` knobs.

Defaults follow the paper where it states values (α = 0.5, revocation
threshold 0.02, hold window ≈ 2× end-to-end latency, upscale-hint TTL
bounded) and otherwise use the values our ablation benches identify as
robust.  Every knob is exercised by at least one test or ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SurgeGuardConfig"]


@dataclass(frozen=True)
class SurgeGuardConfig:
    """All SurgeGuard tunables (Escalator + FirstResponder)."""

    # ------------------------------------------------------------ Escalator
    #: Escalator decision cycle.  Faster than Parties' 500 ms (it is a
    #: node-local read of shared files, no cross-node collection).
    escalator_interval: float = 0.1
    #: Condition (3): violation when execMetric / expectedExecMetric
    #: exceeds this.  expectedExecMetric already carries the 2× profiling
    #: slack, so 1.0 means "beyond the profiled envelope".
    exec_th: float = 1.0
    #: Condition (2): violation when the window queueBuildup exceeds this.
    queue_th: float = 1.5
    #: ``pkt.upscale`` TTL stamped on a queueBuildup violation — bounds
    #: how many downstream hops react to one upstream violation (§IV).
    upscale_ttl: int = 2
    #: How long a queueBuildup stamp keeps marking outgoing packets.
    stamp_duration: float = 0.2
    #: Core allocation unit (both hyperthreads of a physical core).
    core_step: float = 1.0
    #: Floor for downscaling.
    min_cores: float = 0.5
    #: EWMA weight for the execAvg sensitivity matrix (paper: α = 0.5,
    #: "weight newer execution times quite heavily").
    alpha: float = 0.5
    #: Revoke a core when sens[container][#cores−1] is below this
    #: (paper: "revoking a core if sens < 0.02 works well").
    sens_revoke_th: float = 0.02
    #: Comfort factor for Parties-style downscaling of score-0 containers.
    comfort_ratio: float = 0.5
    #: Consecutive comfortable cycles before a score-0 core reclaim.
    #: Long enough (1 s at the default interval) that ordinary window
    #: noise cannot fake sustained comfort; a regretted reclaim is
    #: reverted within one cycle and backs off further.
    downscale_patience: int = 10
    #: Cores granted per candidate per cycle ("one core at a time").
    grant_per_cycle: float = 1.0

    # -------------------------------------------------------- FirstResponder
    #: Enable the fast path.
    firstresponder: bool = True
    #: Frequency-change hold window as a multiple of the end-to-end QoS
    #: target (paper: ~2× the end-to-end request latency).
    hold_factor: float = 2.0
    #: Modeled primary-thread cost per packet (paper §VI-D: 0.26 µs).
    hook_cost: float = 0.26e-6
    #: Coordinator→worker handoff cost (paper: 0.44 µs enqueue).
    enqueue_cost: float = 0.44e-6
    #: Worker dequeue + MSR write cost (paper: 2.1 µs, off critical path).
    msr_cost: float = 2.1e-6

    # -------------------------------------------------------- ablation flags
    #: Use execMetric/queueBuildup (Design Feature #2).  When False the
    #: Escalator falls back to raw execTime violations only — the
    #: "Parties + sensitivity" ablation arm of Fig. 15.
    use_new_metrics: bool = True
    #: Use the sensitivity matrix for priorities and revocation (Design
    #: Feature #3).  When False, candidates are served in score order
    #: only and revocation is purely Parties-style.
    use_sensitivity: bool = True

    def __post_init__(self) -> None:
        if self.escalator_interval <= 0:
            raise ValueError("escalator_interval must be positive")
        if self.exec_th <= 0 or self.queue_th < 1.0:
            raise ValueError("invalid thresholds")
        if self.upscale_ttl < 0:
            raise ValueError("upscale_ttl must be non-negative")
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if self.hold_factor <= 0:
            raise ValueError("hold_factor must be positive")
        if self.core_step <= 0 or self.min_cores <= 0:
            raise ValueError("core sizes must be positive")
