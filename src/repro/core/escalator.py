"""Escalator — SurgeGuard's user-space slow path (§IV-B).

One Escalator instance runs per node and sees only that node's
containers through a :class:`~repro.cluster.cluster.NodeView`.  Each
decision cycle:

1. **Collect** the per-container runtime windows (the shared-file reads
   of Fig. 7 step ④) and fold each observed ``execMetric`` into the
   sensitivity matrix at the container's current allocation.
2. **Score** every container against the three Table II conditions
   (:func:`repro.core.scoring.score_container`).  A local
   ``queueBuildup`` violation adds a point to each *same-node*
   downstream container directly and stamps the violating container's
   runtime so its outgoing packets carry ``pkt.upscale`` — which is how
   downstream containers on *other* nodes learn they are candidates
   without any controller-to-controller communication.
3. **Upscale** candidates in (score desc, core-sensitivity desc) order,
   one ``core_step`` each, while the node has free cores; candidates
   that cannot get a core get a frequency step instead.
4. **Downscale**: Parties-style reclamation from the most comfortable
   score-zero container (frequency first, then a core, with hysteresis),
   plus the sensitivity-based revocation of Design Feature #3 — any
   container whose *last* core shows sensitivity below the revocation
   threshold loses it, violating or not (this is what frees the Fig. 14
   hoarder mid-surge).

The resource-allocation skeleton is deliberately Parties' (the paper:
"SurgeGuard does not specify any particular resource-allocation policy
per se, and we use that of Parties"); Escalator's contribution is *which
containers* it picks and in *what order*.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.cluster.cluster import NodeView
from repro.controllers.base import ControllerStats
from repro.controllers.targets import TargetConfig
from repro.core.config import SurgeGuardConfig
from repro.core.scoring import score_container
from repro.core.sensitivity import SensitivityTracker

__all__ = ["Escalator"]


class Escalator:
    """Per-node slow-path controller.

    Parameters
    ----------
    sim, view:
        The simulator and this node's local view.
    config, targets:
        SurgeGuard tunables and the profiled per-container targets.
    stats:
        Shared action counters (aggregated across the per-node units by
        :class:`~repro.core.surgeguard.SurgeGuardController`).
    """

    def __init__(
        self,
        sim: Simulator,
        view: NodeView,
        config: SurgeGuardConfig,
        targets: TargetConfig,
        stats: Optional[ControllerStats] = None,
    ):
        self.sim = sim
        self.view = view
        self.config = config
        self.targets = targets
        self.stats = stats if stats is not None else ControllerStats()
        self.sensitivity = SensitivityTracker(
            alpha=config.alpha,
            step=config.core_step,
            max_cores=view.node.cores,
        )
        self._proc: Optional[PeriodicProcess] = None
        self._comfort_streak: Dict[str, int] = {
            n: 0 for n in view.container_names
        }
        # shFreq bookkeeping: last seen ∫f dt per container, used to
        # compute each window's *mean* frequency (a boost that decayed
        # mid-window is still accounted for).
        self._freq_integral: Dict[str, float] = {
            n: view.container(n).freq_seconds for n in view.container_names
        }
        self._last_decide_t = sim.now
        # Parties-style downscale verification (the allocation skeleton
        # is Parties', §IV-B): a reclaimed core that provokes a violation
        # is restored and the container left alone for a while.
        self._pending_downscale: Optional[str] = None
        self._cooldown: Dict[str, int] = {}
        #: Cycles a regretted-downscale container is exempt from 4a.
        self.downscale_cooldown_cycles = 20
        self._busy_integral: Dict[str, float] = {
            n: view.container(n).busy_core_seconds
            for n in view.container_names
        }
        #: Last cycle's scores (exposed for tests and the Fig. 14 probe).
        self.last_scores: Dict[str, int] = {}
        #: Optional observer ``(container_name, window)`` called for every
        #: runtime window this Escalator collects — the attachment point
        #: for :mod:`repro.validate` metric-sanity monitors.  ``None``
        #: (the default) costs one comparison per decision cycle.
        self.window_hook: Optional[Callable[[str, object], None]] = None

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Begin the decision loop."""
        if self._proc is not None:
            raise RuntimeError("Escalator already started")
        self._proc = PeriodicProcess(
            self.sim, self.config.escalator_interval, self.decide
        )

    def stop(self) -> None:
        """Stop the decision loop; idempotent."""
        if self._proc is not None:
            self._proc.stop()
            self._proc = None

    # --------------------------------------------------------------- actions
    def _grant_core(self, name: str) -> bool:
        if self.view.free_cores + 1e-9 < self.config.core_step:
            return False
        c = self.view.container(name)
        self.view.set_cores(name, c.cores + self.config.core_step)
        self.stats.upscale_core_actions += 1
        return True

    def _revoke_core(self, name: str) -> bool:
        c = self.view.container(name)
        if c.cores - self.config.core_step < self.config.min_cores - 1e-9:
            return False
        self.view.set_cores(name, c.cores - self.config.core_step)
        self.stats.downscale_core_actions += 1
        return True

    def _freq_up(self, name: str) -> bool:
        c = self.view.container(name)
        new = c.dvfs.step_up(c.frequency)
        if new == c.frequency:
            return False
        self.view.set_frequency(name, new)
        self.stats.freq_up_actions += 1
        return True

    def _freq_down(self, name: str) -> bool:
        c = self.view.container(name)
        new = c.dvfs.step_down(c.frequency)
        if new == c.frequency:
            return False
        self.view.set_frequency(name, new)
        self.stats.freq_down_actions += 1
        return True

    # -------------------------------------------------------------- decision
    def decide(self) -> None:
        """One full decision cycle (public for tests and ablations)."""
        cfg = self.config
        self.stats.decision_cycles += 1
        names = self.view.container_names
        windows = {n: self.view.runtime(n).collect() for n in names}
        if self.window_hook is not None:
            for n in names:
                self.window_hook(n, windows[n])

        # Frequency normalization: Escalator synchronizes state with
        # FirstResponder through shFreq (Fig. 7 step ⑥), so it knows what
        # frequency each container actually ran at during the window.
        # Observed execMetrics are scaled back to the base frequency
        # before any comfort / sensitivity judgement — otherwise a
        # fast-path boost masquerades as headroom and cores get stripped
        # mid-boost.  The *window-mean* frequency is used (not the
        # instantaneous one): a boost decaying mid-window must still be
        # normalized away.
        f_min = self.view.node.dvfs.f_min
        dt = self.sim.now - self._last_decide_t
        self._last_decide_t = self.sim.now
        norm: Dict[str, float] = {}
        avg_busy: Dict[str, float] = {}
        for n in names:
            c = self.view.container(n)
            c.sync()
            # .get with a current-value default: a container that appeared
            # mid-run (a scaled-out replica) starts from a zero delta.
            prev = self._freq_integral.get(n, c.freq_seconds)
            self._freq_integral[n] = c.freq_seconds
            prev_busy = self._busy_integral.get(n, c.busy_core_seconds)
            self._busy_integral[n] = c.busy_core_seconds
            if dt > 0:
                mean_f = (c.freq_seconds - prev) / dt
                avg_busy[n] = (c.busy_core_seconds - prev_busy) / dt
            else:
                mean_f = c.frequency
                avg_busy[n] = 0.0
            norm[n] = max(mean_f, f_min) / f_min
        eff_metric = {
            n: windows[n].avg_exec_metric * norm[n] for n in names
        }

        # 1. Sensitivity bookkeeping at the current allocations.
        if cfg.use_sensitivity:
            for n in names:
                w = windows[n]
                if w.count > 0:
                    self.sensitivity.observe(
                        n, self.view.container(n).cores, eff_metric[n]
                    )

        # 2. Table II scoring.
        scores: Dict[str, int] = {n: 0 for n in names}
        for n in names:
            # Dividing the target by the frequency ratio is equivalent to
            # frequency-normalizing the observation (see above).
            cs = score_container(
                n,
                windows[n],
                self.targets.expected_exec_metric[n] / norm[n],
                self.targets.expected_exec_time[n] / norm[n],
                cfg,
            )
            scores[n] += cs.self_score
            if cs.marks_downstream and cfg.use_new_metrics:
                self.view.runtime(n).stamp_upscale(
                    cfg.upscale_ttl, cfg.stamp_duration
                )
                for d in self.view.local_downstream(n):
                    scores[d] += 1
        self.last_scores = dict(scores)

        # Verify the previous cycle's Parties-style core reclaim: if the
        # container turned into a candidate (or blew through its exec
        # envelope), give the core back and back off.
        if self._pending_downscale is not None:
            n = self._pending_downscale
            self._pending_downscale = None
            # The container may have left this node between cycles (a
            # reaped replica) — drop the pending verify in that case.
            if n in windows:
                regretted = scores.get(n, 0) > 0 or (
                    windows[n].count > 0
                    and eff_metric[n]
                    > cfg.exec_th * self.targets.expected_exec_metric[n]
                )
                if regretted:
                    self._grant_core(n)
                    self._cooldown[n] = self.downscale_cooldown_cycles
        for n in list(self._cooldown):
            self._cooldown[n] -= 1
            if self._cooldown[n] <= 0:
                del self._cooldown[n]

        # 3. Upscale candidates: score desc, then sensitivity desc.
        candidates = [n for n in names if scores[n] > 0]
        if cfg.use_sensitivity:
            candidates.sort(
                key=lambda n: (
                    scores[n],
                    self.sensitivity.upscale_priority(
                        n, self.view.container(n).cores
                    ),
                ),
                reverse=True,
            )
        else:
            candidates.sort(key=lambda n: scores[n], reverse=True)
        for n in candidates:
            self._comfort_streak[n] = 0
            # A grant is only useful if the candidate is actually using
            # the cores it already has (blocked-on-pool time does not
            # occupy a core, and a saturated container runs busy ≈ cores).
            # Granting below that line is pure waste — the over-allocation
            # the paper's Fig. 13 faults the baselines for.
            c = self.view.container(n)
            if avg_busy[n] < 0.8 * c.cores:
                continue
            granted = 0.0
            while granted + 1e-9 < cfg.grant_per_cycle:
                if not self._grant_core(n):
                    break
                granted += cfg.core_step
            if granted == 0.0:
                # No spare cores on this node: frequency is the lever
                # that needs no budget.
                self._freq_up(n)

        # 4a. Parties-style downscale of score-0 containers (hysteretic).
        # Frequency is per-container (no shared budget), so every
        # comfortable container steps its frequency down each cycle —
        # this unwinds FirstResponder boosts promptly once a surge ends.
        # Core reclamation is one-container-per-cycle with long
        # hysteresis and next-cycle verification: sustained comfort (a
        # full second of windows below half the profiled envelope) frees
        # a core back to the node pool, and a reclaim that provokes a
        # violation is reverted and the container blacklisted a while.
        zero = [n for n in names if scores[n] == 0 and n not in self._cooldown]
        core_candidates: List[str] = []
        for n in zero:
            w = windows[n]
            target = self.targets.expected_exec_metric[n]
            is_comfort = w.count == 0 or (
                eff_metric[n] < cfg.comfort_ratio * target
                and w.queue_buildup <= cfg.queue_th
            )
            if is_comfort:
                self._comfort_streak[n] = self._comfort_streak.get(n, 0) + 1
                self._freq_down(n)
                if self._comfort_streak[n] >= cfg.downscale_patience:
                    core_candidates.append(n)
            else:
                self._comfort_streak[n] = 0
        if core_candidates:
            pick = max(core_candidates, key=lambda n: self._comfort_streak[n])
            if self._revoke_core(pick):
                self._pending_downscale = pick
            self._comfort_streak[pick] = 0

        # 4b. Sensitivity-based revocation — applies to *any* container
        # whose last core demonstrably buys nothing (Design Feature #3).
        if cfg.use_sensitivity:
            for n in names:
                c = self.view.container(n)
                if self.sensitivity.should_revoke(
                    n, c.cores, cfg.sens_revoke_th
                ):
                    self._revoke_core(n)
