"""FirstResponder — SurgeGuard's kernel-module fast path (§IV-A).

The real FirstResponder hooks ``netif_receive_skb`` and, per packet:

1. reads the ``startTime`` metadata field,
2. computes per-packet slack (Eq. 4–5):
   ``slack = expectedTimeFromStart − (currentTime − pkt.startTime)``,
3. on negative slack, enqueues a frequency-update work item; a worker
   thread off the critical path pops it and writes the MSRs, raising
   the frequency of the violating container and its same-node
   downstream containers.

The simulation analogue attaches to the node's RX hook list (run for
every packet delivered to a container on the node, before the container
sees it) with the measured 0.26 µs primary-thread cost added to packet
latency; the 0.44 µs enqueue + 2.1 µs MSR write appear as a delay
between detection and the frequency actually changing (coordinator–
worker design, Fig. 9).

**Mitigating frequent updates**: per-packet slack is noisy, so once a
path is boosted its frequency is frozen for a hold window of about 2×
the end-to-end request latency (§IV-A) — implemented as a per-container
``hold_until`` timestamp checked before boosting.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import Simulator
from repro.cluster.cluster import NodeView
from repro.cluster.packet import REQUEST, RpcPacket
from repro.controllers.base import ControllerStats
from repro.controllers.targets import TargetConfig
from repro.core.config import SurgeGuardConfig

__all__ = ["FirstResponder"]


class FirstResponder:
    """Per-node per-packet slack tracker and frequency booster.

    Parameters mirror :class:`~repro.core.escalator.Escalator`.
    """

    def __init__(
        self,
        sim: Simulator,
        view: NodeView,
        config: SurgeGuardConfig,
        targets: TargetConfig,
        stats: Optional[ControllerStats] = None,
    ):
        self.sim = sim
        self.view = view
        self.config = config
        self.targets = targets
        self.stats = stats if stats is not None else ControllerStats()
        self._hold_until: Dict[str, float] = {}
        self._installed = False
        #: Last time each container's boost was applied by the worker —
        #: diagnostics plus the validate layer's boost-revert invariant.
        self.last_boost_time: Dict[str, float] = {}
        # Observable fast-path counters (§VI-D overhead analysis).
        self.packets_inspected = 0
        self.violations_detected = 0
        self.boosts_applied = 0
        self.boosts_suppressed = 0

    # -------------------------------------------------------------- lifecycle
    def install(self) -> None:
        """Attach the RX hook on this node (idempotent guard)."""
        if self._installed:
            raise RuntimeError("FirstResponder already installed")
        self.view.add_rx_hook(self.on_packet, cost=self.config.hook_cost)
        self._installed = True

    @property
    def hold_window(self) -> float:
        """Frequency freeze duration (~2× end-to-end latency, §IV-A)."""
        return self.config.hold_factor * self.targets.qos_target

    # --------------------------------------------------------------- hot path
    def on_packet(self, pkt: RpcPacket) -> None:
        """The primary-thread hook: slack check, maybe enqueue a boost.

        Only request packets are progress-checked: a request arriving at
        a container is the moment its ``expectedTimeFromStart`` target
        applies (responses travelling upstream carry no per-container
        progress target).
        """
        self.packets_inspected += 1
        if pkt.kind != REQUEST:
            return
        target = self.targets.expected_time_from_start.get(pkt.dst)
        if target is None:
            return
        observed = self.sim.now - pkt.start_time
        slack = target - observed
        if slack >= 0:
            return
        self.violations_detected += 1
        if self.sim.now < self._hold_until.get(pkt.dst, -1.0):
            self.boosts_suppressed += 1
            return
        # Freeze the path immediately (the decision is made on the
        # critical path; only the MSR write is deferred to the worker).
        containers = [pkt.dst] + self.view.local_downstream(pkt.dst)
        hold = self.sim.now + self.hold_window
        for name in containers:
            self._hold_until[name] = hold
        delay = self.config.enqueue_cost + self.config.msr_cost
        self.sim.schedule(delay, self._apply_boost, tuple(containers))

    # ------------------------------------------------------------ worker path
    def _apply_boost(self, containers: tuple) -> None:
        """Worker thread: write the MSRs (frequency → max) and publish
        the new frequencies to the Escalator-shared region (shFreq)."""
        f_max = self.view.node.dvfs.f_max
        now = self.sim.now
        local = self.view.node.containers
        for name in containers:
            if name not in local:
                continue  # replica reaped between enqueue and MSR write
            self.last_boost_time[name] = now
            c = self.view.container(name)
            if c.frequency < f_max:
                self.view.set_frequency(name, f_max)
                self.stats.freq_up_actions += 1
        self.boosts_applied += 1
