"""Upscaling-candidate selection — Table II of the paper.

Escalator checks three conditions per container each decision cycle:

1. an incoming ``pkt.upscale`` hint was received (an *upstream*
   container saw queue buildup and this container is within the hint's
   TTL reach) → **this container** is a candidate;
2. this container's window ``queueBuildup`` exceeds ``QUEUE_TH`` →
   **downstream containers** are candidates (and outgoing packets are
   stamped so remote downstream containers learn of it);
3. ``execMetric / expectedExecMetric`` exceeds ``EXEC_TH`` → **this
   container** is a candidate.

Each satisfied condition adds 1 to the relevant candidates' scores, so
containers implicated by more evidence sort first.  Scoring is a pure
function of one container's window + targets — no global state — which
is what keeps Escalator decentralized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.runtime import RuntimeWindow
from repro.core.config import SurgeGuardConfig

__all__ = ["UPSCALE_RULES", "ContainerScore", "score_container"]

#: Table II, verbatim: detected condition → upscaling candidates.
UPSCALE_RULES: Mapping[str, str] = {
    "pkt.upscale > 0": "container c",
    "queueBuildup violation": "downstream containers, set pkt.upscale",
    "execMetric violation": "container c",
}


@dataclass(frozen=True)
class ContainerScore:
    """Outcome of the three Table II checks for one container."""

    name: str
    #: Condition 1: incoming hint seen this window.
    hint: bool
    #: Condition 2: local queueBuildup over QUEUE_TH.
    queue_violation: bool
    #: Condition 3: execMetric over the profiled envelope.
    exec_violation: bool

    @property
    def self_score(self) -> int:
        """Score accrued by the container itself (conditions 1 and 3;
        condition 2 scores the *downstream* containers instead)."""
        return int(self.hint) + int(self.exec_violation)

    @property
    def marks_downstream(self) -> bool:
        """True when downstream containers must be scored + stamped."""
        return self.queue_violation

    @property
    def any(self) -> bool:
        return self.hint or self.queue_violation or self.exec_violation


def score_container(
    name: str,
    window: RuntimeWindow,
    expected_exec_metric: float,
    expected_exec_time: float,
    config: SurgeGuardConfig,
) -> ContainerScore:
    """Evaluate the Table II conditions on one runtime window.

    With ``config.use_new_metrics`` disabled (the Fig. 15 ablation), the
    controller degrades to the dependence-blind check the baselines use:
    raw execTime against its profiled envelope, no hints, no queue
    metric.
    """
    if window.count == 0:
        return ContainerScore(name, False, False, False)
    if not config.use_new_metrics:
        violated = window.avg_exec_time / expected_exec_time > config.exec_th
        return ContainerScore(name, False, False, violated)
    hint = window.upscale_hints > 0
    queue_violation = window.queue_buildup > config.queue_th
    exec_violation = (
        window.avg_exec_metric / expected_exec_metric > config.exec_th
    )
    return ContainerScore(name, hint, queue_violation, exec_violation)
