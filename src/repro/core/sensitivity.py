"""Online resource-sensitivity profiling (Design Feature #3, §III-C).

The paper keeps, per container, an exponential running average of the
observed execution metric at every core allocation it has been observed
under::

    execAvg[container][#cores] = α · execAvg[container][#cores]
                                + (1 − α) · newObservedTime[container]

(The paper's formula weights the *old* value by α with α = 0.5 and calls
this "weighting newer execution times quite heavily"; at α = 0.5 the two
readings are identical, and we follow the formula as written.)

Sensitivity is the fractional latency reduction from one more core::

    sens[container][#cores] = 1 − execAvg[container][#cores + 1]
                                / execAvg[container][#cores]

used in two places: *preferential upscaling* (among equal-score
candidates, feed the most core-sensitive first) and *revocation* (take a
core back when ``sens[container][#cores − 1] < 0.02`` — the allocation's
last core isn't pulling its weight, Fig. 6 right).

Core counts are fractional (0.5 granularity), so the matrix is indexed
by half-core buckets; "one more core" means one :attr:`step` up.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

__all__ = ["SensitivityTracker"]


class SensitivityTracker:
    """The execAvg matrix plus derived sensitivities for one node.

    Parameters
    ----------
    alpha:
        EWMA weight on the previous average (paper: 0.5).
    step:
        Core quantum the matrix is indexed by (0.5 = hyperthread).
    max_cores:
        Largest representable allocation (the node's core budget).
    optimistic_sens:
        Sensitivity assumed for (container, cores) pairs never observed —
        optimistic so unexplored allocations get tried (exploration),
        but below 1.0 so known-high-sensitivity containers still win.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.5,
        step: float = 0.5,
        max_cores: float = 64.0,
        optimistic_sens: float = 0.5,
    ):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if step <= 0 or max_cores <= 0:
            raise ValueError("step and max_cores must be positive")
        self.alpha = alpha
        self.step = step
        self.n_buckets = int(round(max_cores / step)) + 2
        self.optimistic_sens = optimistic_sens
        self._exec_avg: Dict[str, np.ndarray] = {}
        self.updates = 0

    # ------------------------------------------------------------- indexing
    def _bucket(self, cores: float) -> int:
        idx = int(round(cores / self.step))
        if idx < 0 or idx >= self.n_buckets:
            raise ValueError(f"allocation {cores} outside tracked range")
        return idx

    def _row(self, container: str) -> np.ndarray:
        row = self._exec_avg.get(container)
        if row is None:
            row = np.full(self.n_buckets, np.nan)
            self._exec_avg[container] = row
        return row

    # -------------------------------------------------------------- updates
    def observe(self, container: str, cores: float, exec_metric: float) -> None:
        """Fold one window's observed execMetric at the given allocation."""
        if exec_metric <= 0:
            return  # empty/degenerate window carries no information
        row = self._row(container)
        b = self._bucket(cores)
        if math.isnan(row[b]):
            row[b] = exec_metric
        else:
            row[b] = self.alpha * row[b] + (1.0 - self.alpha) * exec_metric
        self.updates += 1

    def exec_avg(self, container: str, cores: float) -> Optional[float]:
        """Stored average execMetric at ``cores``; ``None`` if unobserved."""
        row = self._exec_avg.get(container)
        if row is None:
            return None
        v = row[self._bucket(cores)]
        return None if math.isnan(v) else float(v)

    # --------------------------------------------------------- sensitivities
    def sensitivity(self, container: str, cores: float) -> Optional[float]:
        """``sens[container][cores]`` — benefit of one more :attr:`step`.

        Returns ``None`` when either side of the ratio is unobserved.
        Values are clipped to [0, 1]: an apparent slowdown from an extra
        core (measurement noise / load drift) reads as zero benefit.
        """
        here = self.exec_avg(container, cores)
        up_bucket = self._bucket(cores) + 1
        if up_bucket >= self.n_buckets:
            return 0.0
        row = self._exec_avg.get(container)
        if row is None or here is None or math.isnan(row[up_bucket]) or here <= 0:
            return None
        return float(np.clip(1.0 - row[up_bucket] / here, 0.0, 1.0))

    def upscale_priority(self, container: str, cores: float) -> float:
        """Sensitivity used for candidate ordering (optimistic default)."""
        s = self.sensitivity(container, cores)
        return self.optimistic_sens if s is None else s

    def should_revoke(self, container: str, cores: float, threshold: float) -> bool:
        """True when the last :attr:`step` of the allocation is near-useless.

        Implements the paper's revocation test
        ``sens[container][#cores − 1] < threshold``; unknown sensitivity
        never triggers revocation (we only take back cores we have
        *evidence* are idle — conservative by design).
        """
        if cores <= self.step:
            return False
        s = self.sensitivity(container, cores - self.step)
        return s is not None and s < threshold

    def forget(self, container: str) -> None:
        """Drop all learned state for ``container`` (crash/restart).

        The paper's sensitivity curves are per-*process* observations; a
        restarted container starts cold and must be re-learned rather
        than judged on averages from the dead process.  No-op for
        containers never observed.
        """
        self._exec_avg.pop(container, None)

    def nonfinite_entries(self) -> list:
        """(container, cores, value) triples whose stored EWMA is not finite.

        NaN marks *unobserved* buckets and is expected; an observed
        bucket must hold a finite positive average.  ``inf`` or a
        non-positive value means an update corrupted the matrix — the
        sanity invariant :mod:`repro.validate` checks after every run.
        """
        bad = []
        for container, row in self._exec_avg.items():
            for b in range(self.n_buckets):
                v = row[b]
                if math.isnan(v):
                    continue
                if not math.isfinite(v) or v <= 0:
                    bad.append((container, b * self.step, float(v)))
        return bad

    def known_allocations(self, container: str) -> int:
        """Number of distinct allocations observed for ``container``."""
        row = self._exec_avg.get(container)
        return 0 if row is None else int(np.sum(~np.isnan(row)))
