"""SurgeGuardController — one Escalator + FirstResponder per node.

The assembly is where the decentralization claim becomes structural:
``_on_attach`` iterates the cluster's :class:`NodeView` objects and hands
each sub-unit *only* its node's view.  Nothing in :mod:`repro.core`
imports or receives a global cluster handle (a test greps the call
graph to keep it that way), matching Fig. 1 — "each node contains one
instance of SurgeGuard managing resources for the containers on that
node".

Ablation arms (Fig. 15) are expressed through
:class:`~repro.core.config.SurgeGuardConfig`:

* ``firstresponder=False`` → Escalator-only (the Fig. 10 comparison);
* ``use_new_metrics=False`` → "Parties + sensitivity" arm;
* ``use_sensitivity=False`` → "Parties + new metrics" arm;
* both False → the Parties-equivalent base allocator.
"""

from __future__ import annotations

from typing import List, Optional

from repro.controllers.base import Controller
from repro.core.config import SurgeGuardConfig
from repro.core.escalator import Escalator
from repro.core.firstresponder import FirstResponder

__all__ = ["SurgeGuardController"]


class SurgeGuardController(Controller):
    """The complete SurgeGuard resource controller."""

    name = "surgeguard"
    #: Strictly per-node by design (one Escalator/FirstResponder pair per
    #: NodeView, no cross-node reads), so restricting node_views to a
    #: shard's nodes shards the controller itself.
    shardable = True

    def __init__(self, config: Optional[SurgeGuardConfig] = None):
        super().__init__()
        self.config = config or SurgeGuardConfig()
        self.escalators: List[Escalator] = []
        self.firstresponders: List[FirstResponder] = []

    def _on_attach(self) -> None:
        assert self.sim is not None and self.cluster is not None
        assert self.targets is not None
        for view in self.cluster.node_views:
            self.escalators.append(
                Escalator(self.sim, view, self.config, self.targets, self.stats)
            )
            if self.config.firstresponder:
                fr = FirstResponder(
                    self.sim, view, self.config, self.targets, self.stats
                )
                self.firstresponders.append(fr)

    def _on_start(self) -> None:
        for fr in self.firstresponders:
            fr.install()
        for esc in self.escalators:
            esc.start()

    def _on_stop(self) -> None:
        for esc in self.escalators:
            esc.stop()

    # ------------------------------------------------------------ diagnostics
    @property
    def packets_inspected(self) -> int:
        """Total FirstResponder packet inspections across nodes."""
        return sum(fr.packets_inspected for fr in self.firstresponders)

    @property
    def fast_path_violations(self) -> int:
        """Total per-packet slack violations detected."""
        return sum(fr.violations_detected for fr in self.firstresponders)

    @property
    def boosts_applied(self) -> int:
        """Total frequency boosts performed by the fast path."""
        return sum(fr.boosts_applied for fr in self.firstresponders)
