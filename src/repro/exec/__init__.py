"""Parallel experiment execution: controller specs, process-pool fan-out,
and the machine-tracked performance benchmark.

* :mod:`repro.exec.specs` — named, picklable controller recipes that
  replace closure factories in :class:`ExperimentConfig`;
* :mod:`repro.exec.pool` — repetition fan-out across a
  ``ProcessPoolExecutor``, bit-identical to serial execution;
* :mod:`repro.exec.bench` — engine events/sec + standard-cell timing,
  written to ``BENCH_exec.json`` so the perf trajectory is tracked.
"""

from repro.exec.specs import ControllerSpec, available_specs, register_controller, spec

__all__ = [
    "ControllerSpec",
    "available_specs",
    "register_controller",
    "spec",
]
