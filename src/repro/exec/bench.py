"""Machine-tracked performance benchmark → ``BENCH_exec.json``.

Three measurements, deliberately simple so their trajectory is
comparable across PRs (report ``schema: 2``):

* **engine** — raw event-loop throughput (events/second) on a synthetic
  workload of self-rescheduling timers plus cancel churn, exercising the
  heap's lazy-deletion path the way ``Container`` does;
* **packet_path** — packets/second through the real delivery path
  (``Network.send`` → ``_deliver`` with FirstResponder's RX hook
  installed and a per-packet slack check running), i.e. the per-RPC-hop
  cost every simulated request pays several times over;
* **cell** — wall-clock seconds for one standard experiment cell
  (CHAIN × 1.75× surges × SurgeGuard), i.e. the unit of work the
  repetition protocol fans out.

Run ``python -m repro.exec.bench`` from the repo root; it writes
``BENCH_exec.json`` there (override with ``--out``).  CI runs the smoke
variant (``tests/exec/test_bench.py``) which asserts conservative
events/second and packets/second floors so catastrophic regressions
fail the build.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Iterable, Optional

from repro.sim.engine import Simulator

__all__ = [
    "bench_cell",
    "bench_engine",
    "bench_packet_path",
    "main",
    "run_benchmarks",
]

#: Default synthetic event count for the engine measurement.
DEFAULT_EVENTS = 300_000

#: Default packet count for the packet-path measurement.
DEFAULT_PACKETS = 100_000

#: Conservative floor asserted by the CI smoke test (events/second).
#: The engine sustains well over 10× this on an idle core; dipping under
#: the floor means the event loop itself regressed catastrophically.
ENGINE_FLOOR_EPS = 25_000.0

#: Conservative packets/second floor for the packet-path smoke test.
#: The fast lane sustains well over 10× this on an idle core.
PACKET_FLOOR_PPS = 15_000.0


def bench_engine(n_events: int = DEFAULT_EVENTS, fanout: int = 64) -> dict:
    """Measure event-loop throughput on a synthetic timer workload.

    ``fanout`` timers each reschedule themselves on a fixed small delay;
    every firing also schedules a decoy event and cancels the previous
    decoy, so roughly half of all heap entries are lazily cancelled —
    the same churn profile ``Container`` rescheduling produces.
    """
    if n_events < 1:
        raise ValueError("n_events must be >= 1")
    sim = Simulator()
    decoys = [None] * fanout

    def tick(slot: int, delay: float) -> None:
        old = decoys[slot]
        if old is not None:
            old.cancel()
        decoys[slot] = sim.schedule(delay * 7.0, _noop)
        sim.schedule(delay, tick, slot, delay)

    for i in range(fanout):
        sim.schedule(0.0, tick, i, 1e-4 * (1 + i % 7))

    t0 = time.perf_counter()
    sim.run(max_events=n_events)
    dt = time.perf_counter() - t0
    fired = sim.events_fired
    return {
        "events": fired,
        "seconds": dt,
        "events_per_sec": fired / dt if dt > 0 else float("inf"),
        "pending_at_end": sim.events_pending,
    }


def _noop() -> None:
    pass


def bench_packet_path(n_packets: int = DEFAULT_PACKETS) -> dict:
    """Measure packets/second through ``Network.send`` → ``_deliver``.

    A real single-node CHAIN cluster is assembled and a FirstResponder
    is installed on its node, so every delivery pays the authentic RX
    path: route resolution, jitter draw, surge lookup, hook overhead,
    the slack check, and handler dispatch.  Packets ping-pong through a
    sink endpoint whose progress target is generous enough that no boost
    ever fires — this times the steady-state fast path, not the (rare)
    violation path.
    """
    if n_packets < 1:
        raise ValueError("n_packets must be >= 1")
    from repro.cluster.cluster import Cluster, ClusterConfig
    from repro.cluster.packet import REQUEST, RpcPacket
    from repro.controllers.targets import TargetConfig
    from repro.core.config import SurgeGuardConfig
    from repro.core.firstresponder import FirstResponder
    from repro.services.registry import get_workload
    from repro.sim.rng import RngRegistry

    sim = Simulator()
    cluster = Cluster(
        sim, get_workload("chain").build(), ClusterConfig(n_nodes=1), RngRegistry(1)
    )
    sink_name = "bench_sink"
    names = list(cluster.containers) + [sink_name]
    targets = TargetConfig(
        expected_exec_metric={n: 1.0 for n in names},
        expected_exec_time={n: 1.0 for n in names},
        expected_time_from_start={n: 1.0 for n in names},
        qos_target=0.05,
    )
    responder = FirstResponder(
        sim, cluster.node_views[0], SurgeGuardConfig(), targets
    )
    responder.install()

    net = cluster.network
    delivered = 0

    def fire() -> None:
        net.send(
            RpcPacket(
                request_id=delivered,
                kind=REQUEST,
                src="client",
                dst=sink_name,
                start_time=sim.now,
            )
        )

    def sink(_pkt) -> None:
        nonlocal delivered
        delivered += 1
        if delivered < n_packets:
            fire()

    net.register(sink_name, cluster.nodes[0], sink)

    fire()
    t0 = time.perf_counter()
    sim.run()
    dt = time.perf_counter() - t0
    return {
        "packets": delivered,
        "seconds": dt,
        "packets_per_sec": delivered / dt if dt > 0 else float("inf"),
        "hook_inspected": responder.packets_inspected,
    }


def bench_cell(
    *, reps: int = 1, jobs: int = 1, workload: str = "chain"
) -> dict:
    """Time one standard experiment cell (profiling pass included)."""
    from repro.analysis.aggregate import run_cell
    from repro.exec.specs import spec
    from repro.experiments.harness import ExperimentConfig, clear_profile_cache

    cfg = ExperimentConfig(
        workload=workload,
        controller_factory=spec("surgeguard"),
        spike_magnitude=1.75,
        spike_len=1.0,
        spike_period=5.0,
        duration=6.0,
        warmup=2.0,
        profile_duration=2.0,
        seed=1,
    )
    clear_profile_cache()  # cold, comparable across runs
    t0 = time.perf_counter()
    cell = run_cell(cfg, reps=reps, jobs=jobs)
    dt = time.perf_counter() - t0
    return {
        "workload": workload,
        "controller": cell.controller,
        "reps": reps,
        "jobs": jobs,
        "seconds": dt,
        "seconds_per_rep": dt / reps,
        "violation_volume": cell.violation_volume,
    }


def run_benchmarks(
    *,
    n_events: int = DEFAULT_EVENTS,
    n_packets: int = DEFAULT_PACKETS,
    reps: int = 1,
    jobs: int = 1,
    skip_cell: bool = False,
) -> dict:
    """Run all measurements and return the report dict (schema 2)."""
    report = {
        "schema": 2,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "engine": bench_engine(n_events),
        "packet_path": bench_packet_path(n_packets),
    }
    if not skip_cell:
        report["cell"] = bench_cell(reps=reps, jobs=jobs)
    return report


def main(argv: Optional[Iterable[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.bench",
        description="Benchmark the engine + a standard cell; write BENCH_exec.json.",
    )
    parser.add_argument(
        "--events", type=int, default=DEFAULT_EVENTS,
        help=f"synthetic engine events (default {DEFAULT_EVENTS})",
    )
    parser.add_argument(
        "--packets", type=int, default=DEFAULT_PACKETS,
        help=f"packet-path packets (default {DEFAULT_PACKETS})",
    )
    parser.add_argument(
        "--reps", type=int, default=1, help="cell repetitions (default 1)"
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the cell reps (default 1)",
    )
    parser.add_argument(
        "--skip-cell", action="store_true", help="engine measurement only"
    )
    parser.add_argument(
        "--out", default="BENCH_exec.json",
        help="output path (default: BENCH_exec.json in the current directory)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    report = run_benchmarks(
        n_events=args.events,
        n_packets=args.packets,
        reps=args.reps,
        jobs=args.jobs,
        skip_cell=args.skip_cell,
    )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    eng = report["engine"]
    print(f"engine: {eng['events']} events in {eng['seconds']:.3f}s "
          f"= {eng['events_per_sec']:,.0f} ev/s")
    pkt = report["packet_path"]
    print(f"packet: {pkt['packets']} packets in {pkt['seconds']:.3f}s "
          f"= {pkt['packets_per_sec']:,.0f} pkt/s")
    cell = report.get("cell")
    if cell:
        print(f"cell:   {cell['workload']}×{cell['controller']} "
              f"reps={cell['reps']} jobs={cell['jobs']} "
              f"→ {cell['seconds']:.2f}s ({cell['seconds_per_rep']:.2f}s/rep)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
