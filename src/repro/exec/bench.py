"""Machine-tracked performance benchmark → ``BENCH_exec.json``.

Nine measurements, deliberately simple so their trajectory is
comparable across PRs (report ``schema: 6``):

* **engine** — raw event-loop throughput (events/second) on a synthetic
  workload of self-rescheduling timers plus cancel churn, exercising the
  heap's lazy-deletion path the way ``Container`` does;
* **engine_density** (schema 4) — the heap vs calendar-queue scheduler
  head-to-head at three pending-event densities (the regime where the
  heap's O(log n) Python-level comparisons bite), reported as
  events/second per scheduler plus the ``calendar`` speedup factor;
* **arrival_gen** (schema 4) — arrival-timestamp generation throughput,
  scalar ``RateSchedule.advance`` loop vs the vectorized
  :meth:`RateSchedule.advance_batch` over the same spiky schedule;
* **users** (schema 4) — the headline ``users_per_wall_second`` row:
  open-loop end-to-end requests simulated per wall-clock second on the
  standard chain cell, under the fastest engine configuration
  (calendar scheduler + chunked arrivals) with the heap/scalar baseline
  alongside;
* **packet_path** — packets/second through the real delivery path
  (``Network.send`` → ``_deliver`` with FirstResponder's RX hook
  installed and a per-packet slack check running), i.e. the per-RPC-hop
  cost every simulated request pays several times over.  Packets follow
  the production ownership discipline (pool acquire at injection,
  release at the serving endpoint), so the row reflects whatever
  recycling mode the process runs under;
* **lb_dispatch** (schema 5) — load-balancer routing decisions per
  second through :meth:`~repro.cluster.loadbalancer.ReplicaSet.resolve`
  for each registered policy over a 4-replica pool — the per-REQUEST
  cost every replicated hop pays at the top of ``Network.send``;
* **memory** (schema 3) — the allocation/GC profile of that same packet
  workload, measured twice (recycling on and off, in one process):
  per-generation GC collection deltas, ``tracemalloc`` peak, and
  steady-state *object churn per 100k packets* — fresh ``RpcPacket`` +
  ``EventHandle`` constructions counted by the pools themselves, so the
  number is deterministic (no timing noise) and CI-gateable;
* **sharded** (schema 6) — the partitioned-simulation headline: one
  large multi-node cell (a 16-stage pipeline on 8 nodes) run serially
  and again split across 4 shards (:mod:`repro.exec.sharded`), reported
  as ``sharded_speedup`` with an explicit ``speedup_basis``.  On hosts
  with at least as many CPUs as shards the basis is ``wall`` (real
  processes, wall-clock ratio); on smaller hosts real parallel wall
  time is unmeasurable, so the basis is ``critical_path`` — the
  per-barrier-window CPU maxima summed over the run (the lockstep
  in-process driver), i.e. the time an adequately-provisioned host
  would take — divided into the serial CPU time;
* **cell** — wall-clock seconds for one standard experiment cell
  (CHAIN × 1.75× surges × SurgeGuard), i.e. the unit of work the
  repetition protocol fans out.

Throughput rows accept ``--best-of N``: single-shot rates on a shared
host swing ±25% run-to-run (the schema-3 → schema-5 engine-row "drop"
from ~185k to ~127k ev/s reproduces as exactly this noise on identical
code), so the committed report takes the best of a few repeats and
records the repeat count alongside the rate.

Run ``python -m repro.exec.bench`` from the repo root; it writes
``BENCH_exec.json`` there (override with ``--out``).  Pass ``--append``
to fold the previous report into a per-commit ``history`` list (capped
at the last :data:`HISTORY_MAX` entries) instead of overwriting it.  CI
runs the smoke variant (``tests/exec/test_bench.py``) which asserts
conservative events/second, packets/second, calendar-speedup, and
users/second floors plus the schema-3 allocation ceilings so
catastrophic regressions fail the build.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import os
import platform
import sys
import time
import tracemalloc
from typing import Iterable, Iterator, Optional

from repro.sim.engine import Simulator

__all__ = [
    "append_history",
    "bench_arrival_gen",
    "bench_cell",
    "bench_engine",
    "bench_engine_density",
    "bench_lb_dispatch",
    "bench_memory",
    "bench_packet_path",
    "bench_sharded",
    "bench_users",
    "main",
    "run_benchmarks",
]

#: Default synthetic event count for the engine measurement.
DEFAULT_EVENTS = 300_000

#: Default packet count for the packet-path measurement.
DEFAULT_PACKETS = 100_000

#: Pending-event counts for the scheduler density sweep: the paper-scale
#: regime, the surge regime, and the million-user regime where heap
#: comparisons dominate.
DENSITY_REGIMES = (64, 4096, 131072)

#: Default fired events per scheduler per density regime.
DEFAULT_DENSITY_EVENTS = 200_000

#: Default timestamps for the arrival-generation measurement.
DEFAULT_ARRIVALS = 200_000

#: Default end-to-end requests for the users_per_wall_second row.
DEFAULT_USERS = 20_000

#: Conservative floor asserted by the CI smoke test (events/second).
#: Tightened from 40k after the PR-10 variance audit: same-code
#: single-shot rates on the dev host span 127k–171k ev/s, so even the
#: noisiest observation keeps >2× headroom over this floor.
ENGINE_FLOOR_EPS = 60_000.0

#: Floor on the calendar/heap speedup at the highest density regime.
#: The committed report shows ≥1.5× on an idle core; the CI floor backs
#: off to absorb shared-runner noise while still requiring that the
#: calendar queue *wins* where it is supposed to.
CALENDAR_SPEEDUP_FLOOR = 1.2

#: Floor on the headline users_per_wall_second row (end-to-end requests
#: simulated per wall-clock second; the dev-core number is >10k).
USERS_FLOOR_UPS = 2_000.0

#: Conservative packets/second floor for the packet-path smoke test.
#: Tightened from 25k in the PR-10 variance audit (same-code runs span
#: ~197k–292k pkt/s on the dev host; the floor keeps ~5× headroom under
#: the worst observation).
PACKET_FLOOR_PPS = 40_000.0

#: Floor on the sharded-simulation speedup (4 shards, 8-node cell).
#: The committed report shows >=2.0x; the CI floor backs off for
#: shared-runner noise while still requiring that partitioning *wins*.
SHARDED_SPEEDUP_FLOOR = 1.5

#: Sharded-bench cell shape: stages of the pipeline app, nodes, shards.
SHARDED_STAGES = 16
SHARDED_NODES = 8
SHARDED_SHARDS = 4

#: Default measurement duration (simulated seconds) of the sharded row.
DEFAULT_SHARDED_DURATION = 2.0

#: Default routing decisions per policy for the lb_dispatch measurement.
DEFAULT_LB_DISPATCHES = 200_000

#: Conservative floor on LB routing decisions/second (slowest policy).
#: An idle dev core resolves >1M/s round-robin and >400k/s consistent-
#: hash; the floor leaves shared CI runners an order of magnitude.
LB_DISPATCH_FLOOR = 100_000.0

#: ``--append`` history entries retained (newest last).
HISTORY_MAX = 20

#: Ceiling on pooled steady-state object churn per 100k packets.  With
#: recycling on, the packet rig constructs a handful of objects during
#: pool warm-up and then recirculates them, so steady state is ~0; the
#: ceiling only needs to sit far below the ~200k/100k-packets the
#: unpooled path constructs.
CHURN_CEILING_PER_100K = 2_000.0

#: Ceiling on gen-2 (full) GC collections during the pooled memory run.
#: Steady state allocates nothing, so the mature generation should not
#: churn at all; a couple are allowed for interpreter background noise.
GC_GEN2_CEILING = 2


def bench_engine(
    n_events: int = DEFAULT_EVENTS, fanout: int = 64, best_of: int = 1
) -> dict:
    """Measure event-loop throughput on a synthetic timer workload.

    ``fanout`` timers each reschedule themselves on a fixed small delay;
    every firing also schedules a decoy event and cancels the previous
    decoy, so roughly half of all heap entries are lazily cancelled —
    the same churn profile ``Container`` rescheduling produces.

    ``best_of`` repeats the measurement and keeps the fastest run:
    single-shot rates on a shared host swing ±25%, and the *best* run is
    the one least polluted by other tenants, i.e. closest to the code's
    actual cost.
    """
    if n_events < 1:
        raise ValueError("n_events must be >= 1")
    if best_of < 1:
        raise ValueError("best_of must be >= 1")
    best = None
    for _ in range(best_of):
        sim = Simulator()
        decoys = [None] * fanout

        def tick(slot: int, delay: float) -> None:
            old = decoys[slot]
            if old is not None:
                old.cancel()
            decoys[slot] = sim.schedule(delay * 7.0, _noop)
            sim.schedule(delay, tick, slot, delay)

        for i in range(fanout):
            sim.schedule(0.0, tick, i, 1e-4 * (1 + i % 7))

        t0 = time.perf_counter()
        sim.run(max_events=n_events)
        dt = time.perf_counter() - t0
        fired = sim.events_fired
        row = {
            "events": fired,
            "seconds": dt,
            "events_per_sec": fired / dt if dt > 0 else float("inf"),
            "pending_at_end": sim.events_pending,
            "repeats": best_of,
        }
        if best is None or row["events_per_sec"] > best["events_per_sec"]:
            best = row
    return best


def _noop() -> None:
    pass


@contextlib.contextmanager
def _sched_env(mode: str) -> Iterator[None]:
    """Temporarily force ``REPRO_SCHED`` for simulators built inside.

    The scheduler switch is read at ``Simulator`` construction time (see
    :mod:`repro.sim.calqueue`), so wrapping only the construction is
    enough to compare both schedulers in one process.
    """
    before = os.environ.get("REPRO_SCHED")
    os.environ["REPRO_SCHED"] = mode
    try:
        yield
    finally:
        if before is None:
            del os.environ["REPRO_SCHED"]
        else:
            os.environ["REPRO_SCHED"] = before


@contextlib.contextmanager
def _arrivals_env(mode: str) -> Iterator[None]:
    """Temporarily force ``REPRO_ARRIVALS`` for clients built inside."""
    before = os.environ.get("REPRO_ARRIVALS")
    os.environ["REPRO_ARRIVALS"] = mode
    try:
        yield
    finally:
        if before is None:
            del os.environ["REPRO_ARRIVALS"]
        else:
            os.environ["REPRO_ARRIVALS"] = before


def _density_rate(mode: str, pending: int, n_events: int) -> float:
    """Events/second for one scheduler at one steady pending density.

    ``pending`` self-rescheduling timers with smoothly-spread delays (a
    multiplicative-hash fraction, so the pending set has no artificial
    time lattice) tick forever; the measured segment fires ``n_events``.
    This isolates scheduler push/pop cost at a *stable* density — the
    regime the heap's O(log n) Python-level comparisons scale with and
    the calendar queue's O(1) arithmetic does not.
    """
    with _sched_env(mode):
        sim = Simulator()
    schedule = sim.schedule

    def tick(k: int) -> None:
        d = 1e-4 * (1.0 + 6.0 * ((k * 2654435761) % 1048576) / 1048576.0)
        schedule(d, tick, k + 1)

    for i in range(pending):
        d0 = 1e-4 * (1.0 + 6.0 * ((i * 2654435761) % 1048576) / 1048576.0)
        schedule(d0, tick, i * 7919)
    t0 = time.perf_counter()
    sim.run(max_events=n_events)
    dt = time.perf_counter() - t0
    return sim.events_fired / dt if dt > 0 else float("inf")


def bench_engine_density(
    n_events: int = DEFAULT_DENSITY_EVENTS,
    regimes: Iterable[int] = DENSITY_REGIMES,
) -> dict:
    """Heap vs calendar scheduler throughput across pending densities."""
    if n_events < 1:
        raise ValueError("n_events must be >= 1")
    rows = []
    for pending in regimes:
        heap_eps = _density_rate("heap", pending, n_events)
        cal_eps = _density_rate("calendar", pending, n_events)
        rows.append(
            {
                "pending": pending,
                "events": n_events,
                "heap_events_per_sec": heap_eps,
                "calendar_events_per_sec": cal_eps,
                "calendar_speedup": cal_eps / heap_eps,
            }
        )
    return {"regimes": rows, "high_density_speedup": rows[-1]["calendar_speedup"]}


def bench_arrival_gen(n_arrivals: int = DEFAULT_ARRIVALS) -> dict:
    """Arrival-timestamp generation: scalar ``advance`` loop vs batch.

    Both paths invert the same spiky schedule over the same Poisson unit
    draws; :meth:`RateSchedule.advance_batch` must produce bit-identical
    timestamps (asserted here — a benchmark that silently diverged from
    the scalar path would be measuring the wrong thing).
    """
    if n_arrivals < 1:
        raise ValueError("n_arrivals must be >= 1")
    import numpy as np

    from repro.workload.arrivals import RateSchedule

    # Spikes cover the whole horizon the arrivals can reach (~n/rate
    # seconds), so the batch path keeps paying segment-boundary splits.
    horizon = 2.0 * n_arrivals / 1000.0 + 10.0
    sched = RateSchedule.periodic(
        1000.0, magnitude=1.75, spike_len=1.0, period=5.0, first=2.0,
        until=horizon,
    )
    units = np.random.default_rng(7).exponential(1.0, size=n_arrivals)

    t0 = time.perf_counter()
    advance = sched.advance
    cur = 0.0
    scalar_times = []
    append = scalar_times.append
    for u in units.tolist():
        cur = advance(cur, u)
        append(cur)
    scalar_dt = time.perf_counter() - t0

    t0 = time.perf_counter()
    batch_times = sched.advance_batch(0.0, units)
    batch_dt = time.perf_counter() - t0

    if not np.array_equal(np.asarray(scalar_times), batch_times):
        raise AssertionError("advance_batch diverged from scalar advance")
    scalar_aps = n_arrivals / scalar_dt if scalar_dt > 0 else float("inf")
    batch_aps = n_arrivals / batch_dt if batch_dt > 0 else float("inf")
    return {
        "arrivals": n_arrivals,
        "scalar_arrivals_per_sec": scalar_aps,
        "batch_arrivals_per_sec": batch_aps,
        "batch_speedup": batch_aps / scalar_aps,
    }


def _users_rate(
    n_requests: int, *, sched_mode: str, arrivals_mode: str
) -> float:
    """End-to-end open-loop requests simulated per wall-clock second.

    The standard chain app under a steady rate sized so the cluster
    keeps up, driven through the full ingress → RPC-tree → completion
    path.  One configuration knob pair selects the engine tier.
    """
    from repro.cluster.cluster import Cluster, ClusterConfig
    from repro.services.registry import get_workload
    from repro.sim.rng import RngRegistry
    from repro.workload.arrivals import RateSchedule
    from repro.workload.generator import OpenLoopClient

    workload = get_workload("chain")
    with _sched_env(sched_mode):
        sim = Simulator()
    cluster = Cluster(
        sim, workload.build(), ClusterConfig(n_nodes=1), RngRegistry(3)
    )
    rate = workload.base_rate
    with _arrivals_env(arrivals_mode):
        client = OpenLoopClient(
            sim,
            cluster,
            RateSchedule(rate),
            duration=n_requests / rate,
            pacing="poisson",
            rng=RngRegistry(11).stream("client"),
        )
    client.begin()
    t0 = time.perf_counter()
    sim.run(until=n_requests / rate + 1.0)
    dt = time.perf_counter() - t0
    return client.stats.sent / dt if dt > 0 else float("inf")


def bench_users(n_requests: int = DEFAULT_USERS) -> dict:
    """The headline row: open-loop users simulated per wall second."""
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    baseline = _users_rate(n_requests, sched_mode="heap", arrivals_mode="scalar")
    fast = _users_rate(n_requests, sched_mode="calendar", arrivals_mode="chunked")
    return {
        "requests": n_requests,
        "baseline_users_per_wall_second": baseline,
        "users_per_wall_second": fast,
        "speedup": fast / baseline,
    }


@contextlib.contextmanager
def _pool_env(pooled: bool) -> Iterator[None]:
    """Temporarily force ``REPRO_POOL`` for objects *constructed* inside.

    The recycling switches are read at construction time (see
    :mod:`repro.sim.recycle`), so wrapping only the rig build is enough
    to get both modes in one process.
    """
    before = os.environ.get("REPRO_POOL")
    os.environ["REPRO_POOL"] = "1" if pooled else "0"
    try:
        yield
    finally:
        if before is None:
            del os.environ["REPRO_POOL"]
        else:
            os.environ["REPRO_POOL"] = before


class _PacketRig:
    """The packet-path workload behind the throughput and memory rows.

    A real single-node CHAIN cluster with a FirstResponder installed on
    its node, so every delivery pays the authentic RX path: route
    resolution, jitter draw, surge lookup, hook overhead, the slack
    check, and handler dispatch.  Packets ping-pong through a sink
    endpoint whose progress target is generous enough that no boost ever
    fires — this exercises the steady-state fast path, not the (rare)
    violation path.  Packet ownership follows the production discipline:
    pool acquire at injection, release at the serving endpoint.
    """

    def __init__(self) -> None:
        from repro.cluster.cluster import Cluster, ClusterConfig
        from repro.controllers.targets import TargetConfig
        from repro.core.config import SurgeGuardConfig
        from repro.core.firstresponder import FirstResponder
        from repro.services.registry import get_workload
        from repro.sim.rng import RngRegistry

        self.sim = Simulator()
        self.cluster = Cluster(
            self.sim,
            get_workload("chain").build(),
            ClusterConfig(n_nodes=1),
            RngRegistry(1),
        )
        sink_name = "bench_sink"
        names = list(self.cluster.containers) + [sink_name]
        targets = TargetConfig(
            expected_exec_metric={n: 1.0 for n in names},
            expected_exec_time={n: 1.0 for n in names},
            expected_time_from_start={n: 1.0 for n in names},
            qos_target=0.05,
        )
        self.responder = FirstResponder(
            self.sim, self.cluster.node_views[0], SurgeGuardConfig(), targets
        )
        self.responder.install()

        from repro.cluster.packet import REQUEST

        net = self.cluster.network
        self.delivered = 0
        self._target = 0

        def fire() -> None:
            net.send(
                net.pool.acquire(
                    self.delivered, REQUEST, "client", sink_name, self.sim.now
                )
            )

        def sink(pkt) -> None:
            self.delivered += 1
            # The sink is the serving endpoint: the request's life ends
            # here (server-side release point, as in ServiceInstance).
            net.pool.release(pkt)
            if self.delivered < self._target:
                fire()

        net.register(sink_name, self.cluster.nodes[0], sink)
        self._fire = fire

    def pump(self, n_packets: int) -> None:
        """Deliver ``n_packets`` more packets, back to back."""
        self._target = self.delivered + n_packets
        self._fire()
        self.sim.run()

    def alloc_counters(self) -> dict:
        """Cumulative construction/recycle counters of both free lists."""
        pool = self.cluster.network.pool
        return {
            "packets_constructed": pool.constructed,
            "packets_recycled": pool.recycled,
            "packets_released": pool.released,
            "handles_constructed": self.sim.handles_constructed,
            "handles_recycled": self.sim.handles_recycled,
        }


def bench_packet_path(n_packets: int = DEFAULT_PACKETS, best_of: int = 1) -> dict:
    """Measure packets/second through ``Network.send`` → ``_deliver``.

    ``best_of`` keeps the fastest of N fresh-rig repeats (see
    :func:`bench_engine` for the rationale).
    """
    if n_packets < 1:
        raise ValueError("n_packets must be >= 1")
    if best_of < 1:
        raise ValueError("best_of must be >= 1")
    best = None
    for _ in range(best_of):
        rig = _PacketRig()
        t0 = time.perf_counter()
        rig.pump(n_packets)
        dt = time.perf_counter() - t0
        row = {
            "packets": rig.delivered,
            "seconds": dt,
            "packets_per_sec": rig.delivered / dt if dt > 0 else float("inf"),
            "hook_inspected": rig.responder.packets_inspected,
            "repeats": best_of,
        }
        if best is None or row["packets_per_sec"] > best["packets_per_sec"]:
            best = row
    return best


#: Packets pumped before the measured segment of a memory run, so pool
#: warm-up and cluster assembly don't pollute the steady-state numbers.
_MEMORY_WARMUP_PACKETS = 4_096


def _measure_memory_mode(n_packets: int, *, pooled: bool) -> dict:
    with _pool_env(pooled):
        rig = _PacketRig()
    rig.pump(min(_MEMORY_WARMUP_PACKETS, n_packets))
    base = rig.alloc_counters()
    gc.collect()
    gc_before = [s["collections"] for s in gc.get_stats()]
    tracemalloc.start()
    rig.pump(n_packets)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    gc_after = [s["collections"] for s in gc.get_stats()]
    counters = rig.alloc_counters()
    delta = {k: counters[k] - base[k] for k in counters}
    churn = delta["packets_constructed"] + delta["handles_constructed"]
    return {
        "packets": n_packets,
        "gc_collections": [a - b for a, b in zip(gc_after, gc_before)],
        "tracemalloc_peak_kb": peak / 1024.0,
        "objects_constructed": churn,
        "objects_constructed_per_100k": churn * 100_000.0 / n_packets,
        "alloc_counters": delta,
    }


def bench_memory(n_packets: int = DEFAULT_PACKETS) -> dict:
    """Allocation/GC profile of the packet workload, recycling on vs off.

    Untimed (it runs under ``tracemalloc``, which slows the interpreter);
    the throughput story lives in :func:`bench_packet_path`.  The churn
    counters come from the pools themselves — fresh ``RpcPacket`` and
    ``EventHandle`` constructions after a warm-up segment — so both
    modes' numbers are exactly reproducible on any machine.
    """
    if n_packets < 1:
        raise ValueError("n_packets must be >= 1")
    return {
        "packets": n_packets,
        "warmup_packets": min(_MEMORY_WARMUP_PACKETS, n_packets),
        "pooled": _measure_memory_mode(n_packets, pooled=True),
        "unpooled": _measure_memory_mode(n_packets, pooled=False),
    }


class _DispatchPkt:
    """Stub packet for the LB rig: policies only read the request id."""

    __slots__ = ("request_id",)

    def __init__(self) -> None:
        self.request_id = 0


def bench_lb_dispatch(n_dispatches: int = DEFAULT_LB_DISPATCHES) -> dict:
    """Measure LB routing decisions/second per policy (4-replica pool).

    Drives :meth:`ReplicaSet.resolve` — the exact per-REQUEST decision
    point at the top of ``Network.send`` — with all replicas READY and
    healthy, so the row times the steady-state policy cost (RR counter,
    least-loaded scan, consistent-hash ring lookup), not lifecycle
    filtering edge cases.
    """
    if n_dispatches < 1:
        raise ValueError("n_dispatches must be >= 1")
    from repro.cluster.loadbalancer import (
        LB_POLICIES,
        Replica,
        ReplicaSet,
        make_policy,
        replica_name,
    )

    class _Inst:
        def __init__(self) -> None:
            self.inflight = 0
            self._down = False

    policies = {}
    pkt = _DispatchPkt()
    for name in sorted(LB_POLICIES):
        rset = ReplicaSet("svc", make_policy(name))
        for i in range(4):
            r = Replica(replica_name("svc", i), "svc", i)
            r.instance = _Inst()
            rset.add(r)
        resolve = rset.resolve
        t0 = time.perf_counter()
        for i in range(n_dispatches):
            pkt.request_id = i
            resolve(pkt)
        dt = time.perf_counter() - t0
        if rset.dispatched != n_dispatches:  # pragma: no cover - rig bug
            raise AssertionError("LB rig dropped dispatches")
        policies[name] = {
            "dispatches": n_dispatches,
            "dispatches_per_sec": n_dispatches / dt if dt > 0 else float("inf"),
        }
    return {
        "replicas": 4,
        "policies": policies,
        "min_dispatches_per_sec": min(
            p["dispatches_per_sec"] for p in policies.values()
        ),
    }


def _pipeline_app(stages: int = SHARDED_STAGES, work_cycles: float = 1.2e6):
    """A ``stages``-deep CHAIN-style pipeline that fills a wide cluster.

    Round-robin placement puts consecutive stages on consecutive nodes,
    so an 8-node cluster gets two stages per node and every shard of a
    4-way split carries an equal slice of the pipeline — the load
    balance the speedup measurement needs (the stock 5-stage CHAIN
    leaves three of eight nodes idle).
    """
    from repro.services.taskgraph import AppSpec, EdgeSpec, ServiceSpec, WorkDist

    names = [f"stage{i + 1}" for i in range(stages)]
    services = []
    for i, name in enumerate(names):
        children = (EdgeSpec(names[i + 1], 512),) if i + 1 < stages else ()
        services.append(
            ServiceSpec(
                name=name,
                pre_work=WorkDist(work_cycles),
                children=children,
                initial_cores=2.0,
            )
        )
    return AppSpec(
        name=f"PIPE{stages}",
        action="pipe",
        services=tuple(services),
        root=names[0],
        qos_target=50e-3,
        description=f"{stages}-stage pipeline for the sharded benchmark",
    )


def bench_sharded(
    duration: float = DEFAULT_SHARDED_DURATION,
    *,
    n_nodes: int = SHARDED_NODES,
    shards: int = SHARDED_SHARDS,
) -> dict:
    """Serial vs sharded execution of one large multi-node cell.

    The cell is a 16-stage pipeline across ``n_nodes`` nodes under
    SurgeGuard on a 200 µs inter-node fabric (a coarser lookahead than
    the 20 µs default, so each conservative-sync window carries enough
    events to amortize the barrier).  ``speedup_basis`` records how the
    ratio was formed:

    * ``wall`` — the host has >= ``shards`` CPUs: real worker processes,
      wall-clock over wall-clock;
    * ``critical_path`` — fewer CPUs than shards (parallel wall time is
      unmeasurable): the lockstep in-process driver, serial CPU time
      over the summed per-window CPU maxima (the time the barrier
      protocol would take with one real CPU per shard).
    """
    from repro.cluster.network import NetworkConfig
    from repro.exec.sharded import run_sharded
    from repro.exec.specs import spec
    from repro.experiments.harness import (
        ExperimentConfig,
        clear_profile_cache,
        profile_targets,
        run_experiment,
    )

    if duration <= 0:
        raise ValueError("duration must be > 0")
    cfg = ExperimentConfig(
        workload="chain",
        app=_pipeline_app(),
        base_rate=2000.0,
        controller_factory=spec("surgeguard"),
        spike_magnitude=None,
        n_nodes=n_nodes,
        duration=duration,
        warmup=0.5,
        profile_duration=0.5,
        drain=0.5,
        seed=1,
        network=NetworkConfig(inter_node_latency=200e-6),
    )
    clear_profile_cache()
    targets = profile_targets(cfg)

    w0 = time.perf_counter()
    c0 = time.process_time_ns()
    serial = run_experiment(cfg, targets)
    serial_cpu = (time.process_time_ns() - c0) / 1e9
    serial_wall = time.perf_counter() - w0

    cpus = os.cpu_count() or 1
    basis = "wall" if cpus >= shards else "critical_path"
    w0 = time.perf_counter()
    sharded = run_sharded(
        cfg, targets, shards=shards, inline=(basis == "critical_path")
    )
    sharded_wall = time.perf_counter() - w0
    ss = sharded.shard_stats
    crit = ss["critical_path_ns"] / 1e9
    if basis == "wall":
        speedup = serial_wall / sharded_wall if sharded_wall > 0 else float("inf")
    else:
        speedup = serial_cpu / crit if crit > 0 else float("inf")
    if sharded.summary.count != serial.summary.count:  # pragma: no cover
        raise AssertionError(
            "sharded cell completed a different request count than serial"
        )
    return {
        "n_nodes": n_nodes,
        "shards": shards,
        "stages": SHARDED_STAGES,
        "duration": duration,
        "requests": serial.summary.count,
        "serial_wall_seconds": serial_wall,
        "serial_cpu_seconds": serial_cpu,
        "sharded_wall_seconds": sharded_wall,
        "critical_path_seconds": crit,
        "per_shard_cpu_seconds": [c / 1e9 for c in ss["cpu_ns"]],
        "rounds": ss["rounds"],
        "conservation_ok": ss["conservation_ok"],
        "speedup_basis": basis,
        "sharded_speedup": speedup,
    }


def bench_cell(
    *, reps: int = 1, jobs: int = 1, workload: str = "chain"
) -> dict:
    """Time one standard experiment cell (profiling pass included)."""
    from repro.analysis.aggregate import run_cell
    from repro.exec.specs import spec
    from repro.experiments.harness import ExperimentConfig, clear_profile_cache

    cfg = ExperimentConfig(
        workload=workload,
        controller_factory=spec("surgeguard"),
        spike_magnitude=1.75,
        spike_len=1.0,
        spike_period=5.0,
        duration=6.0,
        warmup=2.0,
        profile_duration=2.0,
        seed=1,
    )
    clear_profile_cache()  # cold, comparable across runs
    t0 = time.perf_counter()
    cell = run_cell(cfg, reps=reps, jobs=jobs)
    dt = time.perf_counter() - t0
    return {
        "workload": workload,
        "controller": cell.controller,
        "reps": reps,
        "jobs": jobs,
        "seconds": dt,
        "seconds_per_rep": dt / reps,
        "violation_volume": cell.violation_volume,
    }


def run_benchmarks(
    *,
    n_events: int = DEFAULT_EVENTS,
    n_packets: int = DEFAULT_PACKETS,
    n_density_events: int = DEFAULT_DENSITY_EVENTS,
    n_arrivals: int = DEFAULT_ARRIVALS,
    n_users: int = DEFAULT_USERS,
    n_lb_dispatches: int = DEFAULT_LB_DISPATCHES,
    sharded_duration: float = DEFAULT_SHARDED_DURATION,
    best_of: int = 1,
    reps: int = 1,
    jobs: int = 1,
    skip_cell: bool = False,
    skip_memory: bool = False,
    skip_sharded: bool = False,
) -> dict:
    """Run all measurements and return the report dict (schema 6)."""
    report = {
        "schema": 6,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "engine": bench_engine(n_events, best_of=best_of),
        "engine_density": bench_engine_density(n_density_events),
        "arrival_gen": bench_arrival_gen(n_arrivals),
        "users": bench_users(n_users),
        "packet_path": bench_packet_path(n_packets, best_of=best_of),
        "lb_dispatch": bench_lb_dispatch(n_lb_dispatches),
    }
    if not skip_sharded:
        report["sharded"] = bench_sharded(sharded_duration)
    if not skip_memory:
        report["memory"] = bench_memory(n_packets)
    if not skip_cell:
        report["cell"] = bench_cell(reps=reps, jobs=jobs)
    return report


def _history_entry(report: dict) -> dict:
    """Compact one prior report into a per-commit trajectory point."""
    entry = {
        "generated_at": report.get("generated_at"),
        "schema": report.get("schema"),
        "engine_events_per_sec": report.get("engine", {}).get("events_per_sec"),
        "packet_path_packets_per_sec": report.get("packet_path", {}).get(
            "packets_per_sec"
        ),
    }
    density = report.get("engine_density")
    if density:
        entry["high_density_speedup"] = density.get("high_density_speedup")
    users = report.get("users")
    if users:
        entry["users_per_wall_second"] = users.get("users_per_wall_second")
    lb = report.get("lb_dispatch")
    if lb:
        entry["lb_min_dispatches_per_sec"] = lb.get("min_dispatches_per_sec")
    sharded = report.get("sharded")
    if sharded:
        entry["sharded_speedup"] = sharded.get("sharded_speedup")
        entry["sharded_speedup_basis"] = sharded.get("speedup_basis")
    cell = report.get("cell")
    if cell:
        entry["cell_seconds_per_rep"] = cell.get("seconds_per_rep")
    memory = report.get("memory")
    if memory:
        entry["churn_per_100k_pooled"] = memory.get("pooled", {}).get(
            "objects_constructed_per_100k"
        )
        entry["churn_per_100k_unpooled"] = memory.get("unpooled", {}).get(
            "objects_constructed_per_100k"
        )
    return entry


def append_history(report: dict, out_path: str) -> dict:
    """Fold the previous ``out_path`` report into ``report["history"]``.

    The prior snapshot is compacted to its headline rates and appended
    to the trajectory it was itself carrying, so ``--append`` across
    commits yields one per-commit series instead of only the latest
    numbers.  The series keeps only the newest :data:`HISTORY_MAX`
    entries — the trajectory is a trend indicator, not an archive, and
    an unbounded list would grow the committed report forever.  Missing
    or unparsable prior files are ignored.
    """
    try:
        with open(out_path) as fh:
            prior = json.load(fh)
    except (OSError, ValueError):
        return report
    if not isinstance(prior, dict):
        return report
    history = [h for h in prior.get("history", ()) if isinstance(h, dict)]
    history.append(_history_entry(prior))
    report["history"] = history[-HISTORY_MAX:]
    return report


def main(argv: Optional[Iterable[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.bench",
        description="Benchmark the engine + a standard cell; write BENCH_exec.json.",
    )
    parser.add_argument(
        "--events", type=int, default=DEFAULT_EVENTS,
        help=f"synthetic engine events (default {DEFAULT_EVENTS})",
    )
    parser.add_argument(
        "--packets", type=int, default=DEFAULT_PACKETS,
        help=f"packet-path packets (default {DEFAULT_PACKETS})",
    )
    parser.add_argument(
        "--density-events", type=int, default=DEFAULT_DENSITY_EVENTS,
        help="fired events per scheduler per density regime "
             f"(default {DEFAULT_DENSITY_EVENTS})",
    )
    parser.add_argument(
        "--arrivals", type=int, default=DEFAULT_ARRIVALS,
        help=f"arrival-generation timestamps (default {DEFAULT_ARRIVALS})",
    )
    parser.add_argument(
        "--users", type=int, default=DEFAULT_USERS,
        help=f"end-to-end requests for the users row (default {DEFAULT_USERS})",
    )
    parser.add_argument(
        "--lb-dispatches", type=int, default=DEFAULT_LB_DISPATCHES,
        help="LB routing decisions per policy "
             f"(default {DEFAULT_LB_DISPATCHES})",
    )
    parser.add_argument(
        "--sharded-duration", type=float, default=DEFAULT_SHARDED_DURATION,
        help="measured simulated seconds of the sharded cell "
             f"(default {DEFAULT_SHARDED_DURATION})",
    )
    parser.add_argument(
        "--best-of", type=int, default=1,
        help="repeats per throughput row, fastest kept (default 1; the "
             "committed report uses 3 to suppress shared-host noise)",
    )
    parser.add_argument(
        "--reps", type=int, default=1, help="cell repetitions (default 1)"
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the cell reps (default 1)",
    )
    parser.add_argument(
        "--skip-cell", action="store_true", help="engine measurement only"
    )
    parser.add_argument(
        "--skip-memory", action="store_true",
        help="skip the allocation/GC profile (schema-3 memory section)",
    )
    parser.add_argument(
        "--skip-sharded", action="store_true",
        help="skip the serial-vs-sharded cell (schema-6 sharded section)",
    )
    parser.add_argument(
        "--append", action="store_true",
        help="fold the previous report at --out into a per-commit "
             "'history' list instead of discarding it",
    )
    parser.add_argument(
        "--out", default="BENCH_exec.json",
        help="output path (default: BENCH_exec.json in the current directory)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    report = run_benchmarks(
        n_events=args.events,
        n_packets=args.packets,
        n_density_events=args.density_events,
        n_arrivals=args.arrivals,
        n_users=args.users,
        n_lb_dispatches=args.lb_dispatches,
        sharded_duration=args.sharded_duration,
        best_of=args.best_of,
        reps=args.reps,
        jobs=args.jobs,
        skip_cell=args.skip_cell,
        skip_memory=args.skip_memory,
        skip_sharded=args.skip_sharded,
    )
    if args.append:
        append_history(report, args.out)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    eng = report["engine"]
    print(f"engine: {eng['events']} events in {eng['seconds']:.3f}s "
          f"= {eng['events_per_sec']:,.0f} ev/s")
    for row in report["engine_density"]["regimes"]:
        print(f"density pending={row['pending']:>6}: "
              f"heap {row['heap_events_per_sec']:,.0f} ev/s vs "
              f"calendar {row['calendar_events_per_sec']:,.0f} ev/s "
              f"({row['calendar_speedup']:.2f}x)")
    arr = report["arrival_gen"]
    print(f"arrivals: scalar {arr['scalar_arrivals_per_sec']:,.0f}/s vs "
          f"batch {arr['batch_arrivals_per_sec']:,.0f}/s "
          f"({arr['batch_speedup']:.1f}x)")
    users = report["users"]
    print(f"users:  {users['users_per_wall_second']:,.0f} users/wall-s "
          f"(baseline {users['baseline_users_per_wall_second']:,.0f}, "
          f"{users['speedup']:.2f}x)")
    pkt = report["packet_path"]
    print(f"packet: {pkt['packets']} packets in {pkt['seconds']:.3f}s "
          f"= {pkt['packets_per_sec']:,.0f} pkt/s")
    lb = report["lb_dispatch"]
    lb_parts = ", ".join(
        f"{name} {row['dispatches_per_sec']:,.0f}/s"
        for name, row in lb["policies"].items()
    )
    print(f"lb:     {lb_parts} (min {lb['min_dispatches_per_sec']:,.0f}/s)")
    sharded = report.get("sharded")
    if sharded:
        print(f"sharded: {sharded['n_nodes']} nodes / {sharded['shards']} shards "
              f"→ {sharded['sharded_speedup']:.2f}x "
              f"({sharded['speedup_basis']} basis, "
              f"{sharded['rounds']} sync rounds, "
              f"conservation={'ok' if sharded['conservation_ok'] else 'VIOLATED'})")
    memory = report.get("memory")
    if memory:
        pooled, unpooled = memory["pooled"], memory["unpooled"]
        print(f"memory: churn/100k packets {pooled['objects_constructed_per_100k']:,.0f} "
              f"pooled vs {unpooled['objects_constructed_per_100k']:,.0f} unpooled; "
              f"gc {pooled['gc_collections']} vs {unpooled['gc_collections']}; "
              f"peak {pooled['tracemalloc_peak_kb']:,.0f} KiB vs "
              f"{unpooled['tracemalloc_peak_kb']:,.0f} KiB")
    cell = report.get("cell")
    if cell:
        print(f"cell:   {cell['workload']}×{cell['controller']} "
              f"reps={cell['reps']} jobs={cell['jobs']} "
              f"→ {cell['seconds']:.2f}s ({cell['seconds_per_rep']:.2f}s/rep)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
