"""Process-pool fan-out for experiment repetitions and cells.

The repetition protocol (``repro.analysis.aggregate.run_cell``) runs the
same cell at seeds ``seed .. seed+reps−1``; every rep is an independent,
deterministically seeded discrete-event simulation, so the work is
embarrassingly parallel.  This module dispatches reps to a
:class:`concurrent.futures.ProcessPoolExecutor` while preserving the
serial protocol **bit for bit**:

* the per-(workload, topology) profiling pass is executed **once in the
  parent** and the resulting :class:`TargetConfig` is shipped to every
  worker, exactly mirroring the serial path where the first rep warms
  the memoized profile cache and later reps reuse it;
* results come back in seed order, so the trimmed means see the same
  value sequence as a serial run;
* workers re-resolve the controller from its picklable
  :class:`repro.exec.specs.ControllerSpec` (closures do not cross
  process boundaries).

Determinism is asserted by ``tests/exec/test_parallel.py`` which
compares ``jobs=4`` against ``jobs=1`` field for field.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.controllers.targets import TargetConfig
from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    profile_targets,
    run_experiment,
)

__all__ = ["cpu_jobs", "ensure_picklable", "run_reps"]


def cpu_jobs() -> int:
    """Default worker count: every core the container exposes."""
    return os.cpu_count() or 1


def ensure_picklable(cfg: ExperimentConfig) -> None:
    """Fail fast, with a useful message, on configs that cannot cross a
    process boundary (the classic offender is a lambda controller
    factory — use :func:`repro.exec.specs.spec` instead)."""
    try:
        pickle.dumps(cfg)
    except Exception as exc:
        raise TypeError(
            f"ExperimentConfig is not picklable ({exc}); parallel execution "
            "needs a picklable controller_factory — use "
            "repro.exec.specs.spec(name, **params) instead of a "
            "lambda/closure"
        ) from exc


def _rep_worker(payload: Tuple[ExperimentConfig, TargetConfig, int]) -> ExperimentResult:
    """Run one repetition inside a worker process.

    ``targets`` is the parent's profiling result; passing it explicitly
    bypasses the worker's own (cold) profile cache so no worker ever
    redundantly re-profiles the workload.
    """
    cfg, targets, seed = payload
    return run_experiment(dataclasses.replace(cfg, seed=seed), targets=targets)


def run_reps(
    cfg: ExperimentConfig,
    reps: int,
    *,
    jobs: int,
    targets: Optional[TargetConfig] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[ExperimentResult]:
    """Run ``reps`` seeded repetitions of ``cfg`` across ``jobs`` workers.

    Returns results in seed order (``cfg.seed .. cfg.seed+reps−1`` unless
    ``seeds`` overrides them), bit-identical to running the same seeds
    serially through :func:`run_experiment`.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if seeds is None:
        seeds = [cfg.seed + i for i in range(reps)]
    elif len(seeds) != reps:
        raise ValueError(f"got {len(seeds)} seeds for {reps} reps")
    if targets is None:
        targets = profile_targets(cfg)

    # Sharded reps multiply: each rep spawns `shards` worker processes of
    # its own, so `jobs` reps in flight occupy jobs × shards CPUs.  Clamp
    # to the container's cores rather than thrash every simulation.
    from repro.exec.sharded import resolve_shards

    shards = resolve_shards(cfg) or 1
    if shards > 1:
        cpus = cpu_jobs()
        if jobs * shards > cpus:
            capped = max(1, cpus // shards)
            if capped < jobs:
                warnings.warn(
                    f"jobs={jobs} x shards={shards} oversubscribes "
                    f"{cpus} CPUs; capping jobs at {capped}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                jobs = capped

    if jobs == 1 or reps == 1:
        return [_rep_worker((cfg, targets, s)) for s in seeds]

    ensure_picklable(cfg)
    with ProcessPoolExecutor(max_workers=min(jobs, reps)) as pool:
        return list(pool.map(_rep_worker, [(cfg, targets, s) for s in seeds]))
