"""Sharded shared-nothing execution of one experiment (DESIGN.md §12).

:func:`run_sharded` partitions an experiment's cluster across K event
loops — worker processes connected by pipes, with the parent process
acting as shard 0 — and runs them under the conservative-sync barrier
protocol defined in :mod:`repro.sim.shard`:

* **Partitioning** — nodes split into contiguous balanced blocks
  (:func:`~repro.cluster.placement.node_shard_map`); shard 0 also hosts
  the external client (the workload generator) and therefore the
  measured latency stream.  Every shard builds the *full* cluster
  identically — same endpoint registry, placement, and RNG-stream
  creation order — then restricts itself to its local nodes; remote
  containers exist only as idle routing stubs whose accounting is never
  merged.
* **Controllers** — each shard instantiates the controller and attaches
  it to its restricted ``node_views``, so per-node daemons (SurgeGuard's
  Escalator/FirstResponder pairs) exist exactly once fleet-wide.  Only
  controllers that declare ``shardable = True`` are accepted.
* **Barriers** — each round every shard exchanges
  ``(round, promise, wire batch, cpu_ns)`` with every peer, absorbs the
  inbound packets, and advances to the identically-computed
  ``min(promises) + lookahead``.  Two extra flush rounds at the end
  balance the boundary ledger (late packets are scheduled like serial's
  never-fired pending events) and fire deliveries landing exactly on
  the final horizon.
* **Merging** — shard 0 assembles a normal
  :class:`~repro.experiments.harness.ExperimentResult`; fleet-merged
  counters land in ``result.shard_stats`` for the fingerprint layer,
  and the boundary ledger is audited by
  :class:`~repro.validate.monitors.ShardConservationMonitor`.

``run_sharded(..., inline=True)`` runs all K shards lockstep in one
process — same protocol, wire batches still round-tripped through
pickle — for property tests and single-CPU environments.

Determinism contract: results are a pure function of (config, seed,
shard count).  ``shards=1`` is a bit-identical pass-through
(:func:`arm_passthrough`); ``K >= 2`` may differ from serial only
through jitter-draw interleaving, so a ``jitter=0`` fabric is
shard-count-invariant (the ``sharded`` validate family pins this).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
import traceback
from dataclasses import asdict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.placement import node_shard_map
from repro.controllers.base import ControllerStats
from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    _build_cluster,
)
from repro.metrics.summary import summarize
from repro.sim.rng import RngRegistry
from repro.sim.shard import (
    ShardConfigError,
    ShardContext,
    next_barrier,
    shards_from_env,
)
from repro.workload.arrivals import RateSchedule
from repro.workload.generator import OpenLoopClient

__all__ = [
    "ShardRunner",
    "arm_passthrough",
    "resolve_shards",
    "run_sharded",
]


def resolve_shards(cfg: ExperimentConfig) -> Optional[int]:
    """Effective shard count: config field, else ``REPRO_SHARDS``."""
    return cfg.shards if cfg.shards is not None else shards_from_env()


def arm_passthrough(cluster) -> ShardContext:
    """Arm the shard boundary with everything local (``shards=1``).

    The remote set is empty, so every send still takes the legacy
    scheduling path, no extra RNG draw or counter change happens, and
    the run is bit-identical to an unarmed one — while still exercising
    the armed membership check the K >= 2 path relies on.
    """
    ctx = ShardContext(0, 1, cluster.config.network.inter_node_latency)
    owner = {None: 0}
    for node in cluster.nodes:
        owner[node] = 0
    ctx.bind(owner)
    cluster.network.arm_shard(ctx)
    return ctx


def _check_sharded_config(cfg: ExperimentConfig, shards: int) -> None:
    if cfg.replicas is not None:
        raise ShardConfigError(
            "sharded runs do not support the replica/LB tier yet "
            "(replicas must be None)"
        )
    if cfg.faults is not None and not cfg.faults.empty:
        raise ShardConfigError("sharded runs do not support fault injection")
    if shards > cfg.n_nodes:
        raise ShardConfigError(
            f"cannot split {cfg.n_nodes} node(s) across {shards} shards"
        )
    probe = cfg.controller_factory()
    if not probe.shardable:
        raise ShardConfigError(
            f"controller {probe.name!r} is not shardable (requires "
            f"strictly per-node state reached via cluster.node_views)"
        )


class ShardRunner:
    """One shard's event loop plus its boundary bookkeeping.

    Mirrors :func:`~repro.experiments.harness.run_experiment`'s setup
    sequence exactly (same construction order, same schedule-at calls),
    restricted to this shard's role: the client exists only on shard 0,
    the controller attaches to the local node views, and the
    measurement snapshot runs locally at the measurement boundary.
    """

    def __init__(
        self,
        cfg: ExperimentConfig,
        targets,
        shard_id: int,
        shards: int,
        *,
        monitors=None,
    ):
        self.cfg = cfg
        self.targets = targets
        self.shard_id = shard_id
        self.n_shards = shards

        app = cfg.resolved_app()
        sim, cluster = _build_cluster(
            cfg, app, seed=cfg.seed, record=cfg.record_timelines, replicated=True
        )
        self.sim = sim
        self.cluster = cluster
        self.lookahead = cluster.config.network.inter_node_latency

        shard_of = node_shard_map(cfg.n_nodes, shards)
        owner = {None: 0}  # the external client endpoint lives on shard 0
        for i, node in enumerate(cluster.nodes):
            owner[node] = shard_of[i]
        ctx = ShardContext(shard_id, shards, self.lookahead)
        ctx.bind(owner)
        cluster.network.arm_shard(ctx)
        cluster.set_local_nodes([i for i, s in shard_of.items() if s == shard_id])
        self.ctx = ctx

        for surge_start, surge_end, surge_extra in cfg.latency_surges:
            cluster.network.add_latency_surge(surge_start, surge_end, surge_extra)

        self.t_measure = cfg.warmup
        t_end = cfg.warmup + cfg.duration
        self.t_final = t_end + cfg.drain

        self.client = None
        if shard_id == 0:
            base_rate = cfg.resolved_rate()
            if cfg.spike_magnitude is not None:
                schedule = RateSchedule.periodic(
                    base_rate,
                    magnitude=cfg.spike_magnitude,
                    spike_len=cfg.spike_len,
                    period=cfg.spike_period,
                    first=self.t_measure + cfg.spike_offset,
                    until=t_end,
                )
            else:
                schedule = RateSchedule(base_rate)
            rng = RngRegistry(cfg.seed + 7919)
            self.client = OpenLoopClient(
                sim,
                cluster,
                schedule,
                duration=t_end,
                pacing=cfg.pacing,
                rng=rng.stream("client") if cfg.pacing == "poisson" else None,
            )

        controller = cfg.controller_factory()
        if shards > 1 and not controller.shardable:
            raise ShardConfigError(
                f"controller {controller.name!r} is not shardable"
            )
        controller.attach(sim, cluster, targets)
        self.controller = controller

        self.snap: Dict[str, Tuple[float, float]] = {}

        def take_snapshot() -> None:
            cluster.sync_all()
            for name, c in cluster.containers.items():
                self.snap[name] = (c.alloc_core_seconds, c.busy_weighted_seconds)

        sim.schedule_at(self.t_measure, take_snapshot)

        self.monitors = monitors
        if monitors is not None:
            monitors.arm(
                sim,
                cluster,
                controller=controller,
                client=self.client,
                shard_safe_only=shards > 1,
            )

        if self.client is not None:
            self.client.begin()
        controller.start()

        self.cpu_ns = 0
        self.last_window_ns = 0
        self.crit_ns = 0
        self.rounds = 0
        #: Committed horizons, in order (property tests read this).
        self.barrier_history: List[float] = []

    # ------------------------------------------------------------- protocol
    def round_message(self) -> Tuple[float, Dict[int, list]]:
        """This round's promise + per-peer wire batches."""
        promise = self.ctx.take_promise(self.sim.next_event_time())
        outboxes = {
            dest: self.ctx.take_outbox(dest)
            for dest in range(self.n_shards)
            if dest != self.shard_id
        }
        return promise, outboxes

    def absorb(self, src_shard: int, batch: list) -> None:
        """Accept a peer's wire batch: ledger check, token resolution,
        receiver-side latency + delivery scheduling."""
        ctx = self.ctx
        recv = self.cluster.network.recv_boundary
        for wire in batch:
            ctx.accept_seq(src_shard, wire[0])
            recv(
                wire[1], wire[2], wire[3], wire[4], wire[5],
                wire[6], wire[7], wire[8], ctx.resolve_token(wire[9]),
            )

    def advance(self, until: float) -> None:
        """Run the local loop up to the committed horizon."""
        self.barrier_history.append(until)
        t0 = time.process_time_ns()
        self.sim.run(until=until)
        dt = time.process_time_ns() - t0
        self.cpu_ns += dt
        self.last_window_ns = dt

    # -------------------------------------------------------------- results
    def finish(self, *, finalize_monitors: bool) -> dict:
        """Stop the controller, settle accounting, and return the
        picklable per-shard partial results for the merge."""
        self.controller.stop()
        self.cluster.sync_all()
        violations: List[Tuple[float, str, str]] = []
        checks = 0
        if self.monitors is not None and finalize_monitors:
            self.monitors.finalize()
            checks = self.monitors.total_checks
            violations = [
                (v.time, v.monitor, f"shard {self.shard_id} {v.monitor}: {v.message}")
                for v in self.monitors.all_violations
            ]

        cluster, cfg = self.cluster, self.cfg
        local = cluster.local_containers()
        # Per-container accounting deltas rather than a partial sum: the
        # merge accumulates them in canonical container order with the
        # serial harness's exact arithmetic, so the merged energy is
        # bit-identical to serial whenever the dynamics are (jitter=0).
        accounting = {}
        for name in local:
            c = cluster.containers[name]
            a0, b0 = self.snap.get(name, (0.0, 0.0))
            accounting[name] = (
                c.alloc_core_seconds - a0,
                c.busy_weighted_seconds - b0,
            )
        allocs = cluster.allocations()
        freqs = cluster.frequencies()
        net = cluster.network
        return {
            "shard": self.shard_id,
            "ledger": self.ctx.ledger(),
            "events_fired": self.sim.events_fired,
            "packets_sent": net.packets_sent,
            "packets_delivered": net.packets_delivered,
            "packets_dropped": net.packets_dropped,
            "packets_unroutable": net.packets_unroutable,
            "alloc": {name: allocs[name] for name in local},
            "freq": {name: freqs[name] for name in local},
            "accounting": accounting,
            "controller_stats": asdict(self.controller.stats),
            "fast_path_packets": getattr(self.controller, "packets_inspected", 0),
            "fast_path_violations": getattr(
                self.controller, "fast_path_violations", 0
            ),
            "alloc_events": list(cluster.alloc_events),
            "freq_events": list(cluster.freq_events),
            "cpu_ns": self.cpu_ns,
            "rounds": self.rounds,
            "monitor_checks": checks,
            "monitor_violations": violations,
        }


# --------------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------------

Exchange = Callable[
    [int, float, Dict[int, list], int],
    Tuple[List[float], List[Tuple[int, list]], List[int]],
]


def _drive(runner: ShardRunner, exchange: Exchange) -> None:
    """The barrier loop, identical for process workers and shard 0.

    Every iteration performs exactly one all-to-all exchange, so all
    shards execute the same number of rounds (the loop's control flow
    depends only on the shared barrier history) — that lockstep is what
    makes the blocking pipe protocol deadlock-free.  Two flush rounds
    end the run: the first fires deliveries landing exactly on the
    final horizon, the second hands over anything those fired events
    sent (receivers schedule them like serial's never-fired pending
    events, balancing the conservation ledger).
    """
    flushes = 0
    rounds = 0
    while True:
        promise, outboxes = runner.round_message()
        promises, inbound, windows = exchange(
            rounds, promise, outboxes, runner.last_window_ns
        )
        runner.crit_ns += max(windows)
        for src, batch in inbound:
            runner.absorb(src, batch)
        rounds += 1
        if runner.sim.now >= runner.t_final:
            flushes += 1
            if flushes == 2:
                break
            runner.advance(runner.t_final)
        else:
            runner.advance(next_barrier(promises, runner.lookahead, runner.t_final))
    runner.rounds = rounds


def _make_exchange(
    shard_id: int, shards: int, conns: Dict[int, "mp.connection.Connection"]
) -> Exchange:
    """All-to-all pipe exchange for one shard (deterministic peer order)."""
    peers = sorted(conns)

    def exchange(round_idx, promise, outboxes, window_ns):
        for peer in peers:
            conns[peer].send((round_idx, promise, outboxes[peer], window_ns))
        promises = [0.0] * shards
        windows = [0] * shards
        promises[shard_id] = promise
        windows[shard_id] = window_ns
        inbound = []
        for peer in peers:
            got_round, got_promise, batch, got_ns = conns[peer].recv()
            if got_round != round_idx:
                raise RuntimeError(
                    f"barrier desync: shard {shard_id} at round {round_idx} "
                    f"received round {got_round} from shard {peer}"
                )
            promises[peer] = got_promise
            windows[peer] = got_ns
            inbound.append((peer, batch))
        return promises, inbound, windows

    return exchange


def _shard_worker(
    cfg: ExperimentConfig,
    targets,
    shard_id: int,
    shards: int,
    conns: Dict[int, "mp.connection.Connection"],
    arm_monitors: bool,
) -> None:
    """Process target for shards 1..K-1."""
    try:
        monitors = None
        if arm_monitors:
            from repro.validate.monitors import MonitorSet

            monitors = MonitorSet()
        runner = ShardRunner(cfg, targets, shard_id, shards, monitors=monitors)
        _drive(runner, _make_exchange(shard_id, shards, conns))
        conns[0].send(("result", runner.finish(finalize_monitors=True)))
    except BaseException:
        try:
            conns[0].send(("error", traceback.format_exc()))
        except Exception:
            pass
        raise


# --------------------------------------------------------------------------
# Entry point + merge
# --------------------------------------------------------------------------


def run_sharded(
    cfg: ExperimentConfig,
    targets,
    *,
    shards: int,
    monitors=None,
    probe=None,
    inline: bool = False,
) -> ExperimentResult:
    """Execute one experiment across ``shards`` event loops and merge.

    ``targets`` must be pre-resolved (workers never profile).  The
    calling process *is* shard 0 — its client, controller, and cluster
    stay readable in-process, so ``probe``/``monitors`` semantics match
    the serial harness with shard-0 scope; fleet-merged counters are in
    ``result.shard_stats``.  ``inline=True`` runs every shard lockstep
    in this process (tests; single-CPU boxes) — same protocol, wire
    batches still round-tripped through pickle so the serialization
    seam stays honest.
    """
    if shards < 2:
        raise ShardConfigError("run_sharded requires shards >= 2")
    _check_sharded_config(cfg, shards)

    if inline:
        partials, runner0 = _run_inline(cfg, targets, shards, monitors)
    else:
        partials, runner0 = _run_procs(cfg, targets, shards, monitors)

    return _merge(cfg, targets, shards, partials, runner0, monitors, probe)


def _run_procs(cfg, targets, shards, monitors):
    pipes = {
        (i, j): mp.Pipe(duplex=True)
        for i in range(shards)
        for j in range(i + 1, shards)
    }

    def conns_for(shard_id: int) -> Dict[int, "mp.connection.Connection"]:
        out = {}
        for peer in range(shards):
            if peer == shard_id:
                continue
            a, b = min(shard_id, peer), max(shard_id, peer)
            out[peer] = pipes[(a, b)][0 if shard_id == a else 1]
        return out

    workers = [
        mp.Process(
            target=_shard_worker,
            args=(cfg, targets, j, shards, conns_for(j), monitors is not None),
            daemon=False,
        )
        for j in range(1, shards)
    ]
    for w in workers:
        w.start()
    # Shard 0 keeps only its own connection ends; dropping the worker-to-
    # worker ends in this process lets a dead worker surface as EOF.
    my_conns = conns_for(0)
    for (i, j), (end_a, end_b) in pipes.items():
        if i != 0:
            end_a.close()
            end_b.close()
        else:
            end_b.close()

    try:
        runner0 = ShardRunner(cfg, targets, 0, shards, monitors=monitors)
        _drive(runner0, _make_exchange(0, shards, my_conns))
        partials = [None] * shards
        for j in range(1, shards):
            tag, payload = my_conns[j].recv()
            if tag == "error":
                raise RuntimeError(f"shard {j} failed:\n{payload}")
            partials[j] = payload
        for w in workers:
            w.join(timeout=30.0)
    except BaseException:
        for w in workers:
            if w.is_alive():
                w.terminate()
        for w in workers:
            w.join(timeout=5.0)
        raise
    return partials, runner0


def _run_inline(cfg, targets, shards, monitors):
    from repro.validate.monitors import MonitorSet

    runners = [
        ShardRunner(
            cfg,
            targets,
            j,
            shards,
            monitors=(
                monitors
                if j == 0
                else (MonitorSet() if monitors is not None else None)
            ),
        )
        for j in range(shards)
    ]
    runner0 = runners[0]
    t_final = runner0.t_final
    lookahead = runner0.lookahead
    flushes = 0
    rounds = 0
    while True:
        msgs = [r.round_message() for r in runners]
        promises = [m[0] for m in msgs]
        windows = [r.last_window_ns for r in runners]
        crit = max(windows)
        for r in runners:
            r.crit_ns += crit
        for j, r in enumerate(runners):
            for src in range(shards):
                if src == j:
                    continue
                # The honest seam: batches cross through pickle exactly
                # as they would cross a process boundary.
                batch = pickle.loads(pickle.dumps(msgs[src][1][j]))
                r.absorb(src, batch)
        rounds += 1
        if runner0.sim.now >= t_final:
            flushes += 1
            if flushes == 2:
                break
            for r in runners:
                r.advance(t_final)
        else:
            barrier = next_barrier(promises, lookahead, t_final)
            for r in runners:
                r.advance(barrier)
    partials = [None] * shards
    for j, r in enumerate(runners):
        r.rounds = rounds
        if j:
            partials[j] = r.finish(finalize_monitors=True)
    return partials, runner0


def _merge(cfg, targets, shards, partials, runner0, monitors, probe):
    # Shard 0 settles last: controller stop + sync + (safe) monitor
    # finalize, in the serial harness's order.
    partials[0] = runner0.finish(finalize_monitors=True)
    sim, cluster, client = runner0.sim, runner0.cluster, runner0.client

    ledgers = [p["ledger"] for p in partials]
    worker_violations = [v for p in partials[1:] for v in p["monitor_violations"]]
    from repro.validate.monitors import ShardConservationMonitor

    conservation = ShardConservationMonitor()
    conservation.feed(
        ledgers, time=runner0.t_final, worker_violations=worker_violations
    )
    if monitors is not None:
        monitors.monitors.append(conservation)
    elif not conservation.ok:
        raise RuntimeError(
            "shard boundary conservation violated: "
            + "; ".join(v.message for v in conservation.violations)
        )

    if probe is not None:
        probe(sim, cluster)

    t, lat = client.stats.completed_arrays()
    mask = t >= runner0.t_measure
    t_m, lat_m = t[mask], lat[mask]
    summary = summarize(t_m, lat_m, targets.qos_target)

    window = runner0.t_final - runner0.t_measure
    # Accumulate accounting in canonical container order with the serial
    # harness's exact arithmetic — not per-shard partial sums, whose
    # different association would drift from serial by an ulp.
    accounting: Dict[str, Tuple[float, float]] = {}
    for p in partials:
        accounting.update(p["accounting"])
    dvfs = cluster.config.dvfs
    alloc_cs = 0.0
    energy = 0.0
    for name in cluster.containers:
        d_alloc, d_busy = accounting[name]
        alloc_cs += d_alloc
        energy += dvfs.static_w * d_alloc
        energy += dvfs.dyn_w_at_fmax * d_busy
    stats_fields = [p["controller_stats"] for p in partials]
    merged_stats = ControllerStats(
        **{
            key: sum(s[key] for s in stats_fields)
            for key in stats_fields[0]
        }
    )

    # One take_snapshot event fires per shard; serial fires exactly one.
    events_fired = sum(p["events_fired"] for p in partials) - (shards - 1)
    merged_alloc: Dict[str, float] = {}
    merged_freq: Dict[str, float] = {}
    for p in partials:
        merged_alloc.update(p["alloc"])
        merged_freq.update(p["freq"])
    # Canonical container order (every shard builds the same registry).
    merged_alloc = {name: merged_alloc[name] for name in cluster.containers}
    merged_freq = {name: merged_freq[name] for name in cluster.containers}

    cpu_totals = [p["cpu_ns"] for p in partials]
    shard_stats = {
        "shards": shards,
        "events_fired": events_fired,
        "packets_sent": sum(p["packets_sent"] for p in partials),
        "packets_delivered": sum(p["packets_delivered"] for p in partials),
        "packets_dropped": sum(p["packets_dropped"] for p in partials),
        "packets_unroutable": sum(p["packets_unroutable"] for p in partials),
        "final_alloc": merged_alloc,
        "final_freq": merged_freq,
        "rounds": runner0.rounds,
        "cpu_ns": cpu_totals,
        "critical_path_ns": runner0.crit_ns,
        "conservation_ok": conservation.ok,
        "conservation_checks": conservation.checks,
        "ledgers": ledgers,
    }

    alloc_events = sorted(
        (e for p in partials for e in p["alloc_events"]), key=lambda e: e[0]
    )
    freq_events = sorted(
        (e for p in partials for e in p["freq_events"]), key=lambda e: e[0]
    )

    return ExperimentResult(
        config=cfg,
        controller_name=runner0.controller.name,
        targets=targets,
        summary=summary,
        avg_cores=alloc_cs / window,
        energy=energy,
        controller_stats=merged_stats,
        latency_trace=np.column_stack([t_m, lat_m]) if t_m.size else np.empty((0, 2)),
        alloc_events=alloc_events,
        freq_events=freq_events,
        outstanding=client.stats.outstanding,
        fast_path_packets=sum(p["fast_path_packets"] for p in partials),
        fast_path_violations=sum(p["fast_path_violations"] for p in partials),
        errors=client.stats.errored,
        requests_sent=client.stats.sent,
        fault_stats=None,
        shard_stats=shard_stats,
    )
