"""Named, picklable controller specifications.

:class:`repro.experiments.harness.ExperimentConfig` historically carried
a bare ``Callable[[], Controller]`` factory.  Closures and lambdas do
not pickle, which blocks fanning experiment repetitions out across a
:class:`~concurrent.futures.ProcessPoolExecutor` (`repro.exec.pool`).

A :class:`ControllerSpec` replaces the closure with *data*: a registry
name plus a frozen tuple of keyword parameters.  The spec is itself a
zero-argument callable, so it drops into ``controller_factory=`` slots
unchanged — but it pickles, compares by value, and is resolved **inside
the worker process** against the registry below, so the parent never
has to ship controller object graphs.

>>> spec("surgeguard", firstresponder=False)()   # doctest: +ELLIPSIS
<repro.core.surgeguard.SurgeGuardController object at ...>
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.controllers.base import Controller
from repro.controllers.caladan import CaladanController, CaladanParams
from repro.controllers.horizontal import HorizontalAutoscaler, HpaParams
from repro.controllers.lsram import LsramController, LsramParams
from repro.controllers.ml_central import CentralizedMLController, MLParams
from repro.controllers.null import NullController
from repro.controllers.parties import PartiesController, PartiesParams
from repro.controllers.statuscale import StatuScaleController, StatuScaleParams

__all__ = ["ControllerSpec", "available_specs", "register_controller", "spec"]


#: name -> builder taking the spec's keyword params.
_REGISTRY: Dict[str, Callable[..., Controller]] = {}


def register_controller(name: str, builder: Callable[..., Controller]) -> None:
    """Register ``builder`` under ``name`` (idempotent re-registration
    with the same builder is allowed; silently replacing a different one
    is not — that would make specs resolve differently across processes).
    """
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not builder:
        raise ValueError(f"controller spec {name!r} already registered")
    _REGISTRY[name] = builder


def available_specs() -> Tuple[str, ...]:
    """Registered spec names, sorted."""
    return tuple(sorted(_REGISTRY))


@dataclass(frozen=True)
class ControllerSpec:
    """A named controller recipe: registry key + keyword parameters.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so specs are
    hashable and order-insensitive; values must themselves be picklable
    (scalars in practice).  Calling the spec builds a fresh controller.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def __call__(self) -> Controller:
        try:
            builder = _REGISTRY[self.name]
        except KeyError:
            raise ValueError(
                f"unknown controller spec {self.name!r}; "
                f"known: {', '.join(available_specs())}"
            ) from None
        return builder(**dict(self.params))


def spec(name: str, **params: Any) -> ControllerSpec:
    """Build a :class:`ControllerSpec`, validating the name eagerly."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown controller spec {name!r}; known: {', '.join(available_specs())}"
        )
    return ControllerSpec(name, tuple(sorted(params.items())))


# --------------------------------------------------------------------------
# Built-in specs.  Params route into each controller's parameter dataclass
# (or SurgeGuardConfig), so any knob those expose is addressable by name.
# --------------------------------------------------------------------------


def _build_null() -> Controller:
    return NullController()


def _build_parties(**kw: Any) -> Controller:
    return PartiesController(PartiesParams(**kw)) if kw else PartiesController()


def _build_caladan(**kw: Any) -> Controller:
    return CaladanController(CaladanParams(**kw)) if kw else CaladanController()


def _build_ml_central(**kw: Any) -> Controller:
    return (
        CentralizedMLController(MLParams(**kw))
        if kw
        else CentralizedMLController()
    )


def _build_hpa(**kw: Any) -> Controller:
    return HorizontalAutoscaler(HpaParams(**kw)) if kw else HorizontalAutoscaler()


def _build_statuscale(**kw: Any) -> Controller:
    return (
        StatuScaleController(StatuScaleParams(**kw))
        if kw
        else StatuScaleController()
    )


def _build_lsram(**kw: Any) -> Controller:
    return LsramController(LsramParams(**kw)) if kw else LsramController()


def _build_hybrid(**kw: Any) -> Controller:
    """HPA + SurgeGuard side by side (§VII); kwargs tune the HPA half."""
    from repro.controllers.horizontal import HybridController

    return HybridController(HpaParams(**kw)) if kw else HybridController()


def _build_surgeguard(**kw: Any) -> Controller:
    from repro.core import SurgeGuardConfig, SurgeGuardController

    return SurgeGuardController(SurgeGuardConfig(**kw))


def _build_escalator(**kw: Any) -> Controller:
    """SurgeGuard slow path only (FirstResponder off) — Fig. 10/15 arms."""
    from repro.core import SurgeGuardConfig, SurgeGuardController

    return SurgeGuardController(SurgeGuardConfig(firstresponder=False, **kw))


register_controller("null", _build_null)
register_controller("parties", _build_parties)
register_controller("caladan", _build_caladan)
register_controller("ml-central", _build_ml_central)
register_controller("hpa", _build_hpa)
register_controller("hybrid", _build_hybrid)
register_controller("surgeguard", _build_surgeguard)
register_controller("escalator", _build_escalator)
register_controller("statuscale", _build_statuscale)
register_controller("lsram", _build_lsram)
