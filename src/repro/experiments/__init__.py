"""Experiment harness and per-figure drivers.

:mod:`repro.experiments.harness` implements the artifact's run protocol:

1. **Profile** at low load with static allocations (1–2 minutes on the
   testbed; a scaled window here) and set per-container targets to 2×
   the measured averages plus the end-to-end QoS limit.
2. **Run** the measured experiment: warm-up, then a spike schedule over
   the measurement window, with the controller under test active.
3. **Report** violation volume, P98, average cores, and energy over the
   measurement window.

Each ``fig*.py`` / ``table*.py`` module regenerates one table or figure
of the paper (see the experiment index in DESIGN.md) and returns plain
data structures; the ``benchmarks/`` suite calls them and prints the
paper-shaped rows.
"""

from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    profile_targets,
    run_experiment,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "profile_targets",
    "run_experiment",
]
