"""Ablations over SurgeGuard's design knobs (DESIGN.md §6).

The paper fixes several constants with one-line justifications (α = 0.5,
revocation threshold 0.02, hold window ≈ 2× e2e latency, bounded hint
TTL).  These sweeps measure how sensitive the headline result actually
is to each of them, on the readUserTimeline fixed-pool scenario where
every mechanism is live.  A final driver exercises the *network latency*
surge mode from the abstract.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.core import SurgeGuardConfig, SurgeGuardController
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.scale import current_scale

__all__ = [
    "AblationPoint",
    "sweep_alpha",
    "sweep_hold_factor",
    "sweep_ttl",
    "sweep_escalator_interval",
    "latency_surge_comparison",
]


@dataclass(frozen=True)
class AblationPoint:
    knob: str
    value: float
    violation_volume: float
    avg_cores: float
    energy: float


def _base_cfg(factory: Callable, workload: str = "readUserTimeline") -> ExperimentConfig:
    sc = current_scale()
    # Harsher surge than Fig. 11's 1.75×: at 2.5× every mechanism is
    # load-bearing, which is what makes knob differences visible.
    return ExperimentConfig(
        workload=workload,
        controller_factory=factory,
        spike_magnitude=2.5,
        spike_len=sc.spike_len,
        spike_period=sc.spike_period,
        spike_offset=sc.spike_offset,
        duration=sc.duration,
        warmup=sc.warmup,
        profile_duration=sc.profile_duration,
    )


def _sweep(knob: str, values: Sequence[float], make_cfg) -> List[AblationPoint]:
    out: List[AblationPoint] = []
    for v in values:
        factory = lambda v=v: SurgeGuardController(make_cfg(v))
        res = run_experiment(_base_cfg(factory))
        out.append(
            AblationPoint(
                knob=knob,
                value=v,
                violation_volume=res.violation_volume,
                avg_cores=res.avg_cores,
                energy=res.energy,
            )
        )
    return out


def sweep_alpha(values: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9)) -> List[AblationPoint]:
    """The execAvg EWMA weight (paper: 0.5)."""
    return _sweep("alpha", values, lambda v: SurgeGuardConfig(alpha=v))


def sweep_hold_factor(values: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0)) -> List[AblationPoint]:
    """FirstResponder's frequency-freeze window (paper: ~2× e2e latency)."""
    return _sweep("hold_factor", values, lambda v: SurgeGuardConfig(hold_factor=v))


def sweep_ttl(values: Sequence[int] = (0, 1, 2, 4)) -> List[AblationPoint]:
    """The pkt.upscale hint TTL (paper: 'a limited number of hops')."""
    return _sweep("upscale_ttl", values, lambda v: SurgeGuardConfig(upscale_ttl=int(v)))


def sweep_escalator_interval(
    values: Sequence[float] = (0.05, 0.1, 0.25, 0.5),
) -> List[AblationPoint]:
    """Escalator decision cycle — faster reacts sooner, noisier windows."""
    return _sweep(
        "escalator_interval",
        values,
        lambda v: SurgeGuardConfig(escalator_interval=v),
    )


def latency_surge_comparison(extra: float = 4e-3, length: float = 1.0) -> Dict[str, float]:
    """Network-latency surge (abstract): VV per controller.

    The rate stays at base; every packet sent inside the window takes
    ``extra`` additional seconds.  SurgeGuard's per-packet slack sees
    the lost progress immediately; window-average controllers see it a
    cycle later; CaladanAlgo's queueBuildup never fires (latency is in
    the network, not the pools).
    """
    from repro.controllers.caladan import CaladanController
    from repro.controllers.null import NullController
    from repro.controllers.parties import PartiesController
    from repro.cluster.cluster import Cluster, ClusterConfig
    from repro.experiments.harness import profile_targets
    from repro.metrics.violation import violation_volume
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry
    from repro.workload.arrivals import RateSchedule
    from repro.workload.generator import OpenLoopClient

    cfg = _base_cfg(NullController, workload="chain")
    targets = profile_targets(cfg)
    out: Dict[str, float] = {}
    for label, factory in (
        ("static", NullController),
        ("parties", PartiesController),
        ("caladan", CaladanController),
        ("surgeguard", SurgeGuardController),
    ):
        sim = Simulator()
        cluster = Cluster(
            sim,
            cfg.resolved_app(),
            ClusterConfig(cores_per_node=16, placement="pack"),
            RngRegistry(11),
        )
        t0 = cfg.warmup + 1.0
        cluster.network.add_latency_surge(t0, t0 + length, extra=extra)
        client = OpenLoopClient(
            sim, cluster, RateSchedule(cfg.resolved_rate()),
            duration=cfg.warmup + cfg.duration,
        )
        ctrl = factory()
        ctrl.attach(sim, cluster, targets)
        client.begin()
        ctrl.start()
        sim.run(until=cfg.warmup + cfg.duration + 1.5)
        ctrl.stop()
        t, lat = client.stats.completed_arrays()
        mask = t >= cfg.warmup
        out[label] = violation_volume(t[mask], lat[mask], targets.qos_target)
    return out
