"""Fig. 4 — detection delay drives violation volume and core cost.

The paper's thought experiment: an *ideal* controller (knows the exact
cores needed, applies them in one step) tackles a 4 s surge, but only
after a detection delay of 0.2 ms (SurgeGuard's fast path), 0.5 s
(Parties), or 1 s (ML controllers).  Result: the 1 s delay yields a
violation volume 4.75× that of 0.5 s and 24× that of 0.2 ms, and needs
40–75 % more cores to drain the queue that built up undetected.

Reproduced on a single-service application driven by the
:class:`~repro.controllers.oracle.OracleController`:

* the VV ratio column compares each delay against the fastest;
* the cores column reports the smallest oracle headroom (scan) whose
  allocation clears the backlog before the surge ends, converted to the
  average extra cores held during the surge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.controllers.oracle import OracleController
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.scale import current_scale
from repro.services.taskgraph import AppSpec, ServiceSpec, WorkDist
from repro.workload.arrivals import RateSchedule

__all__ = ["Fig04Row", "run_fig04", "single_service_app", "DELAYS"]

#: The paper's three detection delays.
DELAYS = (0.2e-3, 0.5, 1.0)

#: Surge parameters of the thought experiment.
SURGE_LEN = 4.0
SURGE_MAG = 1.75
BASE_RATE = 1500.0


def single_service_app() -> AppSpec:
    """A one-service application (the Fig. 4 setting is a single queue)."""
    return AppSpec(
        name="mono",
        action="single",
        services=(
            ServiceSpec("mono", pre_work=WorkDist(1.2e6), initial_cores=1.5),
        ),
        root="mono",
        qos_target=8e-3,
        description="single PS queue for the detection-delay study",
    )


@dataclass(frozen=True)
class Fig04Row:
    """One detection-delay operating point."""

    delay: float
    violation_volume: float
    vv_ratio_vs_fastest: float
    #: Average cores held during surge + drain at the minimal headroom.
    cores_during_surge: float
    extra_cores_vs_fastest: float
    headroom: float


def _base_config(delay: float, headroom: float) -> ExperimentConfig:
    sc = current_scale()

    def factory():
        schedule = RateSchedule.single(
            BASE_RATE,
            magnitude=SURGE_MAG,
            start=sc.warmup + 1.0,
            length=SURGE_LEN,
        )
        return OracleController(
            schedule, detection_delay=delay, headroom=headroom
        )

    return ExperimentConfig(
        workload="fig04-mono",
        app=single_service_app(),
        base_rate=BASE_RATE,
        controller_factory=factory,
        spike_magnitude=SURGE_MAG,
        spike_len=SURGE_LEN,
        spike_period=100.0,  # exactly one surge
        spike_offset=1.0,
        duration=SURGE_LEN + 4.0,
        warmup=sc.warmup,
        cores_per_node=12.0,
        profile_duration=sc.profile_duration,
    )


def _min_clearing_headroom(delay: float, headrooms: Sequence[float]) -> float:
    """Smallest headroom whose run drains the backlog before surge end.

    "Drains" = the violation has ended by one second after the surge
    (latency back under QoS), measured by the violation duration not
    extending into the last post-surge second.
    """
    sc = current_scale()
    surge_end = sc.warmup + 1.0 + SURGE_LEN
    for h in headrooms:
        res = run_experiment(_base_config(delay, h))
        t = res.latency_trace[:, 0]
        lat = res.latency_trace[:, 1]
        tail = t >= surge_end + 1.0
        if tail.any() and (lat[tail] <= res.targets.qos_target).all():
            return h
    return headrooms[-1]


def run_fig04(headrooms: Sequence[float] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.5)) -> List[Fig04Row]:
    """Regenerate Fig. 4: one row per detection delay."""
    rows: List[Fig04Row] = []
    results = []
    for delay in DELAYS:
        h = _min_clearing_headroom(delay, headrooms)
        res = run_experiment(_base_config(delay, h))
        results.append((delay, h, res))
    vv0 = results[0][2].violation_volume
    cores0 = results[0][2].avg_cores
    for delay, h, res in results:
        rows.append(
            Fig04Row(
                delay=delay,
                violation_volume=res.violation_volume,
                vv_ratio_vs_fastest=(res.violation_volume / vv0 if vv0 > 0 else float("inf")),
                cores_during_surge=res.avg_cores,
                extra_cores_vs_fastest=(res.avg_cores / cores0 - 1.0) if cores0 > 0 else 0.0,
                headroom=h,
            )
        )
    return rows


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.analysis.render import format_table

    rows = run_fig04()
    print(
        format_table(
            ["delay", "VV (ms·s)", "VV vs fastest", "avg cores", "extra cores", "headroom"],
            [
                (
                    f"{r.delay * 1e3:g}ms",
                    f"{r.violation_volume * 1e3:.2f}",
                    f"{r.vv_ratio_vs_fastest:.2f}x",
                    f"{r.cores_during_surge:.2f}",
                    f"{r.extra_cores_vs_fastest * 100:.0f}%",
                    f"{r.headroom:.2f}",
                )
                for r in rows
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
