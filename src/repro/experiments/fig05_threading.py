"""Fig. 5 — threading models hide inter-container dependencies.

Two services, c1 → c2, under a request-rate surge:

* **connection-per-request** (Fig. 5a): the surge propagates concurrency
  into c2, both services' execution metrics rise, and even a
  dependence-blind per-container controller upscales both;
* **fixed-size threadpool** (Fig. 5b): the surge queues *implicitly*
  inside c1 waiting for pool connections; c2 never sees it.  The
  per-container controller pours cores into c1 and never touches c2;
* **SurgeGuard's metrics** (Fig. 5c): ``queueBuildup`` at c1 flags the
  hidden queue and the ``pkt.upscale`` hint upscales c2 as well.

The driver runs both topologies under Parties and under SurgeGuard's
Escalator and reports the cores *gained* by each service during the
surge — the quantity the figure's arrows depict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.scale import current_scale
from repro.metrics.timeseries import StepSeries
from repro.services.taskgraph import AppSpec, EdgeSpec, ServiceSpec, WorkDist

__all__ = ["Fig05Row", "run_fig05", "two_service_app"]

BASE_RATE = 1500.0
SURGE_MAG = 1.75


def two_service_app(pool_size: Optional[int]) -> AppSpec:
    """c1 → c2 with the given pool model (None = connection-per-request).

    The pool is Little's-Law sized for the base rate (Eq. 1):
    ``rate × downstream latency ≈ 1500/s × 1.4 ms ≈ 2`` connections in
    flight at steady state, so the default of 4 binds once the surge
    inflates c2's latency — the paper's provisioning recipe.
    """
    return AppSpec(
        name="two-service",
        action="fig05",
        services=(
            ServiceSpec(
                "c1",
                pre_work=WorkDist(1.0e6),
                children=(EdgeSpec("c2", pool_size),),
                initial_cores=1.5,
            ),
            ServiceSpec("c2", pre_work=WorkDist(1.4e6), initial_cores=2.0),
        ),
        root="c1",
        qos_target=8e-3,
        description="Fig. 5 hidden-dependency micro-topology",
    )


@dataclass(frozen=True)
class Fig05Row:
    """One (threading model, controller) run."""

    model: str
    controller: str
    c1_cores_gained: float
    c2_cores_gained: float
    violation_volume: float
    #: Whether c2 was upscaled at all during the surge.
    c2_upscaled: bool


def _cores_gained(alloc_events, service: str, t0: float, t1: float, initial: float) -> float:
    series = StepSeries(0.0, initial)
    for t, name, cores in alloc_events:
        if name == service and t > 0.0:
            series.append(t, cores)
    peak = max(v for t, v in series.changes() if t <= t1)
    return peak - initial


def run_fig05(pool_size: int = 4) -> List[Fig05Row]:
    """Regenerate Fig. 5 (both threading models × both controllers)."""
    sc = current_scale()
    rows: List[Fig05Row] = []
    surge_start = sc.warmup + sc.spike_offset
    surge_end = surge_start + sc.spike_len
    for model, pool in (("conn-per-request", None), ("fixed-pool", pool_size)):
        app = two_service_app(pool)
        for label, factory in (
            ("parties", spec("parties", interval=0.1)),
            ("surgeguard", spec("escalator")),
        ):
            cfg = ExperimentConfig(
                workload=f"fig05-{model}",
                app=app,
                base_rate=BASE_RATE,
                controller_factory=factory,
                spike_magnitude=SURGE_MAG,
                spike_len=sc.spike_len,
                spike_period=100.0,
                spike_offset=sc.spike_offset,
                duration=sc.duration,
                warmup=sc.warmup,
                cores_per_node=12.0,
                record_timelines=True,
                profile_duration=sc.profile_duration,
            )
            res = run_experiment(cfg)
            inits = {s.name: s.initial_cores for s in app.services}
            g1 = _cores_gained(res.alloc_events, "c1", surge_start, surge_end + 2.0, inits["c1"])
            g2 = _cores_gained(res.alloc_events, "c2", surge_start, surge_end + 2.0, inits["c2"])
            rows.append(
                Fig05Row(
                    model=model,
                    controller=label,
                    c1_cores_gained=g1,
                    c2_cores_gained=g2,
                    violation_volume=res.violation_volume,
                    c2_upscaled=g2 > 0,
                )
            )
    return rows


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.analysis.render import format_table

    rows = run_fig05()
    print(
        format_table(
            ["model", "controller", "c1 +cores", "c2 +cores", "c2 upscaled?", "VV (ms·s)"],
            [
                (
                    r.model,
                    r.controller,
                    f"{r.c1_cores_gained:.1f}",
                    f"{r.c2_cores_gained:.1f}",
                    "yes" if r.c2_upscaled else "NO",
                    f"{r.violation_volume * 1e3:.2f}",
                )
                for r in rows
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
