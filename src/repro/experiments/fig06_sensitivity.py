"""Fig. 6 — sensitivity curves (execution time vs. allocated cores).

The paper plots, for two socialNetwork services, the execution-time
curve against core count: one service's latency keeps improving with
cores (upscale it!), the other's flattens early (cores 4→7 buy nothing,
yet a threshold-based controller lets it hog them).

The driver measures the curves directly: for each candidate service and
each static allocation it runs a short fixed-load window and records the
mean ``execMetric``.  The output is also the ground truth the
sensitivity-tracker tests compare SurgeGuard's online ``execAvg``
estimates against.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.harness import ExperimentConfig
from repro.experiments.scale import current_scale
from repro.services.registry import get_workload

__all__ = ["SensitivityCurve", "run_fig06"]

#: The Fig. 6 subjects (socialNetwork ReadUserTimeline services).
SERVICES = ("post-storage-service", "user-timeline-service")


@dataclass(frozen=True)
class SensitivityCurve:
    """Measured execMetric (seconds) per static core allocation."""

    service: str
    cores: Tuple[float, ...]
    exec_metric: Tuple[float, ...]

    def sensitivity(self) -> Tuple[float, ...]:
        """Per-step fractional improvement (the paper's ``sens`` values)."""
        out = []
        for a, b in zip(self.exec_metric, self.exec_metric[1:]):
            out.append(1.0 - b / a if a > 0 else 0.0)
        return tuple(out)


def _with_cores(app, service: str, cores: float):
    new_services = tuple(
        dataclasses.replace(s, initial_cores=cores) if s.name == service else s
        for s in app.services
    )
    return dataclasses.replace(app, services=new_services)


def run_fig06(
    core_points: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0),
    *,
    workload: str = "readUserTimeline",
    services: Sequence[str] = SERVICES,
) -> List[SensitivityCurve]:
    """Measure the sensitivity curve of each service under fixed load."""
    sc = current_scale()
    profile = get_workload(workload)
    base_app = profile.build()
    curves: List[SensitivityCurve] = []
    for service in services:
        metrics: List[float] = []
        for cores in core_points:
            app = _with_cores(base_app, service, cores)
            cfg = ExperimentConfig(
                workload=f"fig06-{service}-{cores}",
                app=app,
                base_rate=profile.base_rate,
                spike_magnitude=None,
                duration=3.0,
                warmup=1.5,
                cores_per_node=24.0,
                profile_duration=sc.profile_duration,
            )
            metrics.append(_measured_exec_metric(cfg, service))
        curves.append(
            SensitivityCurve(
                service=service,
                cores=tuple(core_points),
                exec_metric=tuple(metrics),
            )
        )
    return curves


def _measured_exec_metric(cfg: ExperimentConfig, service: str) -> float:
    """Run the cluster directly and read the service's mean execMetric."""
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry
    from repro.cluster.cluster import Cluster, ClusterConfig
    from repro.workload.arrivals import RateSchedule
    from repro.workload.generator import OpenLoopClient

    sim = Simulator()
    rng = RngRegistry(cfg.seed)
    cluster = Cluster(
        sim,
        cfg.resolved_app(),
        ClusterConfig(cores_per_node=cfg.cores_per_node or 24.0, placement="pack"),
        rng,
    )
    client = OpenLoopClient(
        sim, cluster, RateSchedule(cfg.resolved_rate()), duration=cfg.duration
    )
    client.begin()
    sim.run(until=cfg.duration + 1.0)
    runtime = cluster.runtimes[service]
    if runtime.total_count == 0:
        raise RuntimeError(f"{service!r} saw no traffic")
    return runtime.total_exec_metric / runtime.total_count


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.analysis.render import format_table

    curves = run_fig06()
    for curve in curves:
        print(f"\n{curve.service}:")
        sens = ("-",) + tuple(f"{s:.3f}" for s in curve.sensitivity())
        print(
            format_table(
                ["cores", "execMetric (ms)", "sens vs prev"],
                [
                    (c, f"{m * 1e3:.3f}", s)
                    for c, m, s in zip(curve.cores, curve.exec_metric, sens)
                ],
            )
        )


if __name__ == "__main__":  # pragma: no cover
    main()
