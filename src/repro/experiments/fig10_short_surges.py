"""Fig. 10 — FirstResponder absorbs very short surges (CHAIN).

The paper injects 100 µs and 2 ms surges whose *instantaneous* rate is
20× the base rate into CHAIN and compares Escalator-only against the
complete SurgeGuard (Escalator + FirstResponder):

* 100 µs surges are invisible to any averaging controller — Escalator
  alone eats a large latency excursion, FirstResponder's per-packet
  slack detection boosts frequency within the surge itself (−98 % VV);
* at 2 ms the averaged window starts to see the surge, Escalator begins
  to help, and FirstResponder's relative benefit shrinks (−88 % VV) —
  the head-start argument of §VI-A.

Surges repeat periodically through the measurement window so the VV
signal accumulates over many surge instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.scale import current_scale

__all__ = ["Fig10Row", "run_fig10", "SURGE_LENGTHS"]

#: The two surge durations of Fig. 10 (seconds).
SURGE_LENGTHS = (100e-6, 2e-3)

#: Surge magnitude per duration.  The paper runs both at 20× the base
#: rate; at its multi-krps testbed rates a 100 µs surge still delivers
#: tens of extra requests.  At the scaled base rate (1.8 krps) 20× for
#: 100 µs is ~4 requests — a non-event — so the 100 µs magnitude is
#: raised to deliver the same *burst work* (~70 extra requests) as the
#: 2 ms × 20× surge, preserving what the figure actually studies: a
#: sub-window burst invisible to averaging controllers.
SURGE_MAGS = {100e-6: 400.0, 2e-3: 20.0}

#: Surge repetition period within the measurement window.
SURGE_PERIOD = 0.5


@dataclass(frozen=True)
class Fig10Row:
    """One (surge length, controller) cell plus its latency timeline."""

    surge_len: float
    controller: str
    violation_volume: float
    p98: float
    peak_latency: float
    #: (arrival time, latency) samples for timeline rendering.
    trace: np.ndarray


def _config(surge_len: float, factory) -> ExperimentConfig:
    sc = current_scale()
    return ExperimentConfig(
        workload="chain",
        controller_factory=factory,
        spike_magnitude=SURGE_MAGS.get(surge_len, 20.0),
        spike_len=surge_len,
        spike_period=SURGE_PERIOD,
        spike_offset=0.25,
        duration=4.0,
        warmup=sc.warmup,
        profile_duration=sc.profile_duration,
    )


def run_fig10(
    surge_lengths: Sequence[float] = SURGE_LENGTHS,
) -> List[Fig10Row]:
    """Regenerate Fig. 10: Escalator-only vs. full SurgeGuard."""
    rows: List[Fig10Row] = []
    for surge_len in surge_lengths:
        for label, factory in (
            ("escalator", spec("escalator")),
            ("surgeguard", spec("surgeguard")),
        ):
            res = run_experiment(_config(surge_len, factory))
            rows.append(
                Fig10Row(
                    surge_len=surge_len,
                    controller=label,
                    violation_volume=res.violation_volume,
                    p98=res.p98,
                    peak_latency=res.summary.max,
                    trace=res.latency_trace,
                )
            )
    return rows


def vv_reduction(rows: Sequence[Fig10Row], surge_len: float) -> float:
    """FirstResponder's VV reduction for one surge length (0..1)."""
    esc = next(
        r for r in rows if r.surge_len == surge_len and r.controller == "escalator"
    )
    full = next(
        r for r in rows if r.surge_len == surge_len and r.controller == "surgeguard"
    )
    if esc.violation_volume <= 0:
        return 0.0
    return 1.0 - full.violation_volume / esc.violation_volume


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.analysis.render import format_table, sparkline

    rows = run_fig10()
    print(
        format_table(
            ["surge", "controller", "VV (ms·s)", "p98 (ms)", "peak (ms)"],
            [
                (
                    f"{r.surge_len * 1e6:g}us",
                    r.controller,
                    f"{r.violation_volume * 1e3:.3f}",
                    f"{r.p98 * 1e3:.2f}",
                    f"{r.peak_latency * 1e3:.2f}",
                )
                for r in rows
            ],
        )
    )
    for surge_len in SURGE_LENGTHS:
        print(
            f"FR VV reduction @ {surge_len * 1e6:g}us: "
            f"{vv_reduction(rows, surge_len) * 100:.1f}%"
        )
    for r in rows:
        if r.trace.size:
            print(f"{r.surge_len * 1e6:>6g}us {r.controller:>10s}: "
                  f"{sparkline(r.trace[::max(1, len(r.trace) // 100), 1])}")


if __name__ == "__main__":  # pragma: no cover
    main()
