"""Fig. 11 — long surges across all workloads and magnitudes.

The §VI-B protocol: 2 s surges injected every 10 s; surge rate 1.25×,
1.5×, and 1.75× the base rate; metrics normalized to Parties.  The paper
reports, on average, SurgeGuard reducing violation volume by 19 % /
43 % / 61 % for the three magnitudes while using 2–8 % fewer cores and
2–4 % less energy, with CaladanAlgo collapsing on the
connection-per-request hotel workloads.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.aggregate import CellResult, run_cell
from repro.analysis.normalize import NormalizedCell, normalize_cells
from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig
from repro.experiments.scale import current_scale

__all__ = ["Fig11Cell", "run_fig11", "WORKLOAD_KEYS", "MAGNITUDES", "CONTROLLERS"]

WORKLOAD_KEYS = (
    "chain",
    "readUserTimeline",
    "composePost",
    "searchHotel",
    "recommendHotel",
)
MAGNITUDES = (1.25, 1.5, 1.75)
CONTROLLERS: Tuple[Tuple[str, Callable], ...] = (
    ("parties", spec("parties")),
    ("caladan", spec("caladan")),
    ("surgeguard", spec("surgeguard")),
)


@dataclass(frozen=True)
class Fig11Cell:
    """One (workload, magnitude, controller) cell, Parties-normalized."""

    workload: str
    magnitude: float
    controller: str
    normalized: NormalizedCell
    raw: CellResult


def base_config(workload: str, magnitude: float) -> ExperimentConfig:
    """The shared experiment shape of all Fig. 11 cells."""
    sc = current_scale()
    return ExperimentConfig(
        workload=workload,
        spike_magnitude=magnitude,
        spike_len=sc.spike_len,
        spike_period=sc.spike_period,
        spike_offset=sc.spike_offset,
        duration=sc.duration,
        warmup=sc.warmup,
        profile_duration=sc.profile_duration,
    )


def run_fig11(
    workloads: Sequence[str] = WORKLOAD_KEYS,
    magnitudes: Sequence[float] = MAGNITUDES,
    controllers: Sequence[Tuple[str, Callable]] = CONTROLLERS,
) -> List[Fig11Cell]:
    """Regenerate Fig. 11.  Returns one normalized cell per grid point."""
    out: List[Fig11Cell] = []
    for workload in workloads:
        for magnitude in magnitudes:
            cfg = base_config(workload, magnitude)
            cells: Dict[str, CellResult] = {}
            for label, factory in controllers:
                cells[label] = run_cell(
                    dataclasses.replace(cfg, controller_factory=factory)
                )
            norm = normalize_cells(cells.values(), cells["parties"])
            for label in cells:
                out.append(
                    Fig11Cell(
                        workload=workload,
                        magnitude=magnitude,
                        controller=label,
                        normalized=norm[label],
                        raw=cells[label],
                    )
                )
    return out


def average_reduction(
    cells: Sequence[Fig11Cell], controller: str, magnitude: float
) -> float:
    """Mean VV reduction vs. Parties across workloads at one magnitude.

    Cells whose Parties baseline had (near-)zero violation volume are
    skipped: with no violation to reduce, the ratio is degenerate — at
    small magnitudes a mild surge may not violate at all, which is a
    statement about the QoS envelope, not about the controllers.
    Returns ``None`` when *every* cell at this magnitude is degenerate.
    """
    ratios = []
    by_wl_parties = {
        c.workload: c.raw.violation_volume
        for c in cells
        if c.controller == "parties" and c.magnitude == magnitude
    }
    for c in cells:
        if c.controller != controller or c.magnitude != magnitude:
            continue
        if by_wl_parties.get(c.workload, 0.0) <= 1e-6:
            continue
        ratios.append(c.normalized.violation_volume)
    if not ratios:
        return None
    return 1.0 - sum(ratios) / len(ratios)


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.analysis.render import format_table

    cells = run_fig11()
    print(
        format_table(
            ["workload", "mag", "controller", "VV/parties", "cores/parties", "energy/parties"],
            [
                (
                    c.workload,
                    f"{c.magnitude:.2f}x",
                    c.controller,
                    f"{c.normalized.violation_volume:.3f}",
                    f"{c.normalized.avg_cores:.3f}",
                    f"{c.normalized.energy:.3f}",
                )
                for c in cells
                if c.controller != "parties"
            ],
        )
    )
    for mag in MAGNITUDES:
        red = average_reduction(cells, "surgeguard", mag)
        shown = "n/a" if red is None else f"{red * 100:.1f}%"
        print(
            f"avg VV reduction vs Parties @ {mag}x: {shown} "
            f"(paper: {dict(zip(MAGNITUDES, (19, 43, 61)))[mag]}%)"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
