"""Fig. 12 — effect of surge duration (0.1 s … 5 s at 1.75×).

Two workloads bracket the threading models: ``recommendHotel``
(connection-per-request) and ``readUserTimeline`` (fixed threadpool).
The paper's findings, which the bench asserts as shape:

* SurgeGuard beats both baselines at every duration;
* its relative VV improvement *grows* with surge duration
  (43.4 % → 56.5 % from 0.1 s to 5 s in the paper);
* the CaladanAlgo energy anomaly on recommendHotel — CaladanAlgo never
  upscales a connection-per-request workload, so it burns far less
  energy (7.4× less at 5 s) while its violation volume explodes
  (251× SurgeGuard's).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.aggregate import CellResult, run_cell
from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig
from repro.experiments.scale import current_scale

__all__ = ["Fig12Cell", "run_fig12", "DURATIONS", "WORKLOADS_F12"]

DURATIONS = (0.1, 0.5, 1.0, 2.0, 5.0)
WORKLOADS_F12 = ("recommendHotel", "readUserTimeline")
SURGE_MAG = 1.75


@dataclass(frozen=True)
class Fig12Cell:
    workload: str
    surge_len: float
    controller: str
    raw: CellResult
    #: VV ratio vs Parties and vs CaladanAlgo (the two figure panels).
    vv_vs_parties: float
    vv_vs_caladan: float
    energy_vs_parties: float
    energy_vs_caladan: float


def run_fig12(
    workloads: Sequence[str] = WORKLOADS_F12,
    durations: Sequence[float] = DURATIONS,
) -> List[Fig12Cell]:
    """Regenerate Fig. 12 for both baselines."""
    sc = current_scale()
    out: List[Fig12Cell] = []
    controllers: Tuple[Tuple[str, Callable], ...] = (
        ("parties", spec("parties")),
        ("caladan", spec("caladan")),
        ("surgeguard", spec("surgeguard")),
    )
    for workload in workloads:
        for surge_len in durations:
            # One surge per window; the window stretches for long surges.
            duration = max(sc.duration, surge_len + 6.0)
            cfg = ExperimentConfig(
                workload=workload,
                spike_magnitude=SURGE_MAG,
                spike_len=surge_len,
                spike_period=duration + 1.0,
                spike_offset=sc.spike_offset,
                duration=duration,
                warmup=sc.warmup,
                profile_duration=sc.profile_duration,
            )
            cells: Dict[str, CellResult] = {}
            for label, factory in controllers:
                cells[label] = run_cell(
                    dataclasses.replace(cfg, controller_factory=factory)
                )

            def ratio(a: float, b: float) -> float:
                return a / b if b > 0 else float("inf")

            for label in cells:
                c = cells[label]
                out.append(
                    Fig12Cell(
                        workload=workload,
                        surge_len=surge_len,
                        controller=label,
                        raw=c,
                        vv_vs_parties=ratio(
                            c.violation_volume, cells["parties"].violation_volume
                        ),
                        vv_vs_caladan=ratio(
                            c.violation_volume, cells["caladan"].violation_volume
                        ),
                        energy_vs_parties=ratio(c.energy, cells["parties"].energy),
                        energy_vs_caladan=ratio(c.energy, cells["caladan"].energy),
                    )
                )
    return out


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.analysis.render import format_table

    cells = run_fig12()
    print(
        format_table(
            ["workload", "surge", "VV/parties", "VV/caladan", "E/parties", "E/caladan"],
            [
                (
                    c.workload,
                    f"{c.surge_len:g}s",
                    f"{c.vv_vs_parties:.3f}",
                    f"{c.vv_vs_caladan:.3f}",
                    f"{c.energy_vs_parties:.3f}",
                    f"{c.energy_vs_caladan:.3f}",
                )
                for c in cells
                if c.controller == "surgeguard"
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
