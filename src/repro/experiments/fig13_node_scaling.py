"""Fig. 13 — scaling from 1 to 4 nodes (1.75× surges, 2 s every 10 s).

When the application spreads across more nodes, each node keeps its
full core budget, so total headroom grows and the *resource constraint*
relaxes.  The paper observes:

* baselines allocate the abundant cores ever more wastefully, so
  SurgeGuard's core advantage grows (−6.5 % → −16.4 %) and so does its
  energy advantage (−14.2 % → −28.3 %);
* SurgeGuard's VV advantage *shrinks* (−67.2 % → −51.4 %): with more
  headroom per node it gets harder for any single container to hog a
  critical fraction of a node.

SurgeGuard runs one Escalator + FirstResponder per node with strictly
node-local state; upscale hints reach remote downstream containers only
by riding on RPC packets — multi-node runs are therefore also the
system-level test of the decentralization design.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.aggregate import CellResult, run_cell
from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig
from repro.experiments.scale import current_scale
from repro.services.registry import get_workload, node_budget

__all__ = ["Fig13Cell", "run_fig13", "NODE_COUNTS"]

NODE_COUNTS = (1, 2, 4)
SURGE_MAG = 1.75


@dataclass(frozen=True)
class Fig13Cell:
    workload: str
    n_nodes: int
    controller: str
    raw: CellResult
    vv_vs_parties: float
    cores_vs_parties: float
    energy_vs_parties: float
    vv_vs_caladan: float
    cores_vs_caladan: float
    energy_vs_caladan: float


def run_fig13(
    workload: str = "readUserTimeline",
    node_counts: Sequence[int] = NODE_COUNTS,
) -> List[Fig13Cell]:
    """Regenerate Fig. 13 on one workload across cluster sizes."""
    sc = current_scale()
    # Per-node budget frozen at the single-node value (paper: every node
    # has the same 52 workload cores regardless of cluster size).
    app = get_workload(workload).build()
    per_node = node_budget(app, n_nodes=1)
    controllers: Tuple[Tuple[str, Callable], ...] = (
        ("parties", spec("parties")),
        ("caladan", spec("caladan")),
        ("surgeguard", spec("surgeguard")),
    )
    out: List[Fig13Cell] = []
    for n_nodes in node_counts:
        cfg = ExperimentConfig(
            workload=workload,
            spike_magnitude=SURGE_MAG,
            spike_len=sc.spike_len,
            spike_period=sc.spike_period,
            spike_offset=sc.spike_offset,
            duration=sc.duration,
            warmup=sc.warmup,
            n_nodes=n_nodes,
            cores_per_node=float(per_node),
            placement="round_robin",
            profile_duration=sc.profile_duration,
        )
        cells: Dict[str, CellResult] = {}
        for label, factory in controllers:
            cells[label] = run_cell(
                dataclasses.replace(cfg, controller_factory=factory)
            )

        def ratio(a: float, b: float) -> float:
            return a / b if b > 0 else float("inf")

        for label, c in cells.items():
            out.append(
                Fig13Cell(
                    workload=workload,
                    n_nodes=n_nodes,
                    controller=label,
                    raw=c,
                    vv_vs_parties=ratio(c.violation_volume, cells["parties"].violation_volume),
                    cores_vs_parties=ratio(c.avg_cores, cells["parties"].avg_cores),
                    energy_vs_parties=ratio(c.energy, cells["parties"].energy),
                    vv_vs_caladan=ratio(c.violation_volume, cells["caladan"].violation_volume),
                    cores_vs_caladan=ratio(c.avg_cores, cells["caladan"].avg_cores),
                    energy_vs_caladan=ratio(c.energy, cells["caladan"].energy),
                )
            )
    return out


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.analysis.render import format_table

    cells = run_fig13()
    print(
        format_table(
            ["nodes", "VV/parties", "cores/parties", "E/parties", "VV/caladan"],
            [
                (
                    c.n_nodes,
                    f"{c.vv_vs_parties:.3f}",
                    f"{c.cores_vs_parties:.3f}",
                    f"{c.energy_vs_parties:.3f}",
                    f"{c.vv_vs_caladan:.3f}",
                )
                for c in cells
                if c.controller == "surgeguard"
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
