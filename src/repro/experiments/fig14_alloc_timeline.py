"""Fig. 14 — core allocations over time during a long surge.

readUserTimeline, one long 1.75× surge.  The paper (surge at 15–25 s of
a longer run; here the same shape on the scaled clock) shows:

* **Parties / CaladanAlgo** keep feeding ``user-timeline-service`` —
  whose execTime contains the hidden threadpool queue — until it holds
  ~50 % of the node's cores, while the actual bottleneck tier
  (``post-storage-service``, ``post-storage-memcached``) starves;
* **SurgeGuard** spreads cores across the tier from surge onset (the
  queueBuildup hint reaches downstream) and *revokes* low-sensitivity
  cores mid-surge (the paper's 18–20 s and 23–25 s dips).

The driver records full allocation timelines and distils the figure's
claims into numbers: per-service average allocation during the surge,
the hoarder's peak share, and SurgeGuard's mid-surge revocation count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.scale import current_scale
from repro.metrics.timeseries import StepSeries
from repro.services.registry import get_workload

__all__ = ["Fig14Result", "run_fig14", "FOCUS_SERVICES"]

#: The services Fig. 14 plots.
FOCUS_SERVICES = (
    "user-timeline-service",
    "post-storage-service",
    "post-storage-memcached",
)

SURGE_MAG = 1.75
SURGE_LEN = 6.0  # scaled version of the paper's 10 s surge


@dataclass
class Fig14Result:
    """Timelines and distilled statistics for one controller."""

    controller: str
    #: StepSeries of cores per service.
    timelines: Dict[str, StepSeries]
    #: Average cores per focus service during the surge window.
    surge_avg_cores: Dict[str, float]
    #: Peak share of the node's cores held by user-timeline-service.
    hoarder_peak_share: float
    #: Core revocations that happened *during* the surge (any service).
    mid_surge_revocations: int
    violation_volume: float
    surge_window: Tuple[float, float]


def _timelines(alloc_events, services, initials) -> Dict[str, StepSeries]:
    series = {s: StepSeries(0.0, initials[s]) for s in services}
    for t, name, cores in sorted(alloc_events):
        if name in series and t > 0.0:
            series[name].append(t, cores)
    return series


def run_fig14(workload: str = "readUserTimeline") -> List[Fig14Result]:
    """Regenerate Fig. 14 for the three controllers."""
    sc = current_scale()
    profile = get_workload(workload)
    app = profile.build()
    initials = {s.name: s.initial_cores for s in app.services}
    node_cores = None  # default budget
    surge_start = sc.warmup + 2.0
    surge_end = surge_start + SURGE_LEN
    results: List[Fig14Result] = []
    for label, factory in (
        ("parties", spec("parties")),
        ("caladan", spec("caladan")),
        ("surgeguard", spec("surgeguard")),
    ):
        cfg = ExperimentConfig(
            workload=workload,
            controller_factory=factory,
            spike_magnitude=SURGE_MAG,
            spike_len=SURGE_LEN,
            spike_period=1000.0,
            spike_offset=2.0,
            duration=SURGE_LEN + 6.0,
            warmup=sc.warmup,
            record_timelines=True,
            profile_duration=sc.profile_duration,
        )
        res = run_experiment(cfg)
        all_services = list(initials)
        tls = _timelines(res.alloc_events, all_services, initials)
        surge_avg = {
            s: tls[s].average(surge_start, surge_end) for s in FOCUS_SERVICES
        }
        node_budget_cores = sum(initials.values()) / 0.65
        peak_uts = max(
            v
            for t, v in tls["user-timeline-service"].changes()
            if t <= surge_end
        )
        # Count downward allocation steps inside the surge window.
        revocations = 0
        for s in all_services:
            changes = tls[s].changes()
            for (t0, v0), (t1, v1) in zip(changes, changes[1:]):
                if surge_start <= t1 <= surge_end and v1 < v0:
                    revocations += 1
        results.append(
            Fig14Result(
                controller=label,
                timelines=tls,
                surge_avg_cores=surge_avg,
                hoarder_peak_share=peak_uts / node_budget_cores,
                mid_surge_revocations=revocations,
                violation_volume=res.violation_volume,
                surge_window=(surge_start, surge_end),
            )
        )
    return results


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.analysis.render import format_table

    results = run_fig14()
    print(
        format_table(
            ["controller", *FOCUS_SERVICES, "uts peak share", "revocations", "VV (ms·s)"],
            [
                (
                    r.controller,
                    *(f"{r.surge_avg_cores[s]:.2f}" for s in FOCUS_SERVICES),
                    f"{r.hoarder_peak_share * 100:.0f}%",
                    r.mid_surge_revocations,
                    f"{r.violation_volume * 1e3:.2f}",
                )
                for r in results
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
