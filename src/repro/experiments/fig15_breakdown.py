"""Fig. 15 — per-mechanism breakdown of Escalator.

Four arms on two workloads (fixed-pool ``readUserTimeline`` vs.
connection-per-request ``recommendHotel``), all using the Parties
allocation skeleton:

1. **parties** — the plain baseline controller;
2. **+metrics** — Escalator with the new execMetric/queueBuildup
   candidate selection but *no* sensitivity machinery;
3. **+sensitivity** — Escalator with sensitivity priorities/revocation
   but the baselines' raw-execTime candidate test;
4. **escalator** — both mechanisms (the complete slow path; the fast
   path stays off, as in the paper's breakdown).

Paper shape: the new metrics help only the fixed-pool workload
(−23.5 % VV on readUserTimeline, ≈0 on recommendHotel — with unlimited
pools ``execMetric == execTime``); sensitivity helps both (−28 % /
−63 % VV and −5 % / −8 % cores); combining them compounds.

For a like-for-like comparison every Escalator arm runs at Parties'
500 ms decision interval.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.aggregate import CellResult, run_cell
from repro.exec.specs import ControllerSpec, spec
from repro.experiments.harness import ExperimentConfig
from repro.experiments.scale import current_scale

__all__ = ["Fig15Cell", "run_fig15", "ARMS", "WORKLOADS_F15"]

WORKLOADS_F15 = ("readUserTimeline", "recommendHotel")
SURGE_MAG = 1.75

#: Escalator decision interval used for the ablation (Parties parity).
_ABLATION_INTERVAL = 0.5


def _arm(new_metrics: bool, sensitivity: bool) -> ControllerSpec:
    return spec(
        "escalator",
        use_new_metrics=new_metrics,
        use_sensitivity=sensitivity,
        escalator_interval=_ABLATION_INTERVAL,
    )


ARMS: Tuple[Tuple[str, Callable], ...] = (
    ("parties", spec("parties")),
    ("+metrics", _arm(new_metrics=True, sensitivity=False)),
    ("+sensitivity", _arm(new_metrics=False, sensitivity=True)),
    ("escalator", _arm(new_metrics=True, sensitivity=True)),
)


@dataclass(frozen=True)
class Fig15Cell:
    workload: str
    arm: str
    raw: CellResult
    vv_vs_parties: float
    cores_vs_parties: float


def run_fig15(workloads: Sequence[str] = WORKLOADS_F15) -> List[Fig15Cell]:
    """Regenerate Fig. 15: the four arms on both workloads."""
    sc = current_scale()
    out: List[Fig15Cell] = []
    for workload in workloads:
        cfg = ExperimentConfig(
            workload=workload,
            spike_magnitude=SURGE_MAG,
            spike_len=sc.spike_len,
            spike_period=sc.spike_period,
            spike_offset=sc.spike_offset,
            duration=sc.duration,
            warmup=sc.warmup,
            profile_duration=sc.profile_duration,
        )
        cells: Dict[str, CellResult] = {}
        for arm, factory in ARMS:
            cells[arm] = run_cell(
                dataclasses.replace(cfg, controller_factory=factory)
            )
        base = cells["parties"]
        for arm, c in cells.items():
            out.append(
                Fig15Cell(
                    workload=workload,
                    arm=arm,
                    raw=c,
                    vv_vs_parties=(
                        c.violation_volume / base.violation_volume
                        if base.violation_volume > 0
                        else float("inf")
                    ),
                    cores_vs_parties=(
                        c.avg_cores / base.avg_cores if base.avg_cores > 0 else 1.0
                    ),
                )
            )
    return out


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.analysis.render import format_table

    cells = run_fig15()
    print(
        format_table(
            ["workload", "arm", "VV/parties", "cores/parties"],
            [
                (
                    c.workload,
                    c.arm,
                    f"{c.vv_vs_parties:.3f}",
                    f"{c.cores_vs_parties:.3f}",
                )
                for c in cells
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
