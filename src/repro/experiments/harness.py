"""Profiling + measured-run harness (the artifact's execution recipe).

The paper's §V protocol, scaled:

* the workload generator warms the system up, then measures;
* spikes are injected on a fixed period during measurement;
* per-container targets come from a separate low-load profiling pass
  (2× measured averages — §IV "SurgeGuard Parameters");
* the end-to-end QoS limit (wrk2 ``-qos``) is set relative to the
  profiled low-load end-to-end latency;
* reported: violation volume, P98, average cores and energy over the
  measurement window only.

Profiling runs in its own simulation with a :class:`NullController` so
the controller under test never sees profiling traffic — and profiling
results are memoized per (workload, topology) since they are
controller-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.shard import shards_from_env
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.network import NetworkConfig
from repro.controllers.base import Controller, ControllerStats
from repro.controllers.null import NullController
from repro.controllers.targets import TargetConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.metrics.summary import LatencySummary, summarize
from repro.services.registry import get_workload, node_budget
from repro.services.taskgraph import AppSpec
from repro.workload.arrivals import RateSchedule
from repro.workload.generator import OpenLoopClient

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "profile_targets",
    "run_experiment",
    "clear_profile_cache",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell: workload × spike pattern × controller."""

    #: Registry key ("chain", "readUserTimeline", ...).
    workload: str
    #: Builds a *fresh* controller per run.  Prefer a named, picklable
    #: :class:`repro.exec.specs.ControllerSpec` (itself a zero-arg
    #: callable, resolved against the spec registry inside worker
    #: processes) — required for parallel execution via
    #: ``run_cell(jobs>1)``.  Bare callables remain accepted for
    #: in-process use (tests, one-off oracles with rich arguments).
    controller_factory: Callable[[], Controller] = NullController
    #: Custom application (Fig. 4/5 micro-topologies); overrides
    #: ``workload`` lookup when set, in which case ``base_rate`` is
    #: required.
    app: Optional[AppSpec] = None
    #: Base request rate; ``None`` = the registry's scaled default.
    base_rate: Optional[float] = None
    #: Surge magnitude as a multiple of base rate (``None`` = no spikes).
    spike_magnitude: Optional[float] = 1.75
    #: Surge duration (paper §VI-B default: 2 s; scaled default 1 s).
    spike_len: float = 1.0
    #: Surge period (paper: every 10 s; scaled default 5 s).
    spike_period: float = 5.0
    #: First surge starts this long into the measurement window.
    spike_offset: float = 1.0
    #: Measurement window length (after warmup).
    duration: float = 10.0
    #: Warmup length (controller active, no spikes, not measured).
    warmup: float = 3.0
    n_nodes: int = 1
    #: Per-node workload cores; ``None`` = paper-style budget from the
    #: initial allocation (≈ initial / 0.65).
    cores_per_node: Optional[float] = None
    placement: str = "round_robin"
    seed: int = 1
    #: QoS limit = this × profiled low-load mean end-to-end latency.
    qos_multiplier: float = 2.5
    #: Per-container targets = this × profiled averages (paper: 2).
    target_multiplier: float = 2.0
    #: Per-packet progress target (expectedTimeFromStart) multiplier —
    #: looser than the window-average targets (see TargetConfig).
    tfs_multiplier: float = 4.0
    #: Low-load profiling pass length (simulated seconds).
    profile_duration: float = 3.0
    #: Profiling rate as a fraction of base rate ("low load").
    profile_rate_frac: float = 0.25
    pacing: str = "uniform"
    #: Record allocation/frequency timelines (Fig. 14).
    record_timelines: bool = False
    #: Keep per-request traces in runtimes (slow; figures only).
    trace_runtimes: bool = False
    #: Extra simulated time after injection stops, to drain in-flight
    #: requests before reading final metrics.
    drain: float = 2.0
    #: Injected network-latency surges, ``(start, end, extra_seconds)``
    #: triples in absolute simulated time (the abstract's second surge
    #: type).  Applied to the measured run only — profiling stays clean.
    latency_surges: Tuple[Tuple[float, float, float], ...] = ()
    #: Injected faults + RPC resilience policy (see :mod:`repro.faults`).
    #: Applied to the measured run only — profiling stays clean, and the
    #: profile cache key deliberately excludes faults so faulty and
    #: fault-free cells of one workload share a profiling pass.
    faults: Optional[FaultPlan] = None
    #: ``None`` = legacy unreplicated routing.  An int >= 1 arms the
    #: replica/LB tier on the *measured* run with that many initial
    #: replicas per service (profiling always runs unreplicated — the
    #: per-service targets are replica-independent, and the profile
    #: cache stays shared across replica settings).  ``replicas=1``
    #: with the default budget is bit-identical to unreplicated.
    replicas: Optional[int] = None
    #: Load-balancing policy when the replica tier is armed.
    lb_policy: str = "round_robin"
    #: Size the node budget to host this many replicas per service
    #: (``None`` keeps the unreplicated budget — required for the
    #: replicas=1 identity cells).
    replica_capacity: Optional[int] = None
    #: Sharded simulation mode (DESIGN.md §12).  ``None`` = legacy
    #: single-process path, untouched; the ``REPRO_SHARDS`` environment
    #: variable then supplies a run-wide default.  ``1`` arms the
    #: bit-identical pass-through; ``K >= 2`` partitions the nodes
    #: across K event loops with conservative time sync (requires
    #: ``replicas=None``, no faults, and a shardable controller).
    shards: Optional[int] = None
    #: Network fabric override (``None`` = default
    #: :class:`~repro.cluster.network.NetworkConfig`).  The sharded
    #: validate family sets ``jitter=0`` here so fingerprints are
    #: invariant to the shard count.
    network: Optional[NetworkConfig] = None

    def resolved_rate(self) -> float:
        if self.base_rate is not None:
            return self.base_rate
        if self.app is not None:
            raise ValueError("custom app experiments must set base_rate")
        return get_workload(self.workload).base_rate

    def resolved_app(self) -> AppSpec:
        if self.app is not None:
            return self.app
        return get_workload(self.workload).build()


@dataclass
class ExperimentResult:
    """Everything one run reports."""

    config: ExperimentConfig
    controller_name: str
    targets: TargetConfig
    #: Latency summary over requests *arriving* in the measurement window.
    summary: LatencySummary
    #: Time-averaged allocated cores over the measurement window.
    avg_cores: float
    #: Idle-subtracted energy (J) over the measurement window.
    energy: float
    controller_stats: ControllerStats
    #: (arrival_time, latency) of measured completed requests.
    latency_trace: np.ndarray
    #: Allocation change events (t, container, cores) when recorded.
    alloc_events: List[Tuple[float, str, float]] = field(default_factory=list)
    #: Frequency change events (t, container, Hz) when recorded.
    freq_events: List[Tuple[float, str, float]] = field(default_factory=list)
    outstanding: int = 0
    #: FirstResponder packet inspections (SurgeGuard runs only).
    fast_path_packets: int = 0
    #: FirstResponder slack violations detected (SurgeGuard runs only).
    fast_path_violations: int = 0
    #: Requests that completed as errors (always 0 without faults).
    errors: int = 0
    #: Requests injected over the whole run (warmup + measurement).
    requests_sent: int = 0
    #: Injector counter snapshot (``None`` on fault-free runs).
    fault_stats: Optional[Dict[str, int]] = None
    #: Sharded-run merge record (``None`` on unsharded and shards=1 runs
    #: — the pass-through leaves results byte-identical).  Carries the
    #: fleet-merged counters the fingerprint layer would otherwise read
    #: off the single sim/cluster, plus the boundary-conservation ledger
    #: and per-shard CPU accounting (see repro.exec.sharded).
    shard_stats: Optional[Dict[str, object]] = None

    @property
    def violation_volume(self) -> float:
        return self.summary.violation_volume

    @property
    def p98(self) -> float:
        return self.summary.p98

    @property
    def error_rate(self) -> float:
        """Errored fraction of every injected request (whole run)."""
        return self.errors / self.requests_sent if self.requests_sent else 0.0


# --------------------------------------------------------------------------
# Profiling
# --------------------------------------------------------------------------

_PROFILE_CACHE: Dict[tuple, TargetConfig] = {}


def clear_profile_cache() -> None:
    """Drop memoized profiling results (tests use this for isolation)."""
    _PROFILE_CACHE.clear()


def _build_cluster(
    cfg: ExperimentConfig,
    app: AppSpec,
    seed: int,
    *,
    record: bool,
    replicated: bool = False,
) -> Tuple[Simulator, Cluster]:
    armed = replicated and cfg.replicas is not None
    cores = cfg.cores_per_node
    if cores is None:
        capacity = cfg.replica_capacity if (armed and cfg.replica_capacity) else 1
        cores = node_budget(app, n_nodes=cfg.n_nodes, replica_capacity=capacity)
    sim = Simulator()
    rng = RngRegistry(seed)
    # The network override is threaded only when set, so the default
    # construction stays byte-for-byte what it always was.
    extra = {} if cfg.network is None else {"network": cfg.network}
    cluster_cfg = ClusterConfig(
        n_nodes=cfg.n_nodes,
        cores_per_node=cores,
        placement=cfg.placement if cfg.n_nodes > 1 else "pack",
        record_timelines=record,
        trace_runtimes=cfg.trace_runtimes,
        replicas=cfg.replicas if armed else None,
        lb_policy=cfg.lb_policy,
        **extra,
    )
    return sim, Cluster(sim, app, cluster_cfg, rng)


def profile_targets(cfg: ExperimentConfig) -> TargetConfig:
    """Low-load profiling pass → :class:`TargetConfig` (memoized).

    The cache key covers everything that changes the profiled values:
    workload, topology, rates, and the multipliers.
    """
    key = (
        cfg.workload,
        cfg.app,
        cfg.n_nodes,
        cfg.cores_per_node,
        cfg.placement,
        cfg.resolved_rate(),
        cfg.profile_rate_frac,
        cfg.profile_duration,
        cfg.qos_multiplier,
        cfg.target_multiplier,
        cfg.tfs_multiplier,
        # Jitter/latency parameters change the profiled latencies;
        # ``shards`` deliberately does NOT enter the key — profiling
        # always runs serially and its targets are shard-independent.
        cfg.network,
    )
    cached = _PROFILE_CACHE.get(key)
    if cached is not None:
        return cached

    app = cfg.resolved_app()
    sim, cluster = _build_cluster(cfg, app, seed=0, record=False)
    rate = cfg.resolved_rate() * cfg.profile_rate_frac
    client = OpenLoopClient(
        sim, cluster, RateSchedule(rate), duration=cfg.profile_duration
    )
    client.begin()
    sim.run(until=cfg.profile_duration + 1.0)

    t, lat = client.stats.completed_arrays()
    if lat.size == 0:
        raise RuntimeError(f"profiling produced no completions for {cfg.workload}")
    warm = t > cfg.profile_duration / 3.0
    qos = cfg.qos_multiplier * float(lat[warm].mean())

    # The whole-run averages per container are exactly what the artifact
    # computes ("collect the values for 1–2 mins and average").
    windows = {}
    for name, runtime in cluster.runtimes.items():
        if runtime.total_count == 0:
            raise RuntimeError(f"service {name!r} saw no profiling traffic")
        windows[name] = _lifetime_window(runtime)
    targets = TargetConfig.from_windows(
        windows,
        multiplier=cfg.target_multiplier,
        tfs_multiplier=cfg.tfs_multiplier,
        qos_target=qos,
    )
    _PROFILE_CACHE[key] = targets
    return targets


def _lifetime_window(runtime):
    """Aggregate a runtime's lifetime totals into a window-like record."""
    from repro.cluster.runtime import RuntimeWindow

    n = runtime.total_count
    avg_exec = runtime.total_exec_time / n
    avg_wait = runtime.total_conn_wait / n
    avg_metric = runtime.total_exec_metric / n
    return RuntimeWindow(
        t_start=0.0,
        t_end=runtime.sim.now,
        count=n,
        avg_exec_time=avg_exec,
        avg_conn_wait=avg_wait,
        avg_exec_metric=avg_metric,
        queue_buildup=(avg_exec / avg_metric) if avg_metric > 0 else 1.0,
        upscale_hints=0,
        max_hint_ttl=0,
        avg_time_from_start=runtime.total_time_from_start / max(runtime.total_arrivals, 1),
    )


# --------------------------------------------------------------------------
# Measured run
# --------------------------------------------------------------------------


def run_experiment(
    cfg: ExperimentConfig,
    targets: Optional[TargetConfig] = None,
    *,
    monitors=None,
    probe: Optional[Callable[[Simulator, Cluster], None]] = None,
) -> ExperimentResult:
    """Execute one measured run and summarize it.

    ``targets`` may be passed explicitly (ablations that must share one
    profiling pass); otherwise :func:`profile_targets` supplies them.

    ``monitors`` is an optional
    :class:`repro.validate.monitors.MonitorSet`: it is armed on the
    built cluster right before the run starts and finalized after the
    drain, accumulating any invariant violations on itself.  ``None``
    (the default) leaves every hot path untouched.

    ``probe`` is called as ``probe(sim, cluster)`` after the run drains
    (and after monitor finalization) so callers can read end-state that
    the picklable :class:`ExperimentResult` deliberately does not carry
    — the scenario-fingerprint extractor uses this.
    """
    if targets is None:
        targets = profile_targets(cfg)
    if cfg.replicas is not None:
        # Fresh copy with replica-name fallback — never mutate the
        # (possibly cached, shared) profiled TargetConfig.
        targets = targets.with_replica_fallback()
    shards = cfg.shards if cfg.shards is not None else shards_from_env()
    if shards is not None and shards > 1:
        # Partitioned path: K event loops with conservative sync.
        # Imported lazily — repro.exec.sharded imports this module.
        from repro.exec.sharded import run_sharded

        return run_sharded(
            cfg, targets, shards=shards, monitors=monitors, probe=probe
        )
    app = cfg.resolved_app()
    sim, cluster = _build_cluster(
        cfg, app, seed=cfg.seed, record=cfg.record_timelines, replicated=True
    )
    if shards is not None:
        # shards=1: the boundary is armed with an empty remote set — the
        # proven bit-identical pass-through (no divert, no RNG change).
        from repro.exec.sharded import arm_passthrough

        arm_passthrough(cluster)
    for surge_start, surge_end, surge_extra in cfg.latency_surges:
        cluster.network.add_latency_surge(surge_start, surge_end, surge_extra)

    base_rate = cfg.resolved_rate()
    t_measure = cfg.warmup
    t_end = cfg.warmup + cfg.duration
    if cfg.spike_magnitude is not None:
        schedule = RateSchedule.periodic(
            base_rate,
            magnitude=cfg.spike_magnitude,
            spike_len=cfg.spike_len,
            period=cfg.spike_period,
            first=t_measure + cfg.spike_offset,
            until=t_end,
        )
    else:
        schedule = RateSchedule(base_rate)

    rng = RngRegistry(cfg.seed + 7919)
    client = OpenLoopClient(
        sim,
        cluster,
        schedule,
        duration=t_end,
        pacing=cfg.pacing,
        rng=rng.stream("client") if cfg.pacing == "poisson" else None,
    )

    controller = cfg.controller_factory()
    controller.attach(sim, cluster, targets)

    # Arm faults after attach (escalators exist for the restart hook)
    # and before monitors (so conservation checks see the RPC layer) and
    # before controller.start (stall gates must precede the decision
    # loops' method binding in PeriodicProcess).
    injector = None
    if cfg.faults is not None and not cfg.faults.empty:
        injector = FaultInjector(cfg.faults)
        injector.arm(sim, cluster, controller=controller)

    # Snapshot accounting integrals at the measurement boundary.
    snap: Dict[str, Tuple[float, float]] = {}

    def take_snapshot() -> None:
        cluster.sync_all()
        for name, c in cluster.containers.items():
            snap[name] = (c.alloc_core_seconds, c.busy_weighted_seconds)

    sim.schedule_at(t_measure, take_snapshot)

    if monitors is not None:
        monitors.arm(sim, cluster, controller=controller, client=client)
    client.begin()
    controller.start()
    sim.run(until=t_end + cfg.drain)
    controller.stop()
    cluster.sync_all()
    if monitors is not None:
        monitors.finalize()
    if probe is not None:
        probe(sim, cluster)
    fault_stats = None
    if injector is not None:
        fault_stats = injector.fault_stats()
        injector.disarm()

    # Measurement-window metrics.
    t, lat = client.stats.completed_arrays()
    mask = t >= t_measure
    t_m, lat_m = t[mask], lat[mask]
    summary = summarize(t_m, lat_m, targets.qos_target)

    dvfs = cluster.config.dvfs
    window = (t_end + cfg.drain) - t_measure
    alloc_cs = 0.0
    energy = 0.0
    for name, c in cluster.containers.items():
        # Containers born after the measurement boundary (scaled-out
        # replicas) have no snapshot: their whole accrual is in-window.
        a0, b0 = snap.get(name, (0.0, 0.0))
        alloc_cs += c.alloc_core_seconds - a0
        energy += dvfs.static_w * (c.alloc_core_seconds - a0)
        energy += dvfs.dyn_w_at_fmax * (c.busy_weighted_seconds - b0)

    return ExperimentResult(
        config=cfg,
        controller_name=controller.name,
        targets=targets,
        summary=summary,
        avg_cores=alloc_cs / window,
        energy=energy,
        controller_stats=controller.stats,
        latency_trace=np.column_stack([t_m, lat_m]) if t_m.size else np.empty((0, 2)),
        alloc_events=list(cluster.alloc_events),
        freq_events=list(cluster.freq_events),
        outstanding=client.stats.outstanding,
        fast_path_packets=getattr(controller, "packets_inspected", 0),
        fast_path_violations=getattr(controller, "fast_path_violations", 0),
        errors=client.stats.errored,
        requests_sent=client.stats.sent,
        fault_stats=fault_stats,
    )
