"""Scaling-strategy headline: vertical vs horizontal vs hybrid.

Not a numbered figure — the §VII Discussion claim, quantified as the
repo's headline replica experiment: the same periodic surge handled by

* **vertical** — SurgeGuard scaling cores/frequency of single
  containers (the paper's system, unreplicated);
* **horizontal** — an HPA-style autoscaler actuating replica counts
  behind the load-balancer tier, paying a realistic launch delay while
  a new replica warms;
* **hybrid** — both at once: HPA launches replicas, SurgeGuard holds
  QoS during the launch gap.

Reported per strategy: violation volume, P98, idle-subtracted energy,
and core-seconds actually allocated — the cost axis where horizontal
scaling's coarse replica-sized grants show up against vertical
scaling's fractional-core ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.scale import current_scale

__all__ = ["StrategyRow", "run_horizontal"]

#: Surge magnitude shared by every arm (the §VII bench's 1.75×).
_SPIKE_MAGNITUDE = 1.75

#: Replica spin-up latency charged to the horizontal/hybrid arms (s).
_LAUNCH_DELAY = 3.0

#: Workloads compared (one chain, one fan-out family).
_WORKLOADS = ("chain", "readUserTimeline")


@dataclass(frozen=True)
class StrategyRow:
    strategy: str
    workload: str
    violation_volume: float
    p98: float
    #: Idle-subtracted energy (J) over the measurement window.
    energy: float
    #: Allocated core-seconds over the measurement window.
    core_seconds: float
    avg_cores: float
    #: Core upscale actions (vertical grants or replica launches).
    upscale_actions: int
    downscale_actions: int


def _strategy_config(strategy: str, workload: str) -> ExperimentConfig:
    sc = current_scale()
    replicas: Optional[int] = None
    capacity: Optional[int] = None
    if strategy == "vertical":
        factory = spec("surgeguard")
    else:
        hpa = dict(interval=1.0, launch_delay=_LAUNCH_DELAY)
        factory = spec("hpa" if strategy == "horizontal" else "hybrid", **hpa)
        replicas, capacity = 1, 3
    return ExperimentConfig(
        workload=workload,
        controller_factory=factory,
        spike_magnitude=_SPIKE_MAGNITUDE,
        spike_len=sc.spike_len,
        spike_period=sc.spike_period,
        spike_offset=sc.spike_offset,
        duration=sc.duration,
        warmup=sc.warmup,
        profile_duration=sc.profile_duration,
        replicas=replicas,
        replica_capacity=capacity,
    )


def run_horizontal() -> List[StrategyRow]:
    """Run the 3-strategy × workload grid and tabulate QoS vs cost."""
    rows: List[StrategyRow] = []
    for workload in _WORKLOADS:
        for strategy in ("vertical", "horizontal", "hybrid"):
            res = run_experiment(_strategy_config(strategy, workload))
            window = res.config.duration
            stats = res.controller_stats
            rows.append(
                StrategyRow(
                    strategy=strategy,
                    workload=workload,
                    violation_volume=res.summary.violation_volume,
                    p98=res.summary.p98,
                    energy=res.energy,
                    core_seconds=res.avg_cores * window,
                    avg_cores=res.avg_cores,
                    upscale_actions=stats.upscale_core_actions,
                    downscale_actions=stats.downscale_core_actions,
                )
            )
    return rows


def main() -> None:  # pragma: no cover - exercised via run_all
    from repro.analysis.render import format_table

    rows = run_horizontal()
    print(
        format_table(
            ["workload", "strategy", "viol-vol", "p98(ms)", "energy(J)",
             "core-s", "avg-cores", "up", "down"],
            [
                [
                    r.workload,
                    r.strategy,
                    f"{r.violation_volume:.4f}",
                    f"{r.p98 * 1e3:.1f}",
                    f"{r.energy:.1f}",
                    f"{r.core_seconds:.1f}",
                    f"{r.avg_cores:.2f}",
                    str(r.upscale_actions),
                    str(r.downscale_actions),
                ]
                for r in rows
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
