"""§VI-D — SurgeGuard overheads.

The paper reports: 0.26 µs added per packet by FirstResponder's primary
thread (<0.5 % of packet processing), 0.44 µs to enqueue a work item,
2.1 µs for the worker to update the frequency MSR (off the critical
path), <3 % CPU utilization on the controller cores, and no change to
the steady-state load-latency curve.

The driver measures the modeled analogues end-to-end:

* per-packet added latency = the RX-hook cost actually charged by the
  network (validated against the config constant);
* detection→boost latency = enqueue + MSR write;
* controller "CPU utilization" = (decision cycles × modeled per-cycle
  cost + packets × hook cost) / (cores reserved × elapsed);
* steady-state impact: low-load p98 with and without FirstResponder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import SurgeGuardConfig
from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.scale import current_scale

__all__ = ["OverheadReport", "run_overheads"]

#: Modeled Escalator per-cycle cost (reading shared files + scoring a
#: handful of containers; sub-millisecond in the paper's measurements).
ESCALATOR_CYCLE_COST = 200e-6

#: Cores the paper reserves for SurgeGuard on each node.
RESERVED_CORES = 3.0


@dataclass(frozen=True)
class OverheadReport:
    """Measured overheads of one steady-state run."""

    hook_cost: float
    boost_latency: float
    packets_inspected: int
    decision_cycles: int
    controller_cpu_util: float
    p98_with_fr: float
    p98_without_fr: float

    @property
    def steady_state_impact(self) -> float:
        """Relative p98 change from enabling FirstResponder at low load."""
        if self.p98_without_fr <= 0:
            return 0.0
        return self.p98_with_fr / self.p98_without_fr - 1.0


def run_overheads(workload: str = "chain") -> OverheadReport:
    """Measure §VI-D's overhead claims on a steady-state run."""
    sc = current_scale()
    cfg_base = ExperimentConfig(
        workload=workload,
        spike_magnitude=None,
        duration=4.0,
        warmup=1.0,
        profile_duration=sc.profile_duration,
        # Low load: overheads are defined against the steady state.
        base_rate=None,
    )
    import dataclasses

    sg_cfg = SurgeGuardConfig()
    with_fr = run_experiment(
        dataclasses.replace(cfg_base, controller_factory=spec("surgeguard"))
    )
    without_fr = run_experiment(
        dataclasses.replace(cfg_base, controller_factory=spec("escalator"))
    )
    elapsed = cfg_base.duration + cfg_base.warmup + cfg_base.drain
    busy = (
        with_fr.fast_path_packets * sg_cfg.hook_cost
        + with_fr.controller_stats.decision_cycles * ESCALATOR_CYCLE_COST
    )
    return OverheadReport(
        hook_cost=sg_cfg.hook_cost,
        boost_latency=sg_cfg.enqueue_cost + sg_cfg.msr_cost,
        packets_inspected=with_fr.fast_path_packets,
        decision_cycles=with_fr.controller_stats.decision_cycles,
        controller_cpu_util=busy / (RESERVED_CORES * elapsed),
        p98_with_fr=with_fr.p98,
        p98_without_fr=without_fr.p98,
    )


def main() -> None:  # pragma: no cover - exercised via benchmarks
    r = run_overheads()
    print(f"hook cost:           {r.hook_cost * 1e6:.2f} us/packet (paper: 0.26)")
    print(f"detect->boost:       {r.boost_latency * 1e6:.2f} us (paper: 0.44+2.1)")
    print(f"packets inspected:   {r.packets_inspected}")
    print(f"controller CPU util: {r.controller_cpu_util * 100:.2f}% (paper: <3%)")
    print(
        f"steady-state p98:    {r.p98_with_fr * 1e3:.3f}ms with FR vs "
        f"{r.p98_without_fr * 1e3:.3f}ms without "
        f"({r.steady_state_impact * 100:+.2f}%)"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
