"""Resilience under injected faults: SurgeGuard vs Parties vs Null.

Not a paper figure — the companion experiment to :mod:`repro.faults`:
every fault scenario of the validation matrix (loss burst, mid-chain
crash during a surge, stalled decision loop) is run under the no-op
baseline, the strongest reactive baseline, and SurgeGuard, and the
violation volume is reported side by side with the *error rate* the RPC
resilience layer exposes.  The paper's qualitative claim transfers to
faults: the data-plane fast path keeps reacting when the control loop
is wedged, and faster backlog drain after a disruption shows up as both
fewer QoS violations and fewer timed-out requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.harness import run_experiment
from repro.validate.scenarios import fault_matrix

__all__ = ["ResilienceRow", "run_resilience"]


@dataclass(frozen=True)
class ResilienceRow:
    scenario: str
    controller: str
    violation_volume: float
    #: Errored fraction of every injected request (whole run).
    error_rate: float
    errors: int
    completed: int
    p98: float
    rpc_retries: int
    #: Timeouts failed fast by the retry-budget storm brake.
    rpc_fail_fast: int


def run_resilience() -> List[ResilienceRow]:
    """Run the 3×3 fault grid and tabulate violations vs errors."""
    rows: List[ResilienceRow] = []
    for cell in fault_matrix():
        res = run_experiment(cell.config)
        stats = res.fault_stats or {}
        rows.append(
            ResilienceRow(
                scenario=cell.scenario,
                controller=cell.controller,
                violation_volume=res.summary.violation_volume,
                error_rate=res.error_rate,
                errors=res.errors,
                completed=res.summary.count,
                p98=res.summary.p98,
                rpc_retries=stats.get("rpc_retries", 0),
                rpc_fail_fast=stats.get("rpc_fail_fast", 0),
            )
        )
    return rows


def main() -> None:  # pragma: no cover - exercised via run_all
    from repro.analysis.render import format_table

    rows = run_resilience()
    print(
        format_table(
            ["scenario", "controller", "viol-vol", "err-rate", "errors",
             "completed", "p98(ms)", "retries", "fail-fast"],
            [
                [
                    r.scenario,
                    r.controller,
                    f"{r.violation_volume:.4f}",
                    f"{r.error_rate:.3f}",
                    str(r.errors),
                    str(r.completed),
                    f"{r.p98 * 1e3:.1f}",
                    str(r.rpc_retries),
                    str(r.rpc_fail_fast),
                ]
                for r in rows
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
