"""Regenerate the entire evaluation from the command line.

``python -m repro.experiments.run_all [--fast] [--only fig11,fig14]
[--out results/] [--jobs N]``

Runs every table/figure driver, prints each one's paper-shaped rows, and
writes machine-readable CSVs under ``--out``.  This is the artifact's
"analysis step", automated (the original artifact does it manually).

The figure drivers are mutually independent, so with ``--jobs N``
(default: every core) up to ``N`` of them run concurrently in worker
processes; each worker's stdout is captured and replayed in submission
order, so the output reads identically to a serial run.
"""

from __future__ import annotations

import argparse
import contextlib
import csv
import dataclasses
import io
import math
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["main", "EXPERIMENTS"]


def _flat_value(v):
    """CSV-friendly scalarization of one field value.

    Scalars pass through; sequences of scalars are flattened to a
    ``;``-joined string; arrays are summarized by shape; anything else
    is stringified.  Nothing is silently dropped.  Non-finite floats
    (``inf``/``nan``) are stringified: they are not valid JSON, and CSV
    consumers parsing the export as JSON-typed columns would choke.
    """
    if isinstance(v, float) and not math.isfinite(v):
        return str(v)
    if isinstance(v, (int, float, str, bool)) or v is None:
        return v
    if isinstance(v, (tuple, list)):
        if all(isinstance(x, (int, float, str, bool)) for x in v):
            return ";".join(_fmt(x) for x in v)
        return f"<{type(v).__name__} len={len(v)}>"
    shape = getattr(v, "shape", None)  # ndarray-likes: shape, not payload
    if shape is not None:
        return f"<array shape={tuple(shape)}>"
    return str(v)


def _rows_of(result) -> List[dict]:
    """Conversion of a driver result to flat dict rows (CSV export)."""
    if isinstance(result, dict):
        return [
            {"key": k, "value": _flat_value(v)} for k, v in result.items()
        ]
    rows = []
    for item in result:
        if dataclasses.is_dataclass(item):
            d = {}
            for f in dataclasses.fields(item):
                v = getattr(item, f.name)
                if dataclasses.is_dataclass(v):
                    for sub in dataclasses.fields(v):
                        d[f"{f.name}.{sub.name}"] = _flat_value(
                            getattr(v, sub.name)
                        )
                else:
                    d[f.name] = _flat_value(v)
            rows.append(d)
        else:
            rows.append({"value": _flat_value(item)})
    return rows


def _driver(module: str, fn: str = "main", data_fn: str | None = None):
    def run(out_dir: str | None, name: str) -> None:
        mod = __import__(f"repro.experiments.{module}", fromlist=["*"])
        if data_fn is None:
            # Modules whose result is inherently presentational.
            getattr(mod, fn)()
            return
        result = getattr(mod, data_fn)()  # run the experiment exactly once
        rows = _rows_of(result)
        if rows:
            from repro.analysis.render import format_table

            headers = sorted(rows[0])
            print(
                format_table(
                    headers,
                    [
                        [_fmt(r.get(h, "")) for h in headers]
                        for r in rows
                    ],
                )
            )
        if out_dir and rows:
            path = os.path.join(out_dir, f"{name}.csv")
            with open(path, "w", newline="") as fh:
                writer = csv.DictWriter(fh, fieldnames=sorted(rows[0]))
                writer.writeheader()
                for r in rows:
                    writer.writerow({k: r.get(k, "") for k in sorted(rows[0])})
            print(f"  wrote {path}")

    return run


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


#: name -> runner.  data_fn (when set) also exports CSV.
EXPERIMENTS: Dict[str, Callable] = {
    "table1": _driver("table1_controllers", data_fn="run_table1"),
    "table3": _driver("table3_workloads", data_fn="run_table3"),
    "fig04": _driver("fig04_detection_delay", data_fn="run_fig04"),
    "fig05": _driver("fig05_threading", data_fn="run_fig05"),
    "fig06": _driver("fig06_sensitivity", data_fn="run_fig06"),
    "fig10": _driver("fig10_short_surges", data_fn="run_fig10"),
    "fig11": _driver("fig11_long_surges", data_fn="run_fig11"),
    "fig12": _driver("fig12_surge_duration", data_fn="run_fig12"),
    "fig13": _driver("fig13_node_scaling", data_fn="run_fig13"),
    "fig14": _driver("fig14_alloc_timeline", data_fn=None),
    "fig15": _driver("fig15_breakdown", data_fn="run_fig15"),
    "overheads": _driver("overheads", data_fn=None),
    "resilience": _driver("resilience", data_fn="run_resilience"),
    "horizontal": _driver("horizontal", data_fn="run_horizontal"),
    "shootout": _driver("shootout", data_fn="run_shootout"),
}


def _run_captured(name: str, out_dir: Optional[str]) -> Tuple[str, str, float]:
    """Worker entry: run one driver with stdout captured.

    Looked up by name so only strings cross the process boundary; the
    worker inherits ``REPRO_FAST``/``REPRO_REPS`` through the environment.
    """
    t0 = time.time()
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        EXPERIMENTS[name](out_dir, name)
    return name, buf.getvalue(), time.time() - t0


def _run_parallel(selected: List[str], out_dir: Optional[str], jobs: int) -> None:
    """Fan independent drivers out across ``jobs`` worker processes.

    Output is replayed in submission order as results arrive, so logs
    stay deterministic while the wall clock shrinks to roughly the
    longest driver (plus queueing at ``jobs`` slots).
    """
    with ProcessPoolExecutor(max_workers=min(jobs, len(selected))) as pool:
        futures = [pool.submit(_run_captured, name, out_dir) for name in selected]
        for fut in futures:
            name, text, dt = fut.result()
            print(f"\n===== {name} =====")
            sys.stdout.write(text)
            print(f"  [{name} done in {dt:.0f}s]")


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--only",
        help="comma-separated experiment ids (default: all)",
        default=None,
    )
    parser.add_argument(
        "--fast", action="store_true", help="smoke scale (sets REPRO_FAST=1)"
    )
    parser.add_argument(
        "--out", default=None, help="directory for CSV exports (optional)"
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="concurrent figure drivers (default: all CPU cores)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.fast:
        os.environ["REPRO_FAST"] = "1"
    if args.out:
        os.makedirs(args.out, exist_ok=True)

    jobs = (os.cpu_count() or 1) if args.jobs is None else args.jobs
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")

    selected = list(EXPERIMENTS)
    if args.only:
        selected = [s.strip() for s in args.only.split(",") if s.strip()]
        unknown = [s for s in selected if s not in EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiment(s): {unknown}; see --list")

    t_start = time.time()
    if jobs > 1 and len(selected) > 1:
        _run_parallel(selected, args.out, jobs)
    else:
        for name in selected:
            print(f"\n===== {name} =====")
            t0 = time.time()
            EXPERIMENTS[name](args.out, name)
            print(f"  [{name} done in {time.time() - t0:.0f}s]")
    print(f"\nall done in {time.time() - t_start:.0f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
