"""Experiment scale knobs shared by all figure drivers.

The testbed protocol (30 s warm-up + 60 s measurement, 2 s surges every
10 s, multi-krps) is scaled so that each figure regenerates in minutes
of wall-clock: surges keep their *paper* durations and magnitudes, but
the warm-up, measurement window, and surge period shrink.  ``REPRO_FAST=1``
shrinks further for CI-style smoke runs; ``REPRO_REPS`` controls the
repetition protocol (see :mod:`repro.analysis.aggregate`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "current_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Timing constants every figure driver derives its windows from."""

    warmup: float
    #: Measurement window for long-surge experiments (Figs. 11–13).
    duration: float
    #: Surge period within the window (paper: 10 s).
    spike_period: float
    #: Default surge duration (paper: 2 s).
    spike_len: float
    #: Offset of the first surge into the measurement window.
    spike_offset: float
    #: Low-load profiling pass length.
    profile_duration: float


_STANDARD = ExperimentScale(
    warmup=3.0,
    duration=10.0,
    spike_period=10.0,
    spike_len=2.0,
    spike_offset=1.0,
    profile_duration=3.0,
)

_FAST = ExperimentScale(
    warmup=2.0,
    duration=6.0,
    spike_period=6.0,
    spike_len=2.0,
    spike_offset=0.5,
    profile_duration=2.0,
)


def current_scale() -> ExperimentScale:
    """The active scale: ``REPRO_FAST=1`` selects the smoke-run profile."""
    return _FAST if os.environ.get("REPRO_FAST", "0") == "1" else _STANDARD
