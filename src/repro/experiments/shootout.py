"""Controller-zoo shootout: every vertical controller on one bench.

Not a paper figure — the companion experiment to the controller zoo
(DESIGN.md §11): the no-op baseline, the paper's two reactive baselines
(Parties, CaladanAlgo), SurgeGuard itself, and the two related-work
plugins (StatuScale, LSRAM) run the same steady and periodic-surge
traffic over the three matrix workload families, and the three axes the
scaling papers argue about are tabulated side by side:

* **violation volume** — QoS damage (excess latency integrated over the
  measurement window);
* **energy** — idle-subtracted Joules, the over-provisioning cost the
  vertical scalers exist to avoid;
* **reaction time** — seconds from the first surge's onset to the first
  core *grant* anywhere in the cluster, measured from the recorded
  allocation timeline (``NaN`` for controllers that never upscale, and
  for the steady cells of controllers that sit still — nothing to react
  to).

The grid is deliberately the validate matrix's shape at experiment
scale, so a shootout row can be read next to its golden cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.scale import current_scale

__all__ = [
    "SHOOTOUT_CONTROLLERS",
    "SHOOTOUT_SCENARIOS",
    "ShootoutRow",
    "reaction_time",
    "run_shootout",
]

#: Every vertical controller in the comparison, null first.
SHOOTOUT_CONTROLLERS: Tuple[str, ...] = (
    "null",
    "parties",
    "caladan",
    "surgeguard",
    "statuscale",
    "lsram",
)

#: Traffic shapes (the spike magnitude matches the validate matrix).
SHOOTOUT_SCENARIOS: Tuple[str, ...] = ("steady", "spike")

#: Workloads compared (one per matrix family).
_WORKLOADS: Tuple[str, ...] = ("chain", "readUserTimeline", "searchHotel")

_SPIKE_MAGNITUDE = 2.0


@dataclass(frozen=True)
class ShootoutRow:
    workload: str
    scenario: str
    controller: str
    violation_volume: float
    p98: float
    #: Idle-subtracted energy (J) over the measurement window.
    energy: float
    avg_cores: float
    #: Seconds from first-surge onset to the first core grant (NaN when
    #: the controller never granted after the onset, or under steady
    #: traffic where there is no onset).
    reaction_time: float
    upscale_actions: int
    downscale_actions: int


def reaction_time(
    alloc_events: Sequence[Tuple[float, str, float]], onset: Optional[float]
) -> float:
    """First core *increase* at or after ``onset``, relative to it.

    ``alloc_events`` is the recorded allocation timeline ``(t, name,
    cores)`` including the t=0 snapshot; an increase is any event that
    raises a container's cores above its previous recorded value.
    Returns ``NaN`` when ``onset`` is ``None`` (steady traffic) or no
    post-onset increase exists.
    """
    if onset is None:
        return math.nan
    prev: dict = {}
    for t, name, cores in alloc_events:
        before = prev.get(name)
        prev[name] = cores
        if before is None or cores <= before + 1e-12:
            continue
        if t >= onset:
            return t - onset
    return math.nan


def _shootout_config(workload: str, scenario: str, controller: str) -> ExperimentConfig:
    sc = current_scale()
    cfg = ExperimentConfig(
        workload=workload,
        controller_factory=spec(controller),
        spike_magnitude=None,
        duration=sc.duration,
        warmup=sc.warmup,
        profile_duration=sc.profile_duration,
        record_timelines=True,
    )
    if scenario == "spike":
        from dataclasses import replace

        cfg = replace(
            cfg,
            spike_magnitude=_SPIKE_MAGNITUDE,
            spike_len=sc.spike_len,
            spike_period=sc.spike_period,
            spike_offset=sc.spike_offset,
        )
    return cfg


def run_shootout() -> List[ShootoutRow]:
    """Run the controllers × scenarios × workloads grid."""
    sc = current_scale()
    rows: List[ShootoutRow] = []
    for workload in _WORKLOADS:
        for scenario in SHOOTOUT_SCENARIOS:
            onset = sc.warmup + sc.spike_offset if scenario == "spike" else None
            for controller in SHOOTOUT_CONTROLLERS:
                res = run_experiment(
                    _shootout_config(workload, scenario, controller)
                )
                stats = res.controller_stats
                rows.append(
                    ShootoutRow(
                        workload=workload,
                        scenario=scenario,
                        controller=controller,
                        violation_volume=res.summary.violation_volume,
                        p98=res.summary.p98,
                        energy=res.energy,
                        avg_cores=res.avg_cores,
                        reaction_time=reaction_time(res.alloc_events, onset),
                        upscale_actions=stats.upscale_core_actions,
                        downscale_actions=stats.downscale_core_actions,
                    )
                )
    return rows


def main() -> None:  # pragma: no cover - exercised via run_all
    from repro.analysis.render import format_table

    rows = run_shootout()
    print(
        format_table(
            ["workload", "scenario", "controller", "viol-vol", "p98(ms)",
             "energy(J)", "avg-cores", "react(s)", "up", "down"],
            [
                [
                    r.workload,
                    r.scenario,
                    r.controller,
                    f"{r.violation_volume:.4f}",
                    f"{r.p98 * 1e3:.1f}",
                    f"{r.energy:.1f}",
                    f"{r.avg_cores:.2f}",
                    "-" if math.isnan(r.reaction_time) else f"{r.reaction_time:.2f}",
                    str(r.upscale_actions),
                    str(r.downscale_actions),
                ]
                for r in rows
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
