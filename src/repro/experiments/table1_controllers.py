"""Table I — controller landscape: dependence-awareness, distribution,
and measured update intervals.

The static columns come from each controller's design; the update
interval is *measured* by running each controller briefly and dividing
elapsed time by decision count — for SurgeGuard the fast path's
granularity is per-packet, so its effective interval is the mean
inter-packet gap seen by FirstResponder (the paper quotes ~0.2 ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.scale import current_scale

__all__ = ["Table1Row", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    controller: str
    dependence_aware: bool
    distributed: bool
    #: Paper's quoted update interval.
    paper_interval: str
    #: Interval measured in this reproduction (seconds per decision).
    measured_interval: float


def run_table1(workload: str = "chain") -> List[Table1Row]:
    """Regenerate Table I with measured decision granularities."""
    sc = current_scale()
    rows: List[Table1Row] = []
    elapsed = 4.0
    for label, factory, aware, paper in (
        ("ml-central", spec("ml-central"), True, ">1s (Sinan/Sage)"),
        ("parties", spec("parties"), False, "500ms"),
        ("caladan", spec("caladan"), False, "5-20us (custom stack)"),
        ("surgeguard", spec("surgeguard"), True, "~0.2ms"),
    ):
        cfg = ExperimentConfig(
            workload=workload,
            controller_factory=factory,
            spike_magnitude=None,
            duration=elapsed,
            warmup=1.0,
            profile_duration=sc.profile_duration,
        )
        res = run_experiment(cfg)
        window = elapsed + 1.0 + cfg.drain
        if label == "surgeguard":
            # Fast-path granularity: per packet inspected by FirstResponder.
            interval = window / max(res.fast_path_packets, 1)
        else:
            interval = window / max(res.controller_stats.decision_cycles, 1)
        rows.append(
            Table1Row(
                controller=label,
                dependence_aware=aware,
                distributed=(label != "ml-central"),
                paper_interval=paper,
                measured_interval=interval,
            )
        )
    return rows


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.analysis.render import format_table
    import math

    rows = run_table1()
    print(
        format_table(
            ["controller", "dep-aware", "distributed", "paper", "measured"],
            [
                (
                    r.controller,
                    "yes" if r.dependence_aware else "no",
                    "yes" if r.distributed else "no",
                    r.paper_interval,
                    "-" if math.isnan(r.measured_interval) else f"{r.measured_interval * 1e3:.3f}ms",
                )
                for r in rows
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
