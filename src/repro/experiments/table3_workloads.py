"""Table III — workload inventory (depth, RPC framework, threadpool).

Regenerated directly from the workload registry, plus measured low-load
end-to-end latency for each action so EXPERIMENTS.md can document the
scaled operating points next to the paper's structural columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.harness import ExperimentConfig, profile_targets
from repro.services.registry import WORKLOADS

__all__ = ["Table3Row", "run_table3"]


@dataclass(frozen=True)
class Table3Row:
    workload: str
    action: str
    depth: int
    rpc: str
    threadpool: str
    base_rate: float
    #: End-to-end QoS target derived by the harness for this action.
    qos_target: float


def run_table3() -> List[Table3Row]:
    """Regenerate Table III with the scaled operating points appended."""
    rows: List[Table3Row] = []
    for key, profile in WORKLOADS.items():
        app_paper = profile.build(scaled=False)
        targets = profile_targets(ExperimentConfig(workload=key))
        rows.append(
            Table3Row(
                workload=profile.workload,
                action=profile.action,
                depth=app_paper.depth,
                rpc=app_paper.rpc_framework,
                threadpool=app_paper.threadpool_label,
                base_rate=profile.base_rate,
                qos_target=targets.qos_target,
            )
        )
    return rows


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.analysis.render import format_table

    rows = run_table3()
    print(
        format_table(
            ["workload", "action", "depth", "RPC", "pool", "rate (req/s)", "QoS (ms)"],
            [
                (
                    r.workload,
                    r.action,
                    r.depth,
                    r.rpc,
                    r.threadpool,
                    f"{r.base_rate:g}",
                    f"{r.qos_target * 1e3:.2f}",
                )
                for r in rows
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
