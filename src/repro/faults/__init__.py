"""Deterministic fault injection and RPC resilience.

Split the way the cluster package splits mechanism from assembly:

* :mod:`repro.faults.plan` — frozen, picklable fault *descriptions*
  (loss windows, container crashes, controller stalls, the RPC policy);
* :mod:`repro.faults.rpc` — the caller-side timeout/retry/error layer;
* :mod:`repro.faults.injector` — arms a plan against a live run.

Fault-free runs never import-execute any of this beyond the ``None``
checks on ``cluster.rpc`` / ``instance.rpc`` and are bit-identical to
pre-faults goldens.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ContainerCrash,
    ControllerStall,
    FaultPlan,
    LossWindow,
    RpcPolicy,
)
from repro.faults.rpc import RpcCaller

__all__ = [
    "ContainerCrash",
    "ControllerStall",
    "FaultInjector",
    "FaultPlan",
    "LossWindow",
    "RpcCaller",
    "RpcPolicy",
]
