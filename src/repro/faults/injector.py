"""Arms a :class:`~repro.faults.plan.FaultPlan` against a live cluster.

The injector follows the same attachment discipline as the validation
monitors (:mod:`repro.validate.monitors`): every hook is an
instance-attribute shadow or a scheduled event, installed by
:meth:`FaultInjector.arm` and removed by :meth:`FaultInjector.disarm`,
so class hot paths carry zero cost when no injector is armed and a
disarmed object graph is exactly the pre-arm one.

Wiring per fault type:

* **Packet loss** — ``network.send`` is shadowed; inside a loss window
  each packet burns one ``faults.loss`` draw and is either discarded
  (counted in ``network.packets_dropped``) or forwarded to the original
  bound method.  Outside every window no draw happens.
* **Crashes** — two scheduled events per :class:`ContainerCrash`: the
  crash calls :meth:`ServiceInstance.crash` (fails in-flight work,
  flushes pools and compute, drops arriving packets), the restart calls
  :meth:`ServiceInstance.restart` and resets the learned per-container
  controller state (sensitivity rows) for the dead process.
* **Controller stalls** — the per-node Escalator ``decide`` methods (or
  the centralized baselines' ``_decide``) are shadowed with a gate that
  no-ops inside stall windows.  Must be armed *before*
  ``controller.start()``: the periodic processes capture the bound
  method at start time.
* **RPC resilience** — one shared :class:`~repro.faults.rpc.RpcCaller`
  is installed on the cluster (ingress) and every service instance
  (child calls).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.faults.plan import FaultPlan
from repro.faults.rpc import RpcCaller
from repro.sim.engine import Simulator

__all__ = ["FaultInjector"]


class FaultInjector:
    """Installs one fault plan on one simulation run.

    Parameters
    ----------
    plan:
        The fault schedule to inject.  An empty plan arms nothing.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.sim: Optional[Simulator] = None
        self.cluster: Optional[Cluster] = None
        self.controller = None
        self.rpc: Optional[RpcCaller] = None
        self._armed = False
        self._loss_installed = False
        self._stall_targets: List[Tuple[object, str]] = []
        # ---- counters --------------------------------------------------
        self.crashes_injected = 0
        self.restarts_completed = 0
        self.inflight_failed = 0
        self.stalled_cycles = 0

    # ------------------------------------------------------------- lifecycle
    def arm(self, sim: Simulator, cluster: Cluster, *, controller=None) -> None:
        """Attach the plan.  Call after ``controller.attach`` and before
        ``controller.start`` (stall gates must precede the decision
        loops' method binding)."""
        if self._armed:
            raise RuntimeError("FaultInjector already armed")
        self._armed = True
        self.sim = sim
        self.cluster = cluster
        self.controller = controller

        if self.plan.rpc is not None:
            self.rpc = RpcCaller(
                sim, cluster.network, self.plan.rpc, cluster.rng.stream("faults.rpc")
            )
            cluster.rpc = self.rpc
            for inst in cluster.instances.values():
                inst.rpc = self.rpc

        if self.plan.loss_windows:
            self._install_loss()

        for crash in self.plan.crashes:
            if crash.container not in cluster.instances:
                raise KeyError(f"unknown crash target {crash.container!r}")
            sim.schedule_at(crash.time, self._crash, crash.container)
            sim.schedule_at(
                crash.time + crash.restart_delay, self._restart, crash.container
            )

        if self.plan.stalls:
            self._install_stall_gates()

    def disarm(self) -> None:
        """Remove every shadow, restoring the pre-arm object graph.

        Scheduled crash/restart events are not unscheduled (disarm after
        the run, as with monitors); counters survive for fingerprinting.
        """
        if not self._armed:
            return
        self._armed = False
        cluster = self.cluster
        if self.rpc is not None:
            cluster.rpc = None
            for inst in cluster.instances.values():
                inst.rpc = None
        if self._loss_installed:
            del cluster.network.send  # restore the class method
            self._loss_installed = False
        for obj, attr in self._stall_targets:
            delattr(obj, attr)  # restore the class method
        self._stall_targets = []

    def fault_stats(self) -> dict:
        """Picklable counter snapshot (fingerprinted under faults)."""
        out = {
            "packets_dropped": self.cluster.network.packets_dropped,
            "crashes": self.crashes_injected,
            "inflight_failed": self.inflight_failed,
            "stalled_cycles": self.stalled_cycles,
        }
        if self.rpc is not None:
            out["rpc_retries"] = self.rpc.retries
            out["rpc_errors"] = self.rpc.errors
            out["rpc_fail_fast"] = self.rpc.budget_exhausted
        return out

    # ------------------------------------------------------------------ loss
    def _install_loss(self) -> None:
        net = self.cluster.network
        original = net.send  # bound class method
        rng = self.cluster.rng.stream("faults.loss")
        windows = sorted(self.plan.loss_windows, key=lambda w: w.start)
        cursor = [0]  # send times are monotonic; skip expired windows

        def send_with_loss(packet) -> None:
            t = net.sim.now
            i = cursor[0]
            while i < len(windows) and t >= windows[i].end:
                i += 1
            cursor[0] = i
            if i < len(windows) and windows[i].start <= t:
                # One draw per packet, only inside a window.
                if float(rng.random()) < windows[i].rate:
                    packet.send_time = t
                    net.packets_dropped += 1
                    # Drop release point: a lost packet's life ends here
                    # (no-op for the unmanaged requests the RPC layer
                    # owns; pooled responses go back to the free list).
                    net.pool.release(packet)
                    return
            original(packet)

        net.send = send_with_loss  # type: ignore[method-assign]
        self._loss_installed = True

    # --------------------------------------------------------------- crashes
    def _crash(self, name: str) -> None:
        self.crashes_injected += 1
        self.inflight_failed += self.cluster.instances[name].crash()

    def _restart(self, name: str) -> None:
        self.restarts_completed += 1
        self.cluster.instances[name].restart()
        # The learned sensitivity rows describe the dead process; a
        # restarted container is re-learned from scratch (no-op for
        # controllers without per-container learned state).
        for esc in getattr(self.controller, "escalators", None) or ():
            esc.sensitivity.forget(name)

    # ---------------------------------------------------------------- stalls
    def _install_stall_gates(self) -> None:
        windows = sorted(self.plan.stalls, key=lambda w: w.start)

        targets: List[Tuple[object, str]] = []
        escalators = getattr(self.controller, "escalators", None)
        if escalators:
            targets.extend((esc, "decide") for esc in escalators)
        elif hasattr(self.controller, "_decide"):
            targets.append((self.controller, "_decide"))
        # Controllers with neither (null) have no decision loop to stall.

        sim = self.sim
        for obj, attr in targets:
            original = getattr(obj, attr)

            def gated(original=original) -> None:
                t = sim.now
                for w in windows:
                    if w.start <= t < w.end:
                        self.stalled_cycles += 1
                        return
                    if t < w.start:
                        break
                original()

            setattr(obj, attr, gated)
            self._stall_targets.append((obj, attr))
