"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is a frozen, picklable description of every fault a
run injects — packet-loss windows, container crashes with restart
delays, controller-stall windows — plus the :class:`RpcPolicy` that
makes the system survive them (per-call timeouts, bounded retries with
exponential backoff).  Plans are *data*: arming one against a live
cluster is the :class:`repro.faults.injector.FaultInjector`'s job.

Determinism contract: everything here is a fixed schedule or a draw from
the dedicated ``faults.*`` RNG streams (see
:class:`repro.sim.rng.RngRegistry` — streams are keyed by name, so the
fault streams' existence does not perturb any other stream).  A run with
``FaultPlan`` absent is bit-identical to one where the faults package
was never imported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "ContainerCrash",
    "ControllerStall",
    "FaultPlan",
    "LossWindow",
    "RpcPolicy",
]


@dataclass(frozen=True)
class LossWindow:
    """Drop each packet sent in ``[start, end)`` with probability ``rate``."""

    start: float
    end: float
    rate: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty loss window [{self.start}, {self.end})")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"loss rate must be in (0, 1], got {self.rate!r}")


@dataclass(frozen=True)
class ContainerCrash:
    """Crash ``container`` at ``time``; restart it ``restart_delay`` later."""

    container: str
    time: float
    restart_delay: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be non-negative")
        if self.restart_delay <= 0:
            raise ValueError("restart_delay must be positive")


@dataclass(frozen=True)
class ControllerStall:
    """Suppress controller decision cycles during ``[start, end)``.

    Models a wedged control plane (GC pause, config push, leader
    election): the decision loop ticks but takes no action.  SurgeGuard's
    FirstResponder fast path keeps running — it lives in the data plane
    (per-packet RX hooks), which is precisely the paper's argument for
    having it.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty stall window [{self.start}, {self.end})")


@dataclass(frozen=True)
class RpcPolicy:
    """Per-call timeout / bounded-retry policy for every RPC edge.

    An attempt that sees no response within ``timeout`` is retried after
    an exponential backoff ``backoff_base * backoff_factor**(attempt-1)``
    multiplied by ``1 + U(0, backoff_jitter)`` (drawn from the dedicated
    ``faults.rpc`` stream).  After ``max_retries`` retries (i.e. at most
    ``max_retries + 1`` attempts) the call completes as an *error* — it
    never hangs the caller.

    ``retry_budget`` is the Envoy/Finagle-style storm brake: retries
    spend from a token bucket capped at ``retry_burst`` tokens and
    refilled ``retry_budget`` tokens per delivered response.  An
    open-loop client near saturation otherwise turns one loss burst into
    a metastable congestion collapse — queueing pushes latency past the
    timeout, every request retries, the amplified load sustains the
    queue forever.  With the budget, a storm drains the bucket, further
    timeouts fail fast (errors, no retransmission), load amplification
    stops, and the system recovers on its own.  ``None`` disables the
    budget (retries limited only by ``max_retries``).
    """

    timeout: float = 50e-3
    max_retries: int = 2
    backoff_base: float = 10e-3
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    retry_budget: Optional[float] = None
    retry_burst: float = 50.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("invalid backoff parameters")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        if self.retry_burst < 1.0:
            raise ValueError("retry_burst must allow at least one retry")


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault schedule of one run (frozen and picklable)."""

    loss_windows: Tuple[LossWindow, ...] = ()
    crashes: Tuple[ContainerCrash, ...] = ()
    stalls: Tuple[ControllerStall, ...] = ()
    rpc: Optional[RpcPolicy] = field(default=None)

    def __post_init__(self) -> None:
        windows = sorted(self.loss_windows, key=lambda w: w.start)
        for a, b in zip(windows, windows[1:]):
            if b.start < a.end:
                raise ValueError(f"overlapping loss windows: {a} and {b}")
        if (self.loss_windows or self.crashes) and self.rpc is None:
            # Without caller-side timeouts a dropped packet hangs its
            # request forever — a deterministic deadlock, not a scenario.
            raise ValueError(
                "loss/crash faults require an RpcPolicy (rpc=...) so "
                "affected requests resolve as errors instead of hanging"
            )

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing and arms no RPC layer."""
        return not (
            self.loss_windows or self.crashes or self.stalls or self.rpc
        )
