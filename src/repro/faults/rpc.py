"""RPC resilience: per-call timeouts, bounded retries, error completion.

:class:`RpcCaller` wraps the network's fire-and-forget ``send`` with the
standard client-library loop (gRPC/Finagle shape):

* every call arms a timeout; the first response for the *current or any
  previous* attempt wins and cancels it;
* a timed-out attempt is retransmitted after exponential backoff with
  multiplicative jitter, up to ``max_retries`` retries;
* retries additionally spend from a token-bucket **retry budget**
  (refilled by delivered responses) when the policy sets one — the
  storm brake that keeps timeout-retry feedback from amplifying a
  transient overload into a metastable collapse;
* exhaustion (of retries or budget) completes the call as an **error**
  via ``on_error`` — a call can resolve exactly once and can never hang;
* an ``error=True`` response (a failure the callee itself propagated) is
  terminal and is delivered without consuming retries: transport loss is
  retryable, an application-level failure is not.

Determinism: backoff jitter is the only randomness and comes from the
dedicated ``faults.rpc`` stream, so arming the layer with a no-fault
plan consumes zero draws from every other stream.  Duplicate responses
(a retransmission racing a slow original — duplicated server work is
real and intended) are absorbed by the per-call ``done`` latch.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cluster.network import Network
from repro.cluster.packet import RpcPacket
from repro.faults.plan import RpcPolicy
from repro.sim.engine import EventHandle, Simulator

__all__ = ["RpcCaller"]


class _Call:
    """State of one logical RPC call across its attempts."""

    __slots__ = ("pkt", "on_reply", "on_error", "attempt", "timer", "done")

    def __init__(self, pkt: RpcPacket, on_reply, on_error):
        self.pkt = pkt
        self.on_reply = on_reply
        self.on_error = on_error
        self.attempt = 0
        #: Pending timeout *or* backoff event (at most one at a time).
        self.timer: Optional[EventHandle] = None
        self.done = False


class RpcCaller:
    """Timeout/retry wrapper shared by every edge of one cluster.

    Parameters
    ----------
    sim, network:
        The simulation and the fabric to send on.
    policy:
        Timeout/retry/backoff parameters.
    rng:
        Dedicated stream for backoff jitter (``faults.rpc``).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        policy: RpcPolicy,
        rng: np.random.Generator,
    ):
        self.sim = sim
        self.network = network
        self.policy = policy
        self.rng = rng
        # ---- counters (fingerprinted under faults, monitor-checked) ----
        self.calls = 0
        self.retries = 0
        self.errors = 0
        self.expirations = 0
        self.open_calls = 0
        self.max_attempts_observed = 0
        #: Timeouts failed fast because the retry budget was drained.
        self.budget_exhausted = 0
        self._budget_on = policy.retry_budget is not None
        #: Token bucket: starts full so cold-start faults can retry.
        self._retry_tokens = policy.retry_burst if self._budget_on else 0.0

    # ------------------------------------------------------------------ API
    def call(
        self,
        pkt: RpcPacket,
        on_reply: Callable[[RpcPacket], None],
        on_error: Callable[[RpcPacket], None],
    ) -> None:
        """Send ``pkt`` with timeout/retry protection.

        Exactly one of ``on_reply(response)`` / ``on_error(pkt)`` fires,
        exactly once, in bounded time.
        """
        self.calls += 1
        self.open_calls += 1
        self._attempt(_Call(pkt, on_reply, on_error))

    # ------------------------------------------------------------ internals
    def _attempt(self, call: _Call) -> None:
        call.attempt += 1
        if call.attempt > self.max_attempts_observed:
            self.max_attempts_observed = call.attempt
        out = call.pkt if call.attempt == 1 else call.pkt.clone_retry()
        out.context = lambda resp: self._on_reply(call, resp)
        call.timer = self.sim.schedule(self.policy.timeout, self._on_timeout, call)
        self.network.send(out)

    def _on_reply(self, call: _Call, resp: RpcPacket) -> None:
        if call.done:
            return  # stale duplicate from a superseded attempt
        call.done = True
        if self._budget_on:
            # Any delivered response proves the transport is moving and
            # earns budget (error responses included — they traveled).
            tokens = self._retry_tokens + self.policy.retry_budget
            burst = self.policy.retry_burst
            self._retry_tokens = tokens if tokens < burst else burst
        if call.timer is not None:
            call.timer.cancel()
            call.timer = None
        self.open_calls -= 1
        call.on_reply(resp)

    def _on_timeout(self, call: _Call) -> None:
        call.timer = None
        if call.done:  # pragma: no cover - reply cancels the timer
            return
        self.expirations += 1
        exhausted = call.attempt > self.policy.max_retries
        if not exhausted and self._budget_on and self._retry_tokens < 1.0:
            # Storm brake: the bucket is dry, fail fast instead of
            # adding retransmission load to an already-slow system.
            self.budget_exhausted += 1
            exhausted = True
        if exhausted:
            call.done = True
            self.open_calls -= 1
            self.errors += 1
            call.on_error(call.pkt)
            return
        if self._budget_on:
            self._retry_tokens -= 1.0
        self.retries += 1
        p = self.policy
        delay = p.backoff_base * p.backoff_factor ** (call.attempt - 1)
        if p.backoff_jitter > 0.0 and delay > 0.0:
            delay *= 1.0 + float(self.rng.random()) * p.backoff_jitter
        if delay > 0.0:
            call.timer = self.sim.schedule(delay, self._backoff_fire, call)
        else:
            self._attempt(call)

    def _backoff_fire(self, call: _Call) -> None:
        call.timer = None
        if call.done:
            return  # the straggling response arrived during the backoff
        self._attempt(call)
