"""QoS metrics: violation volume (contribution C3), percentiles, timeseries.

The paper's headline metric is **violation volume** — the
magnitude-duration product of QoS violations, i.e. the area of the
latency-vs-time curve above the QoS target (Fig. 3).  It unifies tail
latency (magnitude only) and violation frequency (duration only).
"""

from repro.metrics.violation import (
    excess_latency,
    violation_duration,
    violation_volume,
)
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.timeseries import StepSeries
from repro.metrics.summary import LatencySummary, summarize

__all__ = [
    "LatencyHistogram",
    "LatencySummary",
    "StepSeries",
    "excess_latency",
    "summarize",
    "violation_duration",
    "violation_volume",
]
