"""Preallocated, geometrically-grown float columns for hot-path telemetry.

The open-loop client records two floats per injected request (arrival
time, latency).  As Python lists those cost a boxed float object plus a
pointer slot each, and every metrics-layer scan re-boxes the whole run
through ``np.asarray``.  :class:`FloatBuffer` stores them as a flat
``float64`` array with amortized-O(1) append and hands the metrics layer
a zero-copy ``view()`` instead.

Values are bit-identical to the list path: simulation timestamps are
Python floats (IEEE-754 doubles), and storing one into a ``float64``
slot is exact.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["FloatBuffer"]


class FloatBuffer:
    """An append-only-ish ``float64`` column with indexed writes.

    Supports the small protocol the client and metrics layers need:
    ``append``, ``len``, indexed read/write of already-appended slots,
    iteration, and ``np.asarray`` (via ``__array__``) — all over one
    contiguous buffer that doubles when full.
    """

    __slots__ = ("_data", "_n")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._data = np.empty(capacity, dtype=np.float64)
        self._n = 0

    # -------------------------------------------------------------- mutation
    def append(self, value: float) -> None:
        """Append one value, doubling the backing array when full."""
        n = self._n
        data = self._data
        if n == data.shape[0]:
            grown = np.empty(n * 2, dtype=np.float64)
            grown[:n] = data
            self._data = data = grown
        data[n] = value
        self._n = n + 1

    def __setitem__(self, idx: int, value: float) -> None:
        self._data[self._index(idx)] = value

    # --------------------------------------------------------------- reading
    def _index(self, idx: int) -> int:
        n = self._n
        if idx < 0:
            idx += n
        if not 0 <= idx < n:
            raise IndexError(f"index {idx} out of range for length {n}")
        return idx

    def __getitem__(self, idx: int) -> float:
        return float(self._data[self._index(idx)])

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[float]:
        return iter(self.view())

    def view(self) -> np.ndarray:
        """Zero-copy ``float64`` view of the filled prefix.

        The view aliases the live buffer: it is invalidated by the next
        growth and sees in-place writes.  Callers that keep data past
        the next ``append`` must copy.
        """
        return self._data[: self._n]

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        out = self.view()
        if dtype is not None and out.dtype != dtype:
            return out.astype(dtype)
        if copy:
            return out.copy()
        return out

    @property
    def capacity(self) -> int:
        """Allocated slots (grows geometrically, never shrinks)."""
        return int(self._data.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FloatBuffer n={self._n} capacity={self.capacity}>"
