"""Log-bucketed latency histogram (HdrHistogram-style).

wrk2 reports latency as an HDR histogram; this is a compact equivalent:
geometric buckets between ``min_value`` and ``max_value`` give a bounded
relative quantile error (≤ the bucket growth factor) with O(1) record
cost and tiny memory, suitable for multi-million-request runs.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Fixed-layout geometric histogram.

    Parameters
    ----------
    min_value, max_value:
        Trackable range (values are clamped into it).
    precision:
        Buckets per decade; 100 gives ≤ ~2.3 % relative quantile error.
    """

    def __init__(
        self,
        min_value: float = 1e-6,
        max_value: float = 100.0,
        precision: int = 100,
    ):
        if min_value <= 0 or max_value <= min_value:
            raise ValueError("need 0 < min_value < max_value")
        if precision < 1:
            raise ValueError("precision must be >= 1")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.precision = int(precision)
        decades = np.log10(max_value / min_value)
        self._nbuckets = int(np.ceil(decades * precision)) + 1
        self._log_min = np.log10(min_value)
        self._scale = precision  # buckets per decade
        self.counts = np.zeros(self._nbuckets, dtype=np.int64)
        self.total = 0
        self._sum = 0.0
        self._max_seen = 0.0
        self._min_seen = np.inf

    # -------------------------------------------------------------- indexing
    def _index(self, value: float) -> int:
        v = min(max(value, self.min_value), self.max_value)
        idx = int((np.log10(v) - self._log_min) * self._scale)
        return min(max(idx, 0), self._nbuckets - 1)

    def _bucket_value(self, idx: int) -> float:
        # Geometric midpoint of the bucket.
        lo = 10 ** (self._log_min + idx / self._scale)
        hi = 10 ** (self._log_min + (idx + 1) / self._scale)
        return float(np.sqrt(lo * hi))

    # ------------------------------------------------------------- recording
    def record(self, value: float) -> None:
        """Record one latency sample (seconds)."""
        if value < 0 or not np.isfinite(value):
            raise ValueError(f"invalid latency {value!r}")
        self.counts[self._index(value)] += 1
        self.total += 1
        self._sum += value
        if value > self._max_seen:
            self._max_seen = value
        if value < self._min_seen:
            self._min_seen = value

    def record_many(self, values: Iterable[float]) -> None:
        """Vectorized bulk record."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                         dtype=float)
        if arr.size == 0:
            return
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise ValueError("invalid latencies in batch")
        v = np.clip(arr, self.min_value, self.max_value)
        idx = ((np.log10(v) - self._log_min) * self._scale).astype(np.int64)
        idx = np.clip(idx, 0, self._nbuckets - 1)
        np.add.at(self.counts, idx, 1)
        self.total += arr.size
        self._sum += float(arr.sum())
        self._max_seen = max(self._max_seen, float(arr.max()))
        self._min_seen = min(self._min_seen, float(arr.min()))

    # --------------------------------------------------------------- queries
    @property
    def mean(self) -> float:
        """Exact sample mean (tracked outside the buckets)."""
        return self._sum / self.total if self.total else 0.0

    @property
    def max(self) -> float:
        """Exact maximum recorded value."""
        return self._max_seen

    @property
    def min(self) -> float:
        """Exact minimum recorded value (``0.0`` when empty).

        An empty histogram must not report ``inf``: the value flows into
        latency summaries and JSON/CSV export, and ``inf`` is not valid
        JSON.  ``0.0`` matches :attr:`max` and :attr:`mean` on empty.
        """
        if self.total == 0:
            return 0.0
        return float(self._min_seen)

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (0 < p ≤ 100).

        The raw bucket midpoint is clamped into ``[self.min, self.max]``
        (as HdrHistogram does): the geometric midpoint of the top
        occupied bucket can exceed the exact tracked maximum, and a
        reported P99.9 above the true max is nonsense.
        """
        if not 0 < p <= 100:
            raise ValueError("p must be in (0, 100]")
        if self.total == 0:
            return 0.0
        target = int(np.ceil(self.total * p / 100.0))
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, target))
        value = self._bucket_value(idx)
        if value > self._max_seen:
            return self._max_seen
        if value < self._min_seen:
            return float(self._min_seen)
        return value

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (layouts must match)."""
        if (
            other.min_value != self.min_value
            or other.max_value != self.max_value
            or other.precision != self.precision
        ):
            raise ValueError("histogram layouts differ")
        self.counts += other.counts
        self.total += other.total
        self._sum += other._sum
        self._max_seen = max(self._max_seen, other._max_seen)
        self._min_seen = min(self._min_seen, other._min_seen)

    def __len__(self) -> int:
        return self.total
