"""Latency summaries: the quantities every experiment reports.

The paper reports violation volume as the primary metric and notes that
"the results and trends are similar for tail latency (P98) as well"; the
summary therefore carries both, plus the supporting statistics used by
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.violation import violation_duration, violation_volume

__all__ = ["LatencySummary", "summarize"]


@dataclass(frozen=True)
class LatencySummary:
    """End-to-end latency statistics of one run window."""

    count: int
    mean: float
    p50: float
    p98: float
    p99: float
    max: float
    qos: float
    #: Violation volume over the window (seconds²).
    violation_volume: float
    #: Total violating time (seconds).
    violation_duration: float
    #: Fraction of requests exceeding the QoS target.
    violation_fraction: float

    def __str__(self) -> str:  # pragma: no cover - human output
        return (
            f"n={self.count} mean={self.mean * 1e3:.2f}ms p98={self.p98 * 1e3:.2f}ms "
            f"VV={self.violation_volume * 1e3:.3f}ms·s "
            f"dur={self.violation_duration * 1e3:.1f}ms "
            f"frac={self.violation_fraction:.3f}"
        )


def summarize(
    times: Sequence[float], latencies: Sequence[float], qos: float
) -> LatencySummary:
    """Summarize a completed-request latency trace against a QoS target."""
    t = np.asarray(times, dtype=float)
    lat = np.asarray(latencies, dtype=float)
    if t.shape != lat.shape:
        raise ValueError("times and latencies must match")
    if lat.size == 0:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, qos, 0.0, 0.0, 0.0)
    order = np.argsort(t, kind="stable")
    t, lat = t[order], lat[order]
    p50, p98, p99 = np.percentile(lat, [50, 98, 99])
    return LatencySummary(
        count=int(lat.size),
        mean=float(lat.mean()),
        p50=float(p50),
        p98=float(p98),
        p99=float(p99),
        max=float(lat.max()),
        qos=float(qos),
        violation_volume=violation_volume(t, lat, qos),
        violation_duration=violation_duration(t, lat, qos),
        violation_fraction=float((lat > qos).mean()),
    )
