"""Step-function timeseries for allocation / frequency timelines.

Controllers change allocations at discrete instants, so per-container
cores-over-time (Fig. 14) and frequency-over-time are right-continuous
step functions.  :class:`StepSeries` stores the change points and
supports point queries, window averages, and exact integrals — all used
by the figure harnesses and the resource accounting cross-checks.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["StepSeries"]


class StepSeries:
    """A right-continuous step function built from (time, value) changes."""

    def __init__(self, t0: float, v0: float):
        self._times: List[float] = [float(t0)]
        self._values: List[float] = [float(v0)]

    def append(self, t: float, v: float) -> None:
        """Record that the value becomes ``v`` at time ``t``.

        ``t`` must be ≥ the last change time; equal-time appends replace
        the last value (last-writer-wins within one instant).
        """
        last = self._times[-1]
        if t < last:
            raise ValueError(f"non-monotonic append: {t} < {last}")
        if t == last:
            self._values[-1] = float(v)
            return
        if v == self._values[-1]:
            return  # no-op change; keep the series minimal
        self._times.append(float(t))
        self._values.append(float(v))

    # ---------------------------------------------------------------- queries
    def value_at(self, t: float) -> float:
        """Value of the step function at time ``t`` (right-continuous)."""
        if t < self._times[0]:
            raise ValueError(f"query before series start ({t} < {self._times[0]})")
        idx = bisect.bisect_right(self._times, t) - 1
        return self._values[idx]

    def integral(self, t0: float, t1: float) -> float:
        """∫ value dt over [t0, t1]."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 == t0:
            return 0.0
        total = 0.0
        cur = t0
        idx = bisect.bisect_right(self._times, t0) - 1
        if idx < 0:
            raise ValueError("integral starts before series start")
        while cur < t1:
            nxt_change = self._times[idx + 1] if idx + 1 < len(self._times) else np.inf
            end = min(nxt_change, t1)
            total += self._values[idx] * (end - cur)
            cur = end
            idx += 1
        return total

    def average(self, t0: float, t1: float) -> float:
        """Time-average over [t0, t1]."""
        if t1 <= t0:
            raise ValueError("t1 must be > t0")
        return self.integral(t0, t1) / (t1 - t0)

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Vectorized point query (for plotting/CSV export)."""
        return np.array([self.value_at(t) for t in times], dtype=float)

    def changes(self) -> List[Tuple[float, float]]:
        """All (time, value) change points."""
        return list(zip(self._times, self._values))

    def __len__(self) -> int:
        return len(self._times)
