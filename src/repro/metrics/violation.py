"""Violation volume — the paper's contribution C3 (§II-D, Fig. 3).

Definition: treat observed end-to-end latency as a function of time
(sampled at each request's arrival, as the modified wrk2 does) and
integrate the part of the curve exceeding the QoS target:

    ``VV = ∫ max(latency(t) − QoS, 0) dt``   [seconds · seconds]

The integral is computed on the piecewise-linear interpolant through the
samples with *exact* handling of threshold crossings (the clipped
trapezoid over a crossing segment is computed analytically, not by
clamping the endpoints — clamping systematically overestimates area near
crossings and the property tests check against that).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["excess_latency", "violation_duration", "violation_volume"]


def _validate(times: np.ndarray, latencies: np.ndarray) -> None:
    if times.shape != latencies.shape:
        raise ValueError("times and latencies must have the same shape")
    if times.ndim != 1:
        raise ValueError("expected 1-D arrays")
    if times.size >= 2 and np.any(np.diff(times) < 0):
        raise ValueError("times must be non-decreasing")


def excess_latency(latencies: Sequence[float], qos: float) -> np.ndarray:
    """Per-sample excess above the QoS target, clipped at zero."""
    lat = np.asarray(latencies, dtype=float)
    return np.maximum(lat - qos, 0.0)


def _segment_masks(e0: np.ndarray, e1: np.ndarray):
    """Shared segment classification for both violation metrics.

    One convention for samples exactly at the QoS target, used by
    *both* :func:`violation_volume` and :func:`violation_duration`:

    * ``above`` — both endpoints ``>= 0`` with at least one ``> 0``
      (a segment flat at exactly the target meets QoS, so it is below);
    * ``below`` — both endpoints ``<= 0``;
    * ``crossing`` — everything else, i.e. strictly opposite signs —
      which guarantees ``e0 - e1 != 0`` for the crossing-point formula.
    """
    below = (e0 <= 0) & (e1 <= 0)
    above = (e0 >= 0) & (e1 >= 0) & ~below
    crossing = ~(above | below)
    return above, below, crossing


def violation_volume(
    times: Sequence[float], latencies: Sequence[float], qos: float
) -> float:
    """Area of the latency curve above ``qos`` (seconds²).

    Parameters
    ----------
    times:
        Sample timestamps (non-decreasing; typically request arrival
        times of completed requests).
    latencies:
        Latency samples, same length.
    qos:
        The end-to-end QoS target (wrk2 ``-qos``).
    """
    t = np.asarray(times, dtype=float)
    y = np.asarray(latencies, dtype=float)
    _validate(t, y)
    if qos < 0:
        raise ValueError("qos must be non-negative")
    if t.size < 2:
        return 0.0

    e0 = y[:-1] - qos  # excess at segment starts
    e1 = y[1:] - qos  # excess at segment ends
    dt = np.diff(t)

    above, _below, crossing = _segment_masks(e0, e1)

    area = np.zeros_like(dt)
    # Fully-above segments: plain trapezoid of the excess.
    area[above] = 0.5 * (e0[above] + e1[above]) * dt[above]
    # Crossing segments: the excess line crosses zero at fraction
    # f = e_pos / (e_pos - e_neg); the above-zero part is a triangle.
    if np.any(crossing):
        ec0 = e0[crossing]
        ec1 = e1[crossing]
        dtc = dt[crossing]
        denom = ec0 - ec1  # strictly opposite signs, hence nonzero
        up = ec0 > 0  # above at the start (descending crossing)
        tri = np.where(
            up,
            0.5 * ec0 * (ec0 / denom) * dtc,
            0.5 * ec1 * (-ec1 / denom) * dtc,
        )
        area[crossing] = tri
    return float(area.sum())


def violation_duration(
    times: Sequence[float], latencies: Sequence[float], qos: float
) -> float:
    """Total time (seconds) the interpolated latency curve exceeds ``qos``."""
    t = np.asarray(times, dtype=float)
    y = np.asarray(latencies, dtype=float)
    _validate(t, y)
    if t.size < 2:
        return 0.0
    e0 = y[:-1] - qos
    e1 = y[1:] - qos
    dt = np.diff(t)
    above, _below, crossing = _segment_masks(e0, e1)
    dur = np.zeros_like(dt)
    dur[above] = dt[above]
    if np.any(crossing):
        ec0 = e0[crossing]
        ec1 = e1[crossing]
        dtc = dt[crossing]
        denom = ec0 - ec1  # strictly opposite signs, hence nonzero
        up = ec0 > 0
        frac_above = np.where(up, ec0 / denom, -ec1 / denom)
        dur[crossing] = np.clip(frac_above, 0.0, 1.0) * dtc
    return float(dur.sum())
