"""Application task graphs — the simulated DeathStarBench workloads.

The paper evaluates five (workload, action) pairs (Table III):

================  =================  =====  ======  ===============
Workload          Action             Depth  RPC     Threadpool size
================  =================  =====  ======  ===============
CHAIN             —                  5      Thrift  512
socialNetwork     ReadUserTimeline   5      Thrift  512
socialNetwork     ComposePost        8      Thrift  512
hotelReservation  searchHotel        11     gRPC    ∞ (conn/request)
hotelReservation  recommendHotel     5      gRPC    ∞ (conn/request)
================  =================  =====  ======  ===============

We rebuild each as a :class:`~repro.services.taskgraph.AppSpec` with the
same depth, threading model, and RPC framework character; per-service
work parameters are calibrated so service times sit in the hundreds of
microseconds, like the real benchmarks.  Service names for the
socialNetwork actions follow the actual DeathStarBench services that the
paper's Fig. 14 names (user-timeline-service, post-storage-service,
post-storage-memcached, ...).
"""

from repro.services.taskgraph import AppSpec, EdgeSpec, ServiceSpec, WorkDist
from repro.services.chain import chain_app
from repro.services.social_network import compose_post_app, read_user_timeline_app
from repro.services.hotel_reservation import recommend_hotel_app, search_hotel_app
from repro.services.registry import WORKLOADS, get_workload, workload_table

__all__ = [
    "AppSpec",
    "EdgeSpec",
    "ServiceSpec",
    "WORKLOADS",
    "WorkDist",
    "chain_app",
    "compose_post_app",
    "get_workload",
    "read_user_timeline_app",
    "recommend_hotel_app",
    "search_hotel_app",
    "workload_table",
]
