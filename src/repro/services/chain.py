"""CHAIN microbenchmark (paper §V "Workloads").

A chain of five services, each doing arithmetic work (the paper uses a
large vector accumulate), connected with the same Thrift fixed-size
threadpool model as the DeathStarBench socialNetwork workloads.

Calibration: each stage runs ~0.75 ms of work at the 1.6 GHz floor
(1.2 M cycles), so a 2-core stage saturates near 2.7 krps and the
end-to-end low-load latency is ~4 ms.  Pool sizes default to the paper's
512 but are overridden by the experiments to the Little's-Law value for
the scaled request rate (Eq. 1) so that pool exhaustion occurs at the
same *relative* surge magnitudes as on the testbed.
"""

from __future__ import annotations

from typing import Optional

from repro.services.taskgraph import AppSpec, EdgeSpec, ServiceSpec, WorkDist

__all__ = ["chain_app", "CHAIN_SERVICES"]

CHAIN_SERVICES = ("chain1", "chain2", "chain3", "chain4", "chain5")


def chain_app(
    *,
    work_cycles: float = 1.2e6,
    pool_size: Optional[int] = 512,
    initial_cores: float = 2.0,
    qos_target: float = 12e-3,
) -> AppSpec:
    """Build the CHAIN application.

    Parameters
    ----------
    work_cycles:
        Mean per-stage work (vector-accumulate size proxy).
    pool_size:
        Fixed threadpool size on every edge (Table III: 512).
    initial_cores:
        Starting allocation per stage.
    qos_target:
        End-to-end latency target in seconds.
    """
    services = []
    for i, name in enumerate(CHAIN_SERVICES):
        children = ()
        if i + 1 < len(CHAIN_SERVICES):
            children = (EdgeSpec(CHAIN_SERVICES[i + 1], pool_size),)
        services.append(
            ServiceSpec(
                name=name,
                pre_work=WorkDist(work_cycles),
                children=children,
                initial_cores=initial_cores,
            )
        )
    return AppSpec(
        name="CHAIN",
        action="chain",
        services=tuple(services),
        root=CHAIN_SERVICES[0],
        qos_target=qos_target,
        rpc_framework="thrift",
        description="5-stage arithmetic chain, fixed-size threadpools",
    )
