"""hotelReservation workload (DeathStarBench) — two actions.

Both actions use gRPC with the **connection-per-request** model
(Table III threadpool size ∞): every edge has ``pool_size=None``, so no
implicit queueing exists anywhere.  This is the regime where the paper's
``queueBuildup`` stays ≈1 throughout a surge, CaladanAlgo never detects
congestion (its dismal Fig. 11 hotel results), and SurgeGuard's benefit
comes purely from sensitivity-aware allocation.

Topology note: the paper counts searchHotel at depth 11 and
recommendHotel at depth 5.  The real searchHotel graph interleaves
frontends, logic services and their cache/db sidecars; we reproduce the
reported depth with a backbone through the rate/reservation/profile
tiers and the geo∥rate parallel fan-out at the search service (gRPC
async), which preserves the controller-relevant structure (depth,
fan-out, threading model) — see DESIGN.md "Substitutions".
"""

from __future__ import annotations

from repro.services.taskgraph import AppSpec, EdgeSpec, ServiceSpec, WorkDist

__all__ = ["search_hotel_app", "recommend_hotel_app"]


def search_hotel_app(*, qos_target: float = 30e-3) -> AppSpec:
    """hotelReservation searchHotel (depth 11, gRPC, conn-per-request)."""
    mk = WorkDist
    services = (
        ServiceSpec(
            "frontend",
            pre_work=mk(0.5e6),
            children=(EdgeSpec("search"),),
            initial_cores=1.0,
        ),
        ServiceSpec(
            "search",
            pre_work=mk(1.0e6),
            children=(EdgeSpec("geo"), EdgeSpec("rate")),
            fanout="parallel",
            post_work=mk(0.3e6),
            initial_cores=1.5,
        ),
        ServiceSpec("geo", pre_work=mk(0.9e6), initial_cores=1.0),
        ServiceSpec(
            "rate",
            pre_work=mk(1.0e6),
            children=(EdgeSpec("rate-memcached"),),
            initial_cores=1.5,
        ),
        ServiceSpec(
            "rate-memcached",
            pre_work=mk(0.6e6),
            children=(EdgeSpec("rate-mongodb"),),
            initial_cores=1.0,
        ),
        ServiceSpec(
            "rate-mongodb",
            pre_work=mk(0.8e6),
            children=(EdgeSpec("reservation"),),
            initial_cores=1.0,
        ),
        ServiceSpec(
            "reservation",
            pre_work=mk(1.0e6),
            children=(EdgeSpec("reservation-memcached"),),
            initial_cores=1.5,
        ),
        ServiceSpec(
            "reservation-memcached",
            pre_work=mk(0.6e6),
            children=(EdgeSpec("reservation-mongodb"),),
            initial_cores=1.0,
        ),
        ServiceSpec(
            "reservation-mongodb",
            pre_work=mk(0.8e6),
            children=(EdgeSpec("profile"),),
            initial_cores=1.0,
        ),
        ServiceSpec(
            "profile",
            pre_work=mk(0.9e6),
            children=(EdgeSpec("profile-memcached"),),
            initial_cores=1.0,
        ),
        ServiceSpec(
            "profile-memcached",
            pre_work=mk(0.6e6),
            children=(EdgeSpec("profile-mongodb"),),
            initial_cores=1.0,
        ),
        ServiceSpec("profile-mongodb", pre_work=mk(0.8e6), initial_cores=1.0),
    )
    return AppSpec(
        name="hotelReservation",
        action="searchHotel",
        services=services,
        root="frontend",
        qos_target=qos_target,
        rpc_framework="grpc",
        description="Hotel search: depth-11 backbone, geo/rate parallel fan-out",
    )


def recommend_hotel_app(*, qos_target: float = 14e-3) -> AppSpec:
    """hotelReservation recommendHotel (depth 5, gRPC, conn-per-request)."""
    mk = WorkDist
    services = (
        ServiceSpec(
            "frontend",
            pre_work=mk(0.5e6),
            children=(EdgeSpec("recommendation"),),
            initial_cores=1.0,
        ),
        ServiceSpec(
            "recommendation",
            pre_work=mk(1.4e6),
            children=(EdgeSpec("profile"),),
            initial_cores=2.0,
        ),
        ServiceSpec(
            "profile",
            pre_work=mk(1.1e6),
            children=(EdgeSpec("profile-memcached"),),
            initial_cores=1.5,
        ),
        ServiceSpec(
            "profile-memcached",
            pre_work=mk(0.6e6),
            children=(EdgeSpec("profile-mongodb"),),
            initial_cores=1.0,
        ),
        ServiceSpec("profile-mongodb", pre_work=mk(0.9e6), initial_cores=1.0),
    )
    return AppSpec(
        name="hotelReservation",
        action="recommendHotel",
        services=services,
        root="frontend",
        qos_target=qos_target,
        rpc_framework="grpc",
        description="Hotel recommendation: depth-5 chain, conn-per-request",
    )
