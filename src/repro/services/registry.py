"""Workload registry — Table III plus per-workload experiment defaults.

The registry maps the paper's five (workload, action) pairs to:

* an :class:`~repro.services.taskgraph.AppSpec` builder,
* the *scaled* experiment defaults (base request rate, node size,
  Little's-Law pool size) used throughout the benchmark harness.

Scaling rationale (see DESIGN.md): the testbed runs ~34 initial cores
per node at multi-krps; the simulation runs the same topologies at
sub-node scale so a full figure regenerates in minutes.  Two invariants
of the paper's methodology are preserved mechanically:

* **initial allocations sit near the knee** —
  :func:`calibrate_initial_cores` sets each container's allocation to
  ``demand / target_util`` at the base rate (the paper searches for the
  highest-steady-state-throughput allocation; same effect);
* **node budgets leave ~1/3 headroom** — the paper initializes the
  workload to 2/3 of the 52 workload cores; :func:`node_budget` applies
  the same ratio.
* **pool sizes follow Little's Law (Eq. 1)** at the scaled rate, so
  fixed pools bind at the same *relative* surge magnitudes as the
  512-connection pools do at testbed rates.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.services.chain import chain_app
from repro.services.hotel_reservation import recommend_hotel_app, search_hotel_app
from repro.services.social_network import compose_post_app, read_user_timeline_app
from repro.services.taskgraph import AppSpec, ServiceSpec

__all__ = [
    "WORKLOADS",
    "WorkloadProfile",
    "calibrate_initial_cores",
    "get_workload",
    "node_budget",
    "workload_table",
]

#: The paper's initial frequency (1.6 GHz) — calibration assumes it.
_F_INIT = 1.6e9


@dataclass(frozen=True)
class WorkloadProfile:
    """One Table III row plus scaled-experiment defaults."""

    key: str
    workload: str
    action: str
    builder: Callable[..., AppSpec]
    #: Scaled open-loop base request rate (req/s), near the knee.
    base_rate: float
    #: Fixed-pool size at the scaled rate (None for conn-per-request apps).
    scaled_pool: Optional[int]
    #: Table III value (512 or None for ∞).
    paper_pool: Optional[int]

    def build(self, *, scaled: bool = True) -> AppSpec:
        """Build the app; ``scaled=True`` applies scaled pools + knee calibration."""
        if self.paper_pool is None:
            app = self.builder()
        else:
            app = self.builder(pool_size=self.scaled_pool if scaled else self.paper_pool)
        if scaled:
            app = calibrate_initial_cores(app, self.base_rate)
        return app


def _service_demand(spec: ServiceSpec, rate: float, frequency: float) -> float:
    """Mean cores needed by one service at ``rate`` req/s (M/G/∞ view)."""
    cycles = spec.pre_work.mean_cycles + spec.post_work.mean_cycles
    return rate * cycles / frequency


def calibrate_initial_cores(
    app: AppSpec,
    base_rate: float,
    *,
    target_util: float = 0.7,
    granularity: float = 0.5,
    frequency: float = _F_INIT,
    min_cores: float = 0.5,
) -> AppSpec:
    """Return ``app`` with initial cores set near the knee at ``base_rate``.

    Each service gets ``ceil((demand / target_util) / granularity) ·
    granularity`` cores, floored at ``min_cores`` — the simulation
    analogue of the artifact's "search for the allocation supporting the
    highest request rate, base rate slightly below the knee".
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if not 0 < target_util < 1:
        raise ValueError("target_util must be in (0, 1)")
    new_services = []
    for spec in app.services:
        demand = _service_demand(spec, base_rate, frequency)
        cores = max(min_cores, math.ceil(demand / target_util / granularity) * granularity)
        new_services.append(dataclasses.replace(spec, initial_cores=cores))
    return dataclasses.replace(app, services=tuple(new_services))


def node_budget(
    app: AppSpec,
    *,
    headroom: float = 0.65,
    n_nodes: int = 1,
    replica_capacity: int = 1,
) -> float:
    """Per-node workload core budget, paper-style (initial = 2/3 of budget).

    For multi-node runs the per-node budget is kept at the single-node
    value (the paper keeps 52 workload cores per node as it scales out),
    which is what makes larger clusters *less* resource-constrained.

    ``replica_capacity`` sizes the budget for horizontal scaling: the
    cluster can host up to that many replicas of every service at their
    initial allocations (plus the usual headroom).  The default of 1
    reproduces the unreplicated budget exactly.
    """
    if replica_capacity < 1:
        raise ValueError("replica_capacity must be >= 1")
    total_init = sum(s.initial_cores for s in app.services) * replica_capacity
    per_node_init = total_init / n_nodes
    return max(math.ceil(per_node_init / headroom), math.ceil(total_init / headroom / n_nodes))


WORKLOADS: Dict[str, WorkloadProfile] = {
    "chain": WorkloadProfile(
        key="chain",
        workload="CHAIN",
        action="-",
        builder=chain_app,
        base_rate=1800.0,
        scaled_pool=16,
        paper_pool=512,
    ),
    "readUserTimeline": WorkloadProfile(
        key="readUserTimeline",
        workload="socialNetwork",
        action="ReadUserTimeline",
        builder=read_user_timeline_app,
        base_rate=1100.0,
        scaled_pool=12,
        paper_pool=512,
    ),
    "composePost": WorkloadProfile(
        key="composePost",
        workload="socialNetwork",
        action="ComposePost",
        builder=compose_post_app,
        base_rate=900.0,
        scaled_pool=20,
        paper_pool=512,
    ),
    "searchHotel": WorkloadProfile(
        key="searchHotel",
        workload="hotelReservation",
        action="searchHotel",
        builder=search_hotel_app,
        base_rate=900.0,
        scaled_pool=None,
        paper_pool=None,
    ),
    "recommendHotel": WorkloadProfile(
        key="recommendHotel",
        workload="hotelReservation",
        action="recommendHotel",
        builder=recommend_hotel_app,
        base_rate=1100.0,
        scaled_pool=None,
        paper_pool=None,
    ),
}


def get_workload(key: str) -> WorkloadProfile:
    """Look up a workload profile by key (see :data:`WORKLOADS`)."""
    try:
        return WORKLOADS[key]
    except KeyError:
        raise KeyError(
            f"unknown workload {key!r}; available: {sorted(WORKLOADS)}"
        ) from None


def workload_table() -> List[Tuple[str, str, int, str, str]]:
    """Regenerate Table III: (workload, action, depth, RPC, pool label)."""
    rows = []
    for profile in WORKLOADS.values():
        app = profile.build(scaled=False)
        rows.append(
            (
                profile.workload,
                profile.action,
                app.depth,
                app.rpc_framework,
                app.threadpool_label,
            )
        )
    return rows
