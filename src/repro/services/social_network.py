"""socialNetwork workload (DeathStarBench) — two actions.

Both actions use Thrift with fixed-size threadpools (Table III).  The
task graphs reproduce the DeathStarBench service names and the depths
the paper reports (5 for ReadUserTimeline, 8 for ComposePost); work
parameters are calibrated, not measured, since the real benchmark's
datasets (socfb-Reed98 + 30 generated posts/user) are not available
here — see DESIGN.md "Substitutions".

The service-level asymmetries matter for the reproduction:

* ``user-timeline-service`` is the *mid-graph aggregator* whose fixed
  pool to post-storage is where the hidden queue forms (Fig. 14);
* the storage tier (memcached / mongodb) is lighter per request but
  saturates during surges because its initial allocation is lean —
  these are the containers SurgeGuard's hints reach and the baselines
  starve.
"""

from __future__ import annotations

from typing import Optional

from repro.services.taskgraph import AppSpec, EdgeSpec, ServiceSpec, WorkDist

__all__ = ["read_user_timeline_app", "compose_post_app"]


def read_user_timeline_app(
    *,
    pool_size: Optional[int] = 512,
    qos_target: float = 16e-3,
) -> AppSpec:
    """socialNetwork ReadUserTimeline (depth 5, Thrift, fixed pools)."""
    mk = WorkDist
    services = (
        # nginx proxies over its own event loop — effectively unbounded
        # concurrency toward the service tier (the Thrift fixed pools sit
        # *between* the services, which is where the paper's implicit
        # queue forms: in user-timeline-service, Fig. 14).
        ServiceSpec(
            "nginx-web-server",
            pre_work=mk(0.4e6),
            children=(EdgeSpec("user-timeline-service", None),),
            initial_cores=1.0,
        ),
        ServiceSpec(
            "user-timeline-service",
            pre_work=mk(1.4e6),
            children=(
                EdgeSpec("user-timeline-redis", pool_size),
                EdgeSpec("post-storage-service", pool_size),
            ),
            post_work=mk(0.3e6),
            initial_cores=2.0,
        ),
        ServiceSpec("user-timeline-redis", pre_work=mk(0.45e6), initial_cores=1.0),
        ServiceSpec(
            "post-storage-service",
            pre_work=mk(1.1e6),
            children=(EdgeSpec("post-storage-memcached", pool_size),),
            initial_cores=1.5,
        ),
        ServiceSpec(
            "post-storage-memcached",
            pre_work=mk(0.7e6),
            children=(EdgeSpec("post-storage-mongodb", pool_size),),
            initial_cores=1.0,
        ),
        ServiceSpec("post-storage-mongodb", pre_work=mk(0.9e6), initial_cores=1.0),
    )
    return AppSpec(
        name="socialNetwork",
        action="ReadUserTimeline",
        services=services,
        root="nginx-web-server",
        qos_target=qos_target,
        rpc_framework="thrift",
        description="Timeline read: nginx -> user-timeline -> storage tier",
    )


def compose_post_app(
    *,
    pool_size: Optional[int] = 512,
    qos_target: float = 24e-3,
) -> AppSpec:
    """socialNetwork ComposePost (depth 8, Thrift, fixed pools).

    Backbone: nginx → compose-post → user → social-graph → home-timeline
    → post-storage → memcached → mongodb (8 deep), with the text/URL and
    user-mention branches hanging off compose-post as in DeathStarBench.
    """
    mk = WorkDist
    services = (
        # Event-driven front tier: see read_user_timeline_app.
        ServiceSpec(
            "nginx-web-server",
            pre_work=mk(0.4e6),
            children=(EdgeSpec("compose-post-service", None),),
            initial_cores=1.0,
        ),
        ServiceSpec(
            "compose-post-service",
            pre_work=mk(1.2e6),
            children=(
                EdgeSpec("text-service", pool_size),
                EdgeSpec("user-service", pool_size),
            ),
            post_work=mk(0.3e6),
            initial_cores=2.0,
        ),
        ServiceSpec(
            "text-service",
            pre_work=mk(0.8e6),
            children=(
                EdgeSpec("url-shorten-service", pool_size),
                EdgeSpec("user-mention-service", pool_size),
            ),
            initial_cores=1.0,
        ),
        ServiceSpec("url-shorten-service", pre_work=mk(0.5e6), initial_cores=0.5),
        ServiceSpec("user-mention-service", pre_work=mk(0.5e6), initial_cores=0.5),
        ServiceSpec(
            "user-service",
            pre_work=mk(0.9e6),
            children=(EdgeSpec("social-graph-service", pool_size),),
            initial_cores=1.0,
        ),
        ServiceSpec(
            "social-graph-service",
            pre_work=mk(1.0e6),
            children=(EdgeSpec("home-timeline-service", pool_size),),
            initial_cores=1.5,
        ),
        ServiceSpec(
            "home-timeline-service",
            pre_work=mk(1.0e6),
            children=(EdgeSpec("post-storage-service", pool_size),),
            initial_cores=1.5,
        ),
        ServiceSpec(
            "post-storage-service",
            pre_work=mk(1.1e6),
            children=(EdgeSpec("post-storage-memcached", pool_size),),
            initial_cores=1.5,
        ),
        ServiceSpec(
            "post-storage-memcached",
            pre_work=mk(0.7e6),
            children=(EdgeSpec("post-storage-mongodb", pool_size),),
            initial_cores=1.0,
        ),
        ServiceSpec("post-storage-mongodb", pre_work=mk(0.9e6), initial_cores=1.0),
    )
    return AppSpec(
        name="socialNetwork",
        action="ComposePost",
        services=services,
        root="nginx-web-server",
        qos_target=qos_target,
        rpc_framework="thrift",
        description="Post composition: 8-deep backbone with text/user branches",
    )
