"""Declarative task-graph specifications.

An application is a DAG of services (paper Fig. 2).  Each service has a
pre-RPC compute phase, zero or more downstream edges (each with its own
connection pool, per §II-A), an optional post-RPC compute phase, and a
fan-out mode — ``sequential`` (Thrift-style synchronous calls, one after
another) or ``parallel`` (gRPC-async style, all children at once).

Work is expressed in **cycles** so DVFS has its physical meaning: a
300k-cycle handler takes 187.5 µs at 1.6 GHz and 93.75 µs at 3.2 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["AppSpec", "EdgeSpec", "ServiceSpec", "WorkDist"]

SEQUENTIAL = "sequential"
PARALLEL = "parallel"


@dataclass(frozen=True)
class WorkDist:
    """A per-request compute-work distribution, in cycles.

    Parameters
    ----------
    mean_cycles:
        Mean work per request.  Zero means the phase is skipped.
    dist:
        ``"deterministic"``, ``"exponential"``, or ``"lognormal"``.
    cv:
        Coefficient of variation for the lognormal shape (ignored
        otherwise).  Microservice handlers are fairly regular, so the
        workloads default to lognormal with cv≈0.25.
    """

    mean_cycles: float
    dist: str = "lognormal"
    cv: float = 0.25

    def __post_init__(self) -> None:
        if self.mean_cycles < 0:
            raise ValueError("mean_cycles must be non-negative")
        if self.dist not in ("deterministic", "exponential", "lognormal"):
            raise ValueError(f"unknown distribution {self.dist!r}")
        if self.cv < 0:
            raise ValueError("cv must be non-negative")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one request's work in cycles."""
        m = self.mean_cycles
        if m == 0.0 or self.dist == "deterministic":
            return m
        if self.dist == "exponential":
            return float(rng.exponential(m))
        # lognormal parameterized by mean and cv
        cv = max(self.cv, 1e-9)
        sigma2 = np.log1p(cv * cv)
        mu = np.log(m) - 0.5 * sigma2
        return float(rng.lognormal(mu, np.sqrt(sigma2)))

    @property
    def mean_seconds_at(self) -> "WorkDist":  # pragma: no cover - doc helper
        return self

    def mean_time(self, frequency_hz: float) -> float:
        """Mean uncontended execution time at a given frequency."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.mean_cycles / frequency_hz


#: A zero-work phase (skipped entirely by the invocation machinery).
NO_WORK = WorkDist(0.0, "deterministic")


@dataclass(frozen=True)
class EdgeSpec:
    """A downstream RPC edge with its connection-pool size.

    ``pool_size=None`` selects the connection-per-request model.
    """

    child: str
    pool_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pool_size is not None and self.pool_size < 1:
            raise ValueError("pool_size must be >= 1 or None")


@dataclass(frozen=True)
class ServiceSpec:
    """One service of an application."""

    name: str
    pre_work: WorkDist
    children: Tuple[EdgeSpec, ...] = ()
    post_work: WorkDist = NO_WORK
    fanout: str = SEQUENTIAL
    #: Initial core allocation (the paper searches for the steady-state
    #: optimum; workload modules embed the result of that search).
    initial_cores: float = 2.0

    def __post_init__(self) -> None:
        if self.fanout not in (SEQUENTIAL, PARALLEL):
            raise ValueError(f"unknown fanout mode {self.fanout!r}")
        if self.initial_cores <= 0:
            raise ValueError("initial_cores must be positive")
        seen = set()
        for e in self.children:
            if e.child in seen:
                raise ValueError(f"duplicate child {e.child!r} in {self.name!r}")
            seen.add(e.child)


@dataclass(frozen=True)
class AppSpec:
    """A complete application: services, entry point, and QoS target."""

    name: str
    action: str
    services: Tuple[ServiceSpec, ...]
    root: str
    #: End-to-end latency target in seconds (the wrk2 ``-qos`` knob; the
    #: harness may override it from profiling, like the artifact does).
    qos_target: float
    rpc_framework: str = "thrift"
    description: str = ""

    def __post_init__(self) -> None:
        names = [s.name for s in self.services]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate service names in app {self.name!r}")
        by_name = {s.name: s for s in self.services}
        if self.root not in by_name:
            raise ValueError(f"root {self.root!r} not among services")
        for s in self.services:
            for e in s.children:
                if e.child not in by_name:
                    raise ValueError(f"{s.name!r} references unknown child {e.child!r}")
        if self.qos_target <= 0:
            raise ValueError("qos_target must be positive")
        self._check_acyclic(by_name)

    def _check_acyclic(self, by_name: Dict[str, ServiceSpec]) -> None:
        state: Dict[str, int] = {}  # 0=visiting, 1=done

        def visit(name: str, stack: Tuple[str, ...]) -> None:
            st = state.get(name)
            if st == 1:
                return
            if st == 0:
                raise ValueError(f"task graph cycle through {name!r}: {stack}")
            state[name] = 0
            for e in by_name[name].children:
                visit(e.child, stack + (name,))
            state[name] = 1

        visit(self.root, ())

    # ------------------------------------------------------------- topology
    def service(self, name: str) -> ServiceSpec:
        """Look up a service by name."""
        for s in self.services:
            if s.name == name:
                return s
        raise KeyError(name)

    @property
    def service_names(self) -> List[str]:
        """Service names in declaration (roughly topological) order."""
        return [s.name for s in self.services]

    def depths(self) -> Dict[str, int]:
        """Depth of each *reachable* service (root = 1, like the paper)."""
        by_name = {s.name: s for s in self.services}
        depth = {self.root: 1}
        frontier = [self.root]
        while frontier:
            nxt: List[str] = []
            for name in frontier:
                for e in by_name[name].children:
                    d = depth[name] + 1
                    if e.child not in depth or d > depth[e.child]:
                        depth[e.child] = d
                        nxt.append(e.child)
            frontier = nxt
        return depth

    @property
    def depth(self) -> int:
        """Task-graph depth (longest root-to-leaf path, counted in services)."""
        return max(self.depths().values())

    def downstream_of(self, name: str) -> List[str]:
        """All services reachable strictly below ``name``."""
        by_name = {s.name: s for s in self.services}
        out: List[str] = []
        seen = {name}
        frontier = [name]
        while frontier:
            nxt: List[str] = []
            for n in frontier:
                for e in by_name[n].children:
                    if e.child not in seen:
                        seen.add(e.child)
                        out.append(e.child)
                        nxt.append(e.child)
            frontier = nxt
        return out

    @property
    def uses_fixed_pools(self) -> bool:
        """True if any edge uses a fixed-size threadpool."""
        return any(
            e.pool_size is not None for s in self.services for e in s.children
        )

    @property
    def threadpool_label(self) -> str:
        """Table III's "Threadpool Size" column value."""
        sizes = {e.pool_size for s in self.services for e in s.children}
        sizes.discard(None)
        if not sizes:
            return "inf"
        return str(max(sizes))  # type: ignore[arg-type]
