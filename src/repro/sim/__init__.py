"""Discrete-event simulation engine.

This subpackage is the foundation of the reproduction: a deterministic,
single-threaded discrete-event simulator with cancellable events, named
RNG streams, and periodic-process helpers.  Everything above it (the
cluster substrate, workload generators, and the controllers themselves)
is expressed as callbacks scheduled on a :class:`Simulator`.

Simulated time is a ``float`` in **seconds**.  The engine is agnostic to
units, but the whole code base sticks to seconds / Hz / cycles.
"""

from repro.sim.calqueue import CalendarQueue, sched_mode
from repro.sim.engine import EventHandle, Simulator, SimulationError
from repro.sim.rng import RngRegistry
from repro.sim.process import PeriodicProcess

__all__ = [
    "CalendarQueue",
    "EventHandle",
    "PeriodicProcess",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "sched_mode",
]
