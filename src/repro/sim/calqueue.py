"""Calendar-queue (bucketed) event scheduler — the heap's high-density rival.

Why a calendar queue
--------------------
``heapq`` keeps :class:`~repro.sim.engine.EventHandle` objects ordered by
calling their Python-level ``__lt__`` — O(log n) *interpreted* comparisons
per push/pop.  At paper-scale pending counts (hundreds of entries) that is
cheap; at million-user arrival densities (tens of thousands of in-flight
timers) every operation pays ~17 Python method calls and the event loop
becomes comparison-bound.  A calendar queue (Brown 1988) replaces the
comparisons with arithmetic: an event lands in bucket
``floor(time / width) % nbuckets`` with a plain ``list.append``, and the
dequeue cursor sweeps buckets in time order, scanning only the handful of
entries that share the current bucket.  Push is O(1) with **zero**
comparisons; pop touches ~1 entry per bucket when the width tracks the
event density (the self-tuning policy below keeps it there).

Determinism contract
--------------------
The queue pops the **global minimum ``(time, seq)``** — the exact total
order the heap uses (``seq`` is unique, so the order is total and any
correct priority queue yields the identical pop sequence).  Ties on
``time`` always share a bucket (same index arithmetic), and the bucket
scan breaks them by ``seq`` with insertion order as the natural
tie-search direction; the committed golden fingerprints are therefore
bit-identical under either scheduler, which
``tests/exec/test_sched_identity.py`` and the CI golden-identity job both
enforce.  Bucket geometry (width, bucket count, cursor) influences only
*where* entries sit, never the order they pop in — and every retune is a
deterministic function of queue contents, so runs are exactly
reproducible.

Selection
---------
``REPRO_SCHED`` — read by :func:`sched_mode` at :class:`Simulator`
construction time (never at import time, same discipline as
:mod:`repro.sim.recycle`): ``heap`` (default) keeps the binary heap,
``calendar`` switches to this queue.  Flip the environment, build a fresh
simulator, get the other engine.

Resize & width policy (see DESIGN.md §9)
----------------------------------------
Two triggers keep the geometry matched to the workload:

* **Count resize** — the bucket array doubles when the live count exceeds
  ``2 × nbuckets`` and halves below ``nbuckets / 2`` (hysteresis prevents
  thrashing), never shrinking under :data:`MIN_BUCKETS`.
* **Degeneracy retune** — a dequeue that meets a bucket holding more than
  :data:`SCAN_TRIGGER` entries redistributes at the current size with a
  fresh width estimate.  This catches the classic calendar-queue failure
  mode count resizing cannot: a stable population whose time distribution
  drifted away from the width chosen at the last resize (e.g. a burst
  scheduled at one instant, then spreading out).  A cooldown of one lap
  (``nbuckets`` pops) latches the retune so a genuinely degenerate
  distribution — thousands of events at the *same* timestamp, where no
  width helps — pays one futile redistribution per lap, not per pop.

Both paths re-estimate the width from the sorted pending times as twice
the mean gap over the *head* of the queue (first ≤ 256 events), falling
back to the global mean gap when the head is a zero-span burst.  Head-
local estimation is what Brown's original design samples too: the width
must match the density where the cursor is about to sweep, not the global
span, which one far-future outlier would otherwise stretch.
"""

from __future__ import annotations

import os
from typing import List, Optional

__all__ = ["CalendarQueue", "sched_mode", "MIN_BUCKETS", "SCAN_TRIGGER"]

#: Smallest bucket-array size (power of two); also the initial size.
MIN_BUCKETS = 32

#: Bucket occupancy at which a dequeue triggers a width retune.
SCAN_TRIGGER = 16

#: Width estimation samples this many events at the head of the queue.
_HEAD_SAMPLE = 256

#: Initial bucket width (seconds) before the first estimate replaces it.
_INITIAL_WIDTH = 1.0

_MODES = ("heap", "calendar")


def sched_mode() -> str:
    """Scheduler selection (``REPRO_SCHED``): ``"heap"`` or ``"calendar"``.

    Read at :class:`~repro.sim.engine.Simulator` construction time.  An
    unset or empty variable means the default binary heap; anything else
    must name a known scheduler.
    """
    raw = os.environ.get("REPRO_SCHED", "").strip().lower()
    if raw in ("", "heap"):
        return "heap"
    if raw == "calendar":
        return "calendar"
    raise ValueError(
        f"REPRO_SCHED={raw!r}: expected one of {', '.join(_MODES)}"
    )


class CalendarQueue:
    """A self-resizing bucketed priority queue over event handles.

    Stores any object with ``time`` (finite float), ``seq`` (unique int)
    and ``fn`` (``None`` marks a lazily-cancelled entry for
    :meth:`compact`) attributes.  Buckets are insertion-ordered Python
    lists; the dequeue scan picks the strict ``(time, seq)`` minimum, so
    FIFO insertion order is preserved for simultaneous events exactly as
    the heap's ``seq`` tie-break does.
    """

    __slots__ = (
        "_buckets",
        "_nbuckets",
        "_mask",
        "_width",
        "_count",
        "_cur",
        "_retune_cooldown",
    )

    def __init__(self) -> None:
        self._nbuckets = MIN_BUCKETS
        self._mask = MIN_BUCKETS - 1
        self._buckets: List[list] = [[] for _ in range(MIN_BUCKETS)]
        self._width = _INITIAL_WIDTH
        self._count = 0
        #: Absolute (unwrapped) index of the bucket the dequeue cursor is
        #: parked on.  Invariant: no pending entry's time precedes the
        #: start of this bucket's window.
        self._cur = 0
        #: Pops remaining before another degeneracy retune is allowed.
        self._retune_cooldown = 0

    # ----------------------------------------------------------- inspection
    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    @property
    def nbuckets(self) -> int:
        """Current bucket-array size (tests observe the resize policy)."""
        return self._nbuckets

    @property
    def width(self) -> float:
        """Current bucket width in seconds."""
        return self._width

    # ------------------------------------------------------------- mutation
    def push(self, handle) -> None:
        """Insert a handle; O(1), no comparisons."""
        i = int(handle.time // self._width)
        count = self._count
        if count == 0 or i < self._cur:
            # An insert behind the cursor (legal whenever the cursor has
            # swept past ``now`` hunting a far-future head) rewinds it;
            # an insert into an empty queue re-parks it outright so the
            # next pop starts at the right bucket instead of sweeping.
            self._cur = i
        self._buckets[i & self._mask].append(handle)
        self._count = count + 1
        if count >= 2 * self._nbuckets:
            self._resize(self._nbuckets * 2)

    def pop(self):
        """Remove and return the ``(time, seq)``-minimum handle, or ``None``.

        Sweeps buckets from the cursor, considering only entries that
        belong to the current bucket's calendar *year* (later years wrap
        into the same bucket and are skipped by the year-index test).  If
        a whole lap finds nothing — the pending set sits far in the
        future — it falls back to a direct search and jumps the cursor
        there, which keeps sparse phases from costing a full lap per pop.
        """
        if self._count == 0:
            return None
        if self._retune_cooldown > 0:
            self._retune_cooldown -= 1
        while True:
            buckets = self._buckets
            mask = self._mask
            width = self._width
            cur = self._cur
            end = cur + self._nbuckets
            retuned = False
            while cur < end:
                bucket = buckets[cur & mask]
                if bucket:
                    if (
                        len(bucket) > SCAN_TRIGGER
                        and self._retune_cooldown == 0
                    ):
                        # Degenerate occupancy: the width no longer
                        # matches the head density.  Redistribute with a
                        # fresh estimate and restart the sweep under the
                        # new geometry.
                        self._retune_cooldown = self._nbuckets
                        self._resize(self._nbuckets)
                        retuned = True
                        break
                    best = None
                    best_t = 0.0
                    best_seq = 0
                    fcur = float(cur)
                    for h in bucket:
                        t = h.time
                        # Membership in the current calendar year is
                        # decided by the *same* ``time // width``
                        # arithmetic the insert used — never by a
                        # recomputed ``cur * width`` boundary, whose
                        # rounding could disagree near bucket edges and
                        # pop entries out of order.  (``t // width`` is
                        # an integral float compared against ``cur``
                        # exactly; indices stay far below 2**53, where
                        # the int↔float round-trip is lossless.)
                        if t // width == fcur and (
                            best is None
                            or t < best_t
                            or (t == best_t and h.seq < best_seq)
                        ):
                            best = h
                            best_t = t
                            best_seq = h.seq
                    if best is not None:
                        # EventHandle has no __eq__, so remove() matches
                        # by identity via the rich-compare fast path.
                        bucket.remove(best)
                        self._cur = cur
                        count = self._count - 1
                        self._count = count
                        if (
                            count < self._nbuckets // 2
                            and self._nbuckets > MIN_BUCKETS
                        ):
                            self._resize(self._nbuckets // 2)
                        return best
                cur += 1
            if not retuned:
                return self._pop_direct()

    def _pop_direct(self):
        """One full lap was empty: linear-search the true minimum."""
        best = None
        best_t = 0.0
        best_seq = 0
        best_bucket = None
        best_i = 0
        for bucket in self._buckets:
            for j, h in enumerate(bucket):
                t = h.time
                if (
                    best is None
                    or t < best_t
                    or (t == best_t and h.seq < best_seq)
                ):
                    best = h
                    best_t = t
                    best_seq = h.seq
                    best_bucket = bucket
                    best_i = j
        # count > 0 was checked by pop(), so a minimum must exist.
        del best_bucket[best_i]
        self._cur = int(best_t // self._width)
        self._count -= 1
        if self._count < self._nbuckets // 2 and self._nbuckets > MIN_BUCKETS:
            self._resize(self._nbuckets // 2)
        return best

    def compact(self) -> int:
        """Drop lazily-cancelled entries (``fn is None``); return how many."""
        removed = 0
        for bucket in self._buckets:
            if bucket:
                kept = [h for h in bucket if h.fn is not None]
                removed += len(bucket) - len(kept)
                bucket[:] = kept
        self._count -= removed
        return removed

    def clear(self) -> None:
        """Discard every entry (the engine's ``drain``)."""
        for bucket in self._buckets:
            bucket.clear()
        self._count = 0

    # --------------------------------------------------------------- resize
    def _estimate_width(self, times: List[float]) -> float:
        """Fresh bucket width from the sorted pending times.

        Twice the mean inter-event gap over the head sample (the region
        the cursor sweeps next), falling back to the global mean gap when
        the head is a zero-span burst, and to the current width when the
        whole population shares one timestamp.
        """
        span = times[-1] - times[0]
        if span <= 0.0:
            return self._width
        k = min(len(times), _HEAD_SAMPLE)
        head_span = times[k - 1] - times[0]
        if head_span > 0.0:
            return max(2.0 * head_span / (k - 1), 1e-9)
        return max(2.0 * span / (len(times) - 1), 1e-9)

    def _resize(self, nbuckets: int) -> None:
        entries: list = []
        for bucket in self._buckets:
            entries.extend(bucket)
        if entries:
            self._width = self._estimate_width(
                sorted(h.time for h in entries)
            )
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._buckets = [[] for _ in range(nbuckets)]
        width = self._width
        mask = self._mask
        buckets = self._buckets
        cur: Optional[int] = None
        for h in entries:
            i = int(h.time // width)
            if cur is None or i < cur:
                cur = i
            buckets[i & mask].append(h)
        self._cur = 0 if cur is None else cur
