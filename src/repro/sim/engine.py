"""Core discrete-event simulation loop.

Design notes
------------
* Events are totally ordered by ``(time, seq)``, which gives deterministic
  FIFO ordering for simultaneous events — essential for reproducibility of
  the experiment protocol (17 seeded repetitions, trim, average).  Two
  interchangeable schedulers realize that order: the default binary heap,
  and a calendar queue (``REPRO_SCHED=calendar``, read at construction
  time like the recycling switches) that beats the heap at high pending
  densities by replacing O(log n) Python-level ``__lt__`` calls with O(1)
  bucket arithmetic — see :mod:`repro.sim.calqueue` and DESIGN.md §9.
  Because both structures pop the exact same total order, every committed
  golden fingerprint is bit-identical under either.
* Events are *cancellable*: :meth:`Simulator.schedule` returns an
  :class:`EventHandle`; cancelled handles stay in the heap and are skipped
  on pop (the standard "lazy deletion" trick).  Re-scheduling a container's
  next-completion event on every allocation change relies on this being
  cheap.
* Handlers are plain callables ``fn(*args)``.  Coroutine-style processes are
  intentionally avoided in the hot path (per the profiling-first HPC guide:
  the event loop is the bottleneck, so it stays minimal); the convenience
  wrapper :class:`repro.sim.process.PeriodicProcess` covers the common
  "controller decision cycle" pattern.
* Handles are *recycled*: after an event fires (or a lazily-cancelled entry
  is dropped) the handle goes back on a free list and the next
  :meth:`Simulator.schedule` reuses it — but **only** when
  ``sys.getrefcount`` proves the run loop holds the last reference.  A
  handle someone kept (say, for a later ``cancel()``) is never recycled,
  which makes stale-handle corruption impossible by construction rather
  than by convention.  ``REPRO_POOL=0`` disables recycling (see
  :mod:`repro.sim.recycle`).
"""

from __future__ import annotations

import heapq
import math
import sys
from typing import Any, Callable, Optional

from repro.sim.calqueue import CalendarQueue, sched_mode
from repro.sim.recycle import pool_enabled

__all__ = ["EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid use of the simulator (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Instances are created by :meth:`Simulator.schedule`; user code should
    only ever call :meth:`cancel` and read :attr:`time`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "owner")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        #: The owning :class:`Simulator`, so cancellation can keep its
        #: lazily-cancelled-entry count (heap compaction trigger) honest.
        self.owner: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Cancel the event.  Idempotent; cancelling a fired event is a no-op."""
        if not self.cancelled and self.fn is not None and self.owner is not None:
            self.owner._note_cancel()
        self.cancelled = True
        # Drop references so a cancelled handle retained by user code does not
        # keep a whole object graph alive until the heap drains.
        self.fn = None
        self.args = ()
        self.owner = None

    @property
    def active(self) -> bool:
        """True while the event is scheduled and not yet fired or cancelled."""
        return not self.cancelled and self.fn is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"<EventHandle t={self.time:.9f} seq={self.seq} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulated clock value (seconds).  Defaults to ``0.0``.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> h = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    __slots__ = (
        "_now",
        "_heap",
        "_cal",
        "_seq",
        "_running",
        "_fired_count",
        "_cancelled_pending",
        "_free",
        "_handles_recycled",
        "trace_hook",
    )

    #: Compact the heap once this many lazily-cancelled entries pile up
    #: *and* they outnumber the live ones (see :meth:`_note_cancel`).
    _COMPACT_MIN = 512

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[EventHandle] = []
        # Scheduler selection (``REPRO_SCHED``), frozen at construction:
        # ``None`` keeps the binary heap above, a CalendarQueue replaces
        # it wholesale (the heap list then stays empty forever).
        self._cal: Optional[CalendarQueue] = (
            CalendarQueue() if sched_mode() == "calendar" else None
        )
        self._seq = 0
        self._running = False
        self._fired_count = 0
        self._cancelled_pending = 0
        # Handle free list (``None`` = recycling off).  A fired/cancelled
        # handle is only appended when ``sys.getrefcount`` proves the
        # loop holds the sole remaining reference, so a handle retained
        # by user code (for a later ``cancel()``) is never reused under
        # it.  That proof is CPython-specific; other interpreters simply
        # allocate fresh handles.
        self._free: Optional[list[EventHandle]] = (
            [] if pool_enabled() and sys.implementation.name == "cpython" else None
        )
        self._handles_recycled = 0
        #: optional callable ``(time, fn, args)`` invoked before each event;
        #: used by tests and the debugging tracer, ``None`` in production runs.
        self.trace_hook: Optional[Callable[[float, Callable, tuple], None]] = None

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for engine benchmarks)."""
        return self._fired_count

    @property
    def events_pending(self) -> int:
        """Number of pending entries, *including* lazily-cancelled ones."""
        cal = self._cal
        return len(self._heap) if cal is None else len(cal)

    @property
    def scheduler(self) -> str:
        """Active scheduler: ``"heap"`` or ``"calendar"``."""
        return "heap" if self._cal is None else "calendar"

    @property
    def handles_recycled(self) -> int:
        """Schedules served from the handle free list (allocation bench)."""
        return self._handles_recycled

    @property
    def handles_constructed(self) -> int:
        """Fresh :class:`EventHandle` allocations so far."""
        return self._seq - self._handles_recycled

    @property
    def live_events_pending(self) -> int:
        """Number of *live* (not lazily-cancelled) pending events.

        Exact: ``_cancelled_pending`` counts every cancelled entry still
        sitting in the scheduler.  The validation layer uses this to
        decide whether a run has fully drained (no in-flight work
        remains).
        """
        return self.events_pending - self._cancelled_pending

    def next_event_time(self) -> float:
        """Time of the earliest *live* pending event, or ``math.inf``.

        The sharded tier's conservative-sync barrier (DESIGN.md §12)
        needs each shard's local horizon between ``run(until=...)``
        windows.  Lazily-cancelled heads are dropped here exactly as the
        run loops would drop them — with the same bookkeeping and
        handle-recycling — so peeking never perturbs the counters a
        later run would have produced.
        """
        free = self._free
        getrefcount = sys.getrefcount
        cal = self._cal
        if cal is None:
            heap = self._heap
            while heap:
                head = heap[0]
                if head.fn is not None:
                    return head.time
                heapq.heappop(heap)
                if head.cancelled:
                    self._cancelled_pending -= 1
                    if free is not None and getrefcount(head) == 2:
                        free.append(head)
            return math.inf
        while True:
            head = cal.pop()
            if head is None:
                return math.inf
            if head.fn is not None:
                cal.push(head)  # O(1) re-insert, same trick as _run_calendar
                return head.time
            if head.cancelled:
                self._cancelled_pending -= 1
                if free is not None and getrefcount(head) == 2:
                    free.append(head)

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be finite and non-negative.  Returns a cancellable
        :class:`EventHandle`.
        """
        if delay < 0.0 or not math.isfinite(delay):
            raise SimulationError(f"invalid event delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now or not math.isfinite(time):
            raise SimulationError(
                f"cannot schedule at t={time!r} (now={self._now!r})"
            )
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.seq = self._seq
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
            handle.owner = self
            self._handles_recycled += 1
        else:
            handle = EventHandle(time, self._seq, fn, args)
            handle.owner = self
        self._seq += 1
        cal = self._cal
        if cal is None:
            heapq.heappush(self._heap, handle)
        else:
            cal.push(handle)
        return handle

    def _note_cancel(self) -> None:
        """Bookkeeping hook called by :meth:`EventHandle.cancel`.

        Once lazily-cancelled entries both exceed a fixed floor and make
        up over half the pending set, rebuild the scheduler without them:
        the container rescheduling pattern can otherwise leave it
        dominated by dead entries.  Both schedulers use the identical
        trigger, so compaction fires at the same points in a run.
        """
        self._cancelled_pending += 1
        if self._cancelled_pending < self._COMPACT_MIN:
            return
        cal = self._cal
        if cal is not None:
            if self._cancelled_pending * 2 > len(cal):
                cal.compact()
                self._cancelled_pending = 0
            return
        heap = self._heap
        if self._cancelled_pending * 2 > len(heap):
            # In-place so loops holding a reference to the list stay valid.
            heap[:] = [h for h in heap if h.fn is not None]
            heapq.heapify(heap)
            self._cancelled_pending = 0

    # ---------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` if none remain."""
        free = self._free
        getrefcount = sys.getrefcount
        cal = self._cal
        heap = self._heap
        while True:
            if cal is None:
                if not heap:
                    return False
                handle = heapq.heappop(heap)
            else:
                handle = cal.pop()
                if handle is None:
                    return False
            if handle.fn is None:  # fired is impossible here; this means cancelled
                if handle.cancelled:
                    self._cancelled_pending -= 1
                    if free is not None and getrefcount(handle) == 2:
                        free.append(handle)
                continue
            self._now = handle.time
            fn, args = handle.fn, handle.args
            handle.fn = None  # mark fired
            # Cleared unconditionally, not only on the recycle path: a
            # fired handle someone retained must not pin the callback's
            # argument graph until GC.
            handle.args = ()
            handle.owner = None
            if self.trace_hook is not None:
                self.trace_hook(self._now, fn, args)
            self._fired_count += 1
            fn(*args)
            if free is not None and getrefcount(handle) == 2:
                free.append(handle)
            return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given the clock is advanced to exactly ``until`` on
        return (even if the last event fired earlier), so back-to-back
        ``run(until=...)`` calls behave like a continuous timeline.

        This is the hot loop of every simulation: each scheduler gets its
        own inlined loop (rather than delegating to :meth:`step`) so a
        fired event costs one dequeue plus the handler call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        if self._cal is not None:
            self._run_calendar(until, max_events)
        else:
            self._run_heap(until, max_events)
        if until is not None and self._now < until:
            self._now = until

    def _run_heap(self, until: Optional[float], max_events: Optional[int]) -> None:
        budget = math.inf if max_events is None else max_events
        heap = self._heap
        heappop = heapq.heappop
        free = self._free
        getrefcount = sys.getrefcount
        try:
            while heap and budget > 0:
                head = heap[0]
                if head.fn is None:  # lazily-cancelled entry: drop and rescan
                    heappop(heap)
                    if head.cancelled:
                        self._cancelled_pending -= 1
                        # ``cancel()`` already cleared fn/args/owner; a
                        # refcount of 2 (the local + getrefcount's arg)
                        # proves the canceller dropped its reference too.
                        if free is not None and getrefcount(head) == 2:
                            free.append(head)
                    continue
                if until is not None and head.time > until:
                    break
                heappop(heap)
                self._now = head.time
                fn, args = head.fn, head.args
                head.fn = None  # mark fired
                head.args = ()  # unconditional: see step()
                head.owner = None
                if self.trace_hook is not None:
                    self.trace_hook(self._now, fn, args)
                self._fired_count += 1
                fn(*args)
                budget -= 1
                if free is not None and getrefcount(head) == 2:
                    free.append(head)
        finally:
            self._running = False

    def _run_calendar(self, until: Optional[float], max_events: Optional[int]) -> None:
        """Calendar-queue twin of :meth:`_run_heap`.

        The calendar queue has no O(1) peek, so the ``until`` boundary is
        handled by re-inserting the one head that overshoots it — an O(1)
        append back into the bucket it came from.  The sequence of
        *dispatched* events (and of dropped lazily-cancelled entries,
        which both loops discard strictly in pop order up to the first
        live head past ``until``) is identical to the heap loop's, which
        keeps ``events_pending`` and the recycling counters bit-identical
        between schedulers at every observable point.
        """
        budget = math.inf if max_events is None else max_events
        cal = self._cal
        pop = cal.pop
        free = self._free
        getrefcount = sys.getrefcount
        try:
            while budget > 0:
                head = pop()
                if head is None:
                    break
                if head.fn is None:  # lazily-cancelled entry: drop and rescan
                    if head.cancelled:
                        self._cancelled_pending -= 1
                        if free is not None and getrefcount(head) == 2:
                            free.append(head)
                    continue
                if until is not None and head.time > until:
                    cal.push(head)
                    break
                self._now = head.time
                fn, args = head.fn, head.args
                head.fn = None  # mark fired
                head.args = ()  # unconditional: see step()
                head.owner = None
                if self.trace_hook is not None:
                    self.trace_hook(self._now, fn, args)
                self._fired_count += 1
                fn(*args)
                budget -= 1
                if free is not None and getrefcount(head) == 2:
                    free.append(head)
        finally:
            self._running = False

    def drain(self) -> None:
        """Discard all pending events without running them."""
        self._heap.clear()
        if self._cal is not None:
            self._cal.clear()
        self._cancelled_pending = 0
