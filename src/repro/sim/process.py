"""Periodic-process helper for controller decision cycles.

Resource controllers in this code base (Parties' 500 ms loop, Escalator's
decision cycle, runtime metric flushes, energy sampling) all share the
same shape: *run a callback every ``interval`` seconds until stopped*.
:class:`PeriodicProcess` packages that pattern with phase control and
clean cancellation so controllers never touch the event heap directly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import EventHandle, Simulator

__all__ = ["PeriodicProcess"]


class PeriodicProcess:
    """Invoke ``fn()`` every ``interval`` simulated seconds.

    Parameters
    ----------
    sim:
        The simulator to schedule on.
    interval:
        Period in seconds (must be positive).
    fn:
        Zero-argument callback.
    phase:
        Delay before the first invocation.  Defaults to one full interval
        (i.e. the first tick happens at ``now + interval``).
    jitter_fn:
        Optional callable returning a per-tick extra delay; used to model
        controller wake-up noise in the Table I update-interval benchmark.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[[], Any],
        *,
        phase: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
    ):
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.sim = sim
        self.interval = float(interval)
        self.fn = fn
        self.jitter_fn = jitter_fn
        self.ticks = 0
        self._handle: Optional[EventHandle] = None
        self._stopped = False
        first = self.interval if phase is None else float(phase)
        self._handle = sim.schedule(first, self._tick)

    @property
    def running(self) -> bool:
        return not self._stopped

    def stop(self) -> None:
        """Stop the process; idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def set_interval(self, interval: float) -> None:
        """Change the period; takes effect from the next tick."""
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.interval = float(interval)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        self.fn()
        if self._stopped:  # fn() may have called stop()
            return
        delay = self.interval
        if self.jitter_fn is not None:
            delay += max(0.0, self.jitter_fn())
        self._handle = self.sim.schedule(delay, self._tick)
