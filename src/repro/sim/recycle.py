"""Process-wide switches for the allocation-recycling layer.

Both free lists introduced for the hot paths — the engine's
:class:`~repro.sim.engine.EventHandle` pool and the network's
:class:`~repro.cluster.packet.PacketPool` — read these flags **at
construction time** (never at import time), so a test can flip the
environment, build a fresh simulator/cluster, and get the other mode
without reloading modules:

* ``REPRO_POOL`` — master switch, default on.  Set to ``0`` to disable
  all recycling; every hot-path object is then freshly allocated, which
  is the reference behavior the bit-identity suite compares against.
* ``REPRO_POOL_DEBUG`` — default off.  When on, released packets are
  *poisoned* (fields overwritten with sentinels that make any later use
  raise or propagate NaN) so a use-after-release surfaces at the point
  of use instead of as silent state corruption.  Event handles need no
  poison mode: a fired handle is only recycled when the interpreter
  refcount proves nothing else holds it (see ``Simulator.run``), so a
  handle use-after-release cannot be constructed.

See DESIGN.md §8 ("Allocation discipline") for the release-point rules.
"""

from __future__ import annotations

import os

__all__ = ["pool_enabled", "pool_debug"]

_FALSY = ("0", "false", "no", "off", "")


def _flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def pool_enabled() -> bool:
    """Master recycling switch (``REPRO_POOL``, default on)."""
    return _flag("REPRO_POOL", True)


def pool_debug() -> bool:
    """Poison-released-objects mode (``REPRO_POOL_DEBUG``, default off)."""
    return _flag("REPRO_POOL_DEBUG", False)
