"""Named, independently-seeded random streams.

Every stochastic component (arrival process, per-service work draws,
network jitter, ...) pulls its own :class:`numpy.random.Generator` from a
shared :class:`RngRegistry`.  Streams are derived with
``numpy.random.SeedSequence.spawn``-style keying so that

* two runs with the same root seed are bit-identical, and
* adding a new consumer does not perturb the draws of existing ones
  (each stream is keyed by its *name*, not by creation order).

This is what makes the artifact's 17-repetition / trim-outliers protocol
meaningful in simulation: repetition *i* simply uses root seed
``base_seed + i``.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


def _stable_key(name: str) -> int:
    """Map a stream name to a stable 32-bit integer (CRC32 of the UTF-8 bytes)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class RngRegistry:
    """Factory for named, reproducible random generators.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation run.

    Examples
    --------
    >>> r1, r2 = RngRegistry(7), RngRegistry(7)
    >>> bool((r1.stream("arrivals").random(4) == r2.stream("arrivals").random(4)).all())
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        instance (so draws advance its state), while distinct names get
        statistically independent streams.
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(_stable_key(name),))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are independent of this one (used for reps)."""
        return RngRegistry(self.seed * 1_000_003 + salt)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
