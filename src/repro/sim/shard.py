"""Shared-nothing sharding primitives: wire codec + conservative sync.

The sharded simulation mode (DESIGN.md §12) partitions the cluster's
nodes across K independent event loops — one :class:`ShardContext` per
loop — and models cross-node RPCs that cross a shard boundary as
inter-shard messages.  This module holds everything the *simulation*
layer needs to know about sharding; process lifecycle and the barrier
loop live in :mod:`repro.exec.sharded`.

Conservative time synchronization
---------------------------------

Shards advance in windows separated by barriers.  At each barrier every
shard i publishes a **promise** — a lower bound on the earliest thing
that can still happen on it::

    promise_i = min(next local event time,
                    min over packets sent this window of send_time + L)

where ``L`` (the *lookahead*) is the network's base cross-node latency
floor (``NetworkConfig.inter_node_latency``).  The second term covers
packets that are in flight to a peer whose own promise cannot yet see
them.  Every shard then commits the identical next barrier::

    t_next = min_i(promise_i) + L

Safety: any packet sent in the next window leaves at ``s >= min_i
promise_i`` and arrives at ``s + latency >= s + L >= t_next`` (cross-
node latency is at least ``L``: the jitter factor is ``>= 1`` and surge
extras / RX overheads are non-negative, and intra-node traffic never
crosses a shard).  So a packet exchanged at barrier ``t_next`` is never
in its receiver's past, and each shard's event order is a pure function
of (seed, shard count) — deterministic across runs.

Progress: ``min_i promise_i >= t_current`` (all events up to the
barrier have fired and in-window sends have ``send_time + L >=
t_current``), so each barrier advances time by at least ``L``; when
queues run dry the barrier jumps straight to the next event horizon, so
the number of barriers scales with event density, not ``1/L``.

Wire format
-----------

Cross-shard packets travel as plain tuples (:data:`WIRE_FIELDS`), never
as pickled :class:`~repro.cluster.packet.RpcPacket` objects: the sender
releases its pooled packet the moment it is serialized, and the
receiver re-acquires from *its own* pool — no pooled object ever crosses
a process, so the PR 5 recycling invariants hold per shard by
construction.  ``context`` (a caller continuation — unpicklable and
meaningless elsewhere) is replaced by a :class:`CtxToken` registered on
the origin shard and restored — and popped — when the matching response
returns.
"""

from __future__ import annotations

import math
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "CtxToken",
    "ShardConfigError",
    "ShardContext",
    "WIRE_FIELDS",
    "next_barrier",
    "shards_from_env",
]

#: Environment switch: ``REPRO_SHARDS=K`` arms the sharded mode for
#: experiment runs whose config leaves ``shards`` unset.  ``1`` arms the
#: bit-identical pass-through; unset/empty leaves the path untouched.
ENV_SHARDS = "REPRO_SHARDS"

#: The cross-shard wire tuple, in order.  ``seq`` is the per-channel
#: serial number (conservation ledger); ``context_token`` is ``None`` or
#: the ``(origin_shard, n)`` pair of a registered continuation.  Every
#: :class:`RpcPacket` field must be represented here or deliberately
#: excluded (``_pool_state`` never crosses — pool membership is strictly
#: per shard); ``tests/exec/test_shard_packet.py`` pins the ledger.
WIRE_FIELDS = (
    "seq",
    "request_id",
    "kind",
    "src",
    "dst",
    "start_time",
    "upscale",
    "send_time",
    "error",
    "context_token",
)


class ShardConfigError(ValueError):
    """Raised for sharding configurations that cannot run correctly."""


def shards_from_env() -> Optional[int]:
    """``REPRO_SHARDS`` as an int, or ``None`` when unset/empty."""
    raw = os.environ.get(ENV_SHARDS, "").strip()
    if not raw:
        return None
    try:
        k = int(raw)
    except ValueError:
        raise ShardConfigError(f"{ENV_SHARDS}={raw!r} is not an integer") from None
    if k < 1:
        raise ShardConfigError(f"{ENV_SHARDS} must be >= 1, got {k}")
    return k


class CtxToken:
    """Placeholder for a continuation registered on another shard.

    Travels opaquely: a server copies it from request to response
    exactly like a real context, and only the origin shard resolves it
    back to the callable.
    """

    __slots__ = ("origin", "n")

    def __init__(self, origin: int, n: int):
        self.origin = origin
        self.n = n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CtxToken shard={self.origin} n={self.n}>"


def next_barrier(promises: List[float], lookahead: float, t_final: float) -> float:
    """The committed next horizon given every shard's promise.

    Identical inputs on every shard → identical result (plain float
    min/add, no RNG), which is what makes the barrier implicit: no
    leader, no second message round.
    """
    earliest = min(promises)
    if earliest == math.inf:
        return t_final
    return min(earliest + lookahead, t_final)


class ShardContext:
    """One shard's view of the partitioned cluster.

    Owns the boundary state: per-peer outboxes of wire tuples, the
    conservation ledger (per-channel serial numbers on both ends), the
    pending-continuation table, and the promise bookkeeping for the
    conservative-sync protocol.  The network consults it on every send
    (via the precomputed :attr:`remote_nodes` set) and hands diverted
    packets to :meth:`divert`.
    """

    __slots__ = (
        "shard_id",
        "n_shards",
        "lookahead",
        "outboxes",
        "outbound_min",
        "seq_out",
        "seq_in",
        "received",
        "seq_errors",
        "remote_nodes",
        "_owner",
        "_ctx",
        "_ctx_n",
    )

    def __init__(self, shard_id: int, n_shards: int, lookahead: float):
        if not 0 <= shard_id < n_shards:
            raise ShardConfigError(f"shard_id {shard_id} outside [0, {n_shards})")
        if n_shards > 1 and lookahead <= 0.0:
            raise ShardConfigError(
                "sharded runs need a positive cross-node latency floor "
                f"(lookahead), got {lookahead!r}"
            )
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.lookahead = lookahead
        #: Per-destination-shard lists of wire tuples (own slot unused).
        self.outboxes: List[List[tuple]] = [[] for _ in range(n_shards)]
        #: min(send_time + lookahead) over packets diverted since the
        #: last :meth:`take_promise` — the in-flight half of the promise.
        self.outbound_min = math.inf
        #: Next serial number per outbound channel (== packets sent).
        self.seq_out = [0] * n_shards
        #: Expected next serial number per inbound channel.
        self.seq_in = [0] * n_shards
        #: Packets accepted per inbound channel.
        self.received = [0] * n_shards
        #: Out-of-order / duplicated / skipped serials observed inbound.
        self.seq_errors = 0
        #: Destination-node objects (or ``None`` for the external client
        #: endpoint) hosted by *other* shards; the network's divert check.
        self.remote_nodes: frozenset = frozenset()
        self._owner: Dict[Any, int] = {}
        self._ctx: Dict[int, Callable] = {}
        self._ctx_n = 0

    # ----------------------------------------------------------------- wiring
    def bind(self, owner_of: Dict[Any, int]) -> None:
        """Install the endpoint-node → owning-shard map.

        Keys are the cluster's ``Node`` objects plus ``None`` for the
        external client endpoint (hosted by shard 0, which also runs the
        workload generator).
        """
        self._owner = dict(owner_of)
        self.remote_nodes = frozenset(
            node for node, shard in self._owner.items() if shard != self.shard_id
        )

    def owner_shard(self, node: Any) -> int:
        """The shard hosting ``node`` (``None`` = the client, shard 0)."""
        return self._owner[node]

    # ---------------------------------------------------------------- outbound
    def divert(self, pkt, pool, dst_node) -> None:
        """Serialize a boundary-crossing packet into the peer's outbox.

        The packet's life on this shard ends here: it is released back
        to the *local* pool immediately after serialization, so pooled
        packets never cross shards.  A live continuation is swapped for
        a :class:`CtxToken`; a token already riding the packet (a
        response returning through a server shard) passes through.
        """
        dest = self._owner[dst_node]
        ctx = pkt.context
        if ctx is None:
            token = None
        elif type(ctx) is CtxToken:
            token = (ctx.origin, ctx.n)
        else:
            n = self._ctx_n
            self._ctx_n = n + 1
            self._ctx[n] = ctx
            token = (self.shard_id, n)
        self.outboxes[dest].append(
            (
                self.seq_out[dest],
                pkt.request_id,
                pkt.kind,
                pkt.src,
                pkt.dst,
                pkt.start_time,
                pkt.upscale,
                pkt.send_time,
                pkt.error,
                token,
            )
        )
        self.seq_out[dest] += 1
        horizon = pkt.send_time + self.lookahead
        if horizon < self.outbound_min:
            self.outbound_min = horizon
        pool.release(pkt)

    def take_outbox(self, dest: int) -> List[tuple]:
        """Drain and return the wire batch destined for shard ``dest``."""
        batch = self.outboxes[dest]
        self.outboxes[dest] = []
        return batch

    def take_promise(self, next_event_time: float) -> float:
        """This shard's promise for the current barrier (resets the
        in-flight minimum — the packets it covered are being handed to
        their receivers at this very barrier)."""
        promise = min(next_event_time, self.outbound_min)
        self.outbound_min = math.inf
        return promise

    # ---------------------------------------------------------------- inbound
    def accept_seq(self, src_shard: int, seq: int) -> None:
        """Ledger check: inbound serials must arrive exactly in order."""
        if seq != self.seq_in[src_shard]:
            self.seq_errors += 1
        self.seq_in[src_shard] = seq + 1
        self.received[src_shard] += 1

    def resolve_token(self, token: Optional[Tuple[int, int]]):
        """Turn a wire context token back into a packet context.

        On the origin shard the registered continuation is popped (each
        token resolves exactly once — its response); elsewhere it stays
        a :class:`CtxToken` for the eventual trip home.
        """
        if token is None:
            return None
        origin, n = token
        if origin == self.shard_id:
            return self._ctx.pop(n)
        return CtxToken(origin, n)

    # ------------------------------------------------------------- accounting
    @property
    def open_contexts(self) -> int:
        """Continuations still awaiting their cross-shard response."""
        return len(self._ctx)

    def ledger(self) -> dict:
        """Picklable conservation snapshot for the monitor/bench layer."""
        return {
            "shard": self.shard_id,
            "sent": list(self.seq_out),
            "received": list(self.received),
            "seq_errors": self.seq_errors,
            "open_contexts": self.open_contexts,
        }
