"""Runtime validation layer: invariant monitors + differential matrix.

Two perf PRs rewrote the packet path and event loop; this package is the
safety net the next ones run against:

* :mod:`repro.validate.monitors` — pluggable runtime invariant monitors
  that attach to a live :class:`~repro.cluster.cluster.Cluster` /
  :class:`~repro.sim.engine.Simulator` pair and machine-check, during
  any run, conservation of requests, core-allocation feasibility,
  frequency bounds (including FirstResponder boost revert), trace
  causality, and Escalator metric sanity.  Zero overhead when not armed.
* :mod:`repro.validate.fingerprint` — compact per-scenario metric
  fingerprints (violation volume, tail latency, final allocations,
  event/packet counts) with exact differential comparison.
* :mod:`repro.validate.scenarios` / :mod:`repro.validate.runner` — the
  {workload} × {controller} × {scenario} matrix behind
  ``python -m repro.validate``, compared against committed goldens.
"""

from repro.validate.monitors import (
    CoreFeasibilityMonitor,
    EscalatorSanityMonitor,
    FrequencyBoundsMonitor,
    InvariantMonitor,
    InvariantViolation,
    MonitorSet,
    RequestConservationMonitor,
    TraceCausalityMonitor,
    default_monitors,
)
from repro.validate.fingerprint import fingerprint_diff, scenario_fingerprint
from repro.validate.scenarios import Scenario, scenario_matrix
from repro.validate.runner import run_matrix

__all__ = [
    "CoreFeasibilityMonitor",
    "EscalatorSanityMonitor",
    "FrequencyBoundsMonitor",
    "InvariantMonitor",
    "InvariantViolation",
    "MonitorSet",
    "RequestConservationMonitor",
    "Scenario",
    "TraceCausalityMonitor",
    "default_monitors",
    "fingerprint_diff",
    "run_matrix",
    "scenario_fingerprint",
    "scenario_matrix",
]
