"""CLI: ``PYTHONPATH=src python -m repro.validate``.

Runs the differential scenario matrix with all invariant monitors armed
and compares fingerprints against the committed goldens.  Exit status 0
only when every invariant holds and every fingerprint matches.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Optional

from repro.validate.runner import run_matrix
from repro.validate.scenarios import (
    CONTROLLERS,
    FAULT_CONTROLLERS,
    FAULT_SCENARIOS,
    HORIZONTAL_CONTROLLERS,
    HORIZONTAL_SCENARIOS,
    SCENARIOS,
    SHARDED_CONTROLLERS,
    SHARDED_SCENARIOS,
    WORKLOADS,
    ZOO_CONTROLLERS,
    ZOO_SCENARIOS,
    fault_matrix,
    horizontal_matrix,
    scenario_matrix,
    sharded_matrix,
    zoo_matrix,
)

#: Cell-family names accepted by ``--family`` (in matrix order).
FAMILIES = ("base", "faults", "horizontal", "zoo", "sharded")


def main(argv: Optional[Iterable[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description=(
            "Run the workload × controller × scenario validation matrix "
            "with runtime invariant monitors armed."
        ),
    )
    parser.add_argument(
        "--workload", action="append", choices=sorted(WORKLOADS),
        help="restrict to a workload family (repeatable)",
    )
    parser.add_argument(
        "--controller", action="append",
        choices=CONTROLLERS + HORIZONTAL_CONTROLLERS + ZOO_CONTROLLERS,
        help="restrict to a controller (repeatable)",
    )
    parser.add_argument(
        "--scenario", action="append",
        choices=tuple(
            dict.fromkeys(
                SCENARIOS
                + FAULT_SCENARIOS
                + HORIZONTAL_SCENARIOS
                + ZOO_SCENARIOS
                + SHARDED_SCENARIOS
            )
        ),
        help="restrict to a traffic shape or fault scenario (repeatable)",
    )
    parser.add_argument(
        "--family", action="append", choices=FAMILIES,
        help=(
            "restrict to a cell family (repeatable); e.g. the "
            "REPRO_SHARDS=2 CI leg runs only '--family sharded' because "
            "the other families use replicas, faults, or non-shardable "
            "controllers"
        ),
    )
    parser.add_argument(
        "--update-golden", action="store_true",
        help="rewrite the committed golden fingerprints from this run",
    )
    parser.add_argument(
        "--golden", type=Path, default=None,
        help="alternate golden file (default: the committed goldens.json)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list matrix cells and exit"
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    # The four families share the filter flags: each family keeps the
    # controller / scenario names it recognises (a fault-only filter
    # yields no base cells and vice versa), and fault cells exist only
    # for the chain workload and its controller subset.
    base_shapes = fault_shapes = hpa_shapes = zoo_shapes = sharded_shapes = None
    if args.scenario is not None:
        base_shapes = [s for s in args.scenario if s in SCENARIOS]
        fault_shapes = [s for s in args.scenario if s in FAULT_SCENARIOS]
        hpa_shapes = [s for s in args.scenario if s in HORIZONTAL_SCENARIOS]
        zoo_shapes = [s for s in args.scenario if s in ZOO_SCENARIOS]
        sharded_shapes = [s for s in args.scenario if s in SHARDED_SCENARIOS]
    base_ctrls = fault_ctrls = hpa_ctrls = zoo_ctrls = sharded_ctrls = None
    if args.controller is not None:
        base_ctrls = [c for c in args.controller if c in CONTROLLERS]
        fault_ctrls = [c for c in args.controller if c in FAULT_CONTROLLERS]
        hpa_ctrls = [c for c in args.controller if c in HORIZONTAL_CONTROLLERS]
        zoo_ctrls = [c for c in args.controller if c in ZOO_CONTROLLERS]
        sharded_ctrls = [c for c in args.controller if c in SHARDED_CONTROLLERS]
    families = FAMILIES if args.family is None else tuple(args.family)
    cells = []
    if "base" in families:
        cells += scenario_matrix(
            workloads=args.workload,
            controllers=base_ctrls,
            scenarios=base_shapes,
        )
    if "faults" in families and (args.workload is None or "chain" in args.workload):
        cells += fault_matrix(controllers=fault_ctrls, scenarios=fault_shapes)
    if "horizontal" in families:
        cells += horizontal_matrix(
            workloads=args.workload,
            controllers=hpa_ctrls,
            scenarios=hpa_shapes,
        )
    if "zoo" in families:
        cells += zoo_matrix(
            workloads=args.workload,
            controllers=zoo_ctrls,
            scenarios=zoo_shapes,
        )
    if "sharded" in families:
        cells += sharded_matrix(
            workloads=args.workload,
            controllers=sharded_ctrls,
            scenarios=sharded_shapes,
        )
    if args.list:
        for cell in cells:
            print(cell.key)
        return 0

    report = run_matrix(
        cells, update_golden=args.update_golden, golden_file=args.golden
    )
    return 0 if (report.ok or report.updated_golden) else 1


if __name__ == "__main__":
    sys.exit(main())
