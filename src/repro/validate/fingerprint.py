"""Per-scenario metric fingerprints and their differential comparison.

A fingerprint is a small JSON-serializable dict capturing everything a
behavior-preserving refactor must keep bit-identical about one scenario
run: the headline metrics (violation volume, tail latency), the final
resource state (per-container allocations and frequencies), the event
and packet counts (any change in scheduling or RNG consumption shows up
here first), and the controller's action counters.

Comparison is **exact** — the simulator is deterministic and the fast
lane's contract is bit-identical results, so an ``==`` mismatch is
signal, not noise (the same policy the golden packet-fastlane tests
use).  JSON round-trips float64 exactly via ``repr``, so committed
goldens compare clean.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.harness import ExperimentResult

__all__ = ["fingerprint_diff", "scenario_fingerprint"]


def scenario_fingerprint(result: ExperimentResult, sim, cluster) -> dict:
    """Extract the committed-golden fingerprint of one scenario run.

    On a sharded run (``result.shard_stats`` set) the counters come from
    the fleet-wide merge instead of the shard-0 ``sim``/``cluster`` the
    probe captured — the merged values are defined to equal the serial
    counters whenever the dynamics are shard-invariant, so one committed
    golden pins the cell across every shard count.
    """
    stats = result.controller_stats
    ss = result.shard_stats
    if ss is not None:
        events_fired = ss["events_fired"]
        packets_sent = ss["packets_sent"]
        packets_delivered = ss["packets_delivered"]
        final_alloc = dict(ss["final_alloc"])
        final_freq = dict(ss["final_freq"])
    else:
        events_fired = sim.events_fired
        packets_sent = cluster.network.packets_sent
        packets_delivered = cluster.network.packets_delivered
        final_alloc = cluster.allocations()
        final_freq = cluster.frequencies()
    fp = {
        "violation_volume": result.summary.violation_volume,
        "violation_duration": result.summary.violation_duration,
        "p99": result.summary.p99,
        "completed": result.summary.count,
        "outstanding": result.outstanding,
        "ingress": cluster.ingress_count,
        "events_fired": events_fired,
        "packets_sent": packets_sent,
        "packets_delivered": packets_delivered,
        "final_alloc": final_alloc,
        "final_freq": final_freq,
        "controller_actions": {
            "decision_cycles": stats.decision_cycles,
            "upscale_core": stats.upscale_core_actions,
            "downscale_core": stats.downscale_core_actions,
            "freq_up": stats.freq_up_actions,
            "freq_down": stats.freq_down_actions,
        },
        "fast_path_packets": result.fast_path_packets,
        "fast_path_violations": result.fast_path_violations,
    }
    if getattr(result.config, "faults", None) is not None:
        # Added only for fault cells so pre-faults goldens stay
        # byte-identical (fingerprint_diff flags absent keys).
        fp["errors"] = result.errors
        fp["fault_stats"] = dict(result.fault_stats or {})
    return fp


def _flatten(prefix: str, value) -> List[tuple]:
    if isinstance(value, dict):
        out: List[tuple] = []
        for k in sorted(value):
            out.extend(_flatten(f"{prefix}.{k}" if prefix else str(k), value[k]))
        return out
    return [(prefix, value)]


def fingerprint_diff(golden: dict, observed: dict) -> List[str]:
    """Field-by-field exact differences, as ``path: golden != observed``.

    Empty list = identical.  Both sides are flattened to dotted paths so
    a drifted allocation reads ``final_alloc.frontend: 2.0 != 3.0``
    instead of a whole-dict dump.
    """
    g = dict(_flatten("", golden))
    o = dict(_flatten("", observed))
    diffs = []
    for path in sorted(set(g) | set(o)):
        if path not in g:
            diffs.append(f"{path}: <absent in golden> != {o[path]!r}")
        elif path not in o:
            diffs.append(f"{path}: {g[path]!r} != <absent in run>")
        elif g[path] != o[path]:
            diffs.append(f"{path}: {g[path]!r} != {o[path]!r}")
    return diffs
