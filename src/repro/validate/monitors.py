"""Pluggable runtime invariant monitors.

A monitor observes a live simulation and records
:class:`InvariantViolation` entries whenever a machine-checkable
property of the system is broken.  Monitors are *pure observers*: they
never schedule events, never draw from any RNG stream, and never mutate
cluster state, so an armed run produces bit-identical results to an
unarmed one.

Attachment is strictly opt-in and reversible:

* cluster-level mutators (``set_cores`` / ``set_frequency``) are
  shadowed with instance-attribute wrappers, so the *class* hot paths
  carry zero monitoring cost when no monitor is armed;
* packet-level observation rides the network's existing observer tap;
* Escalator windows are observed through
  :attr:`repro.core.escalator.Escalator.window_hook`.

``disarm()`` removes every wrapper and observer, restoring the exact
pre-arm object graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.loadbalancer import WARMING
from repro.cluster.packet import REQUEST, RESPONSE, RpcPacket
from repro.cluster.tracing import RequestTracer
from repro.sim.engine import Simulator

__all__ = [
    "CoreFeasibilityMonitor",
    "EscalatorSanityMonitor",
    "FaultResilienceMonitor",
    "FrequencyBoundsMonitor",
    "InvariantMonitor",
    "InvariantViolation",
    "MonitorSet",
    "ReplicaConservationMonitor",
    "RequestConservationMonitor",
    "ShardConservationMonitor",
    "TraceCausalityMonitor",
    "default_monitors",
]

#: Absolute slack for core-budget comparisons (matches Node's own 1e-9
#: grant tolerance plus accumulated float slop over many reallocations).
_CORE_EPS = 1e-6


@dataclass(frozen=True)
class InvariantViolation:
    """One detected invariant breach."""

    #: Simulated time of detection (finalize-time checks use end time).
    time: float
    #: Monitor that raised it.
    monitor: str
    #: Human-readable description with the offending values.
    message: str

    def __str__(self) -> str:  # pragma: no cover - human output
        return f"[t={self.time:.6f}s] {self.monitor}: {self.message}"


class InvariantMonitor:
    """Base class: arm → observe → finalize → disarm.

    Subclasses override :meth:`_arm`, :meth:`_finalize`, and
    :meth:`_disarm`; violations are appended via :meth:`record`.
    """

    name = "abstract"

    #: Whether the monitor's invariants still hold when evaluated on a
    #: single shard of a partitioned simulation (DESIGN.md §12), where
    #: the local cluster object hosts only a node subset and boundary
    #: traffic makes local send/deliver counters asymmetric.  Monitors
    #: whose checks are strictly per-node/per-container stay safe;
    #: fleet-global ledgers and cross-node span trees are not.
    shard_safe = True

    def __init__(self) -> None:
        self.violations: List[InvariantViolation] = []
        #: Number of individual invariant evaluations performed (shows a
        #: monitor actually exercised its property, not just stayed idle).
        self.checks = 0
        self._armed = False
        self.sim: Optional[Simulator] = None
        self.cluster: Optional[Cluster] = None
        self.controller = None
        self.client = None

    # ------------------------------------------------------------- lifecycle
    def arm(self, sim: Simulator, cluster: Cluster, *, controller=None, client=None) -> None:
        """Attach to a live simulation (once per monitor instance)."""
        if self._armed:
            raise RuntimeError(f"{self.name} monitor already armed")
        self.sim = sim
        self.cluster = cluster
        self.controller = controller
        self.client = client
        self._armed = True
        self._arm()

    def finalize(self) -> None:
        """Run end-of-run checks (call after the simulation completes)."""
        if not self._armed:
            raise RuntimeError(f"{self.name} monitor finalized before arm")
        self._finalize()

    def disarm(self) -> None:
        """Detach all hooks; idempotent."""
        if self._armed:
            self._disarm()
            self._armed = False

    # ------------------------------------------------------------- recording
    def record(self, message: str, *, time: Optional[float] = None) -> None:
        assert self.sim is not None
        self.violations.append(
            InvariantViolation(
                time=self.sim.now if time is None else time,
                monitor=self.name,
                message=message,
            )
        )

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------ subclasses
    def _arm(self) -> None:
        """Hook: install observers/wrappers."""

    def _finalize(self) -> None:
        """Hook: end-of-run checks."""

    def _disarm(self) -> None:
        """Hook: remove observers/wrappers."""


class RequestConservationMonitor(InvariantMonitor):
    """No request is created or lost: every ``client_send`` is either
    completed (a RESPONSE reached the client), resolved as an error, or
    still in flight when the run stops — and a fully-drained simulation
    has zero in flight.

    Fault-free runs (``cluster.rpc is None``) keep the exact strict
    equalities.  With the RPC resilience layer armed the ledger gains
    principled slack: retransmissions may deliver more client requests
    than were injected (bounded by the retry counter), and loss may
    deliver fewer — but responses can never exceed delivered requests,
    completions can never exceed delivered responses, and a drained run
    must still resolve every injected request (completed or errored).
    """

    name = "request-conservation"
    #: A shard delivers boundary packets its local counter never sent
    #: (and vice versa), so the local sent/delivered ledger is
    #: legitimately asymmetric; the cross-shard replacement lives in
    #: :class:`ShardConservationMonitor`.
    shard_safe = False

    def __init__(self) -> None:
        super().__init__()
        self.client_requests_seen = 0
        self.client_responses_seen = 0

    def _arm(self) -> None:
        assert self.cluster is not None
        self._observer = self._on_packet
        self.cluster.network.add_observer(self._observer)

    def _on_packet(self, pkt: RpcPacket) -> None:
        # Delivered packets only: requests *entering* the app from the
        # client, and responses *reaching* the client, are the two ends
        # of the conservation ledger.
        if pkt.kind == RESPONSE and pkt.dst == "client":
            self.client_responses_seen += 1
        elif pkt.kind == REQUEST and pkt.src == "client":
            self.client_requests_seen += 1

    def _finalize(self) -> None:
        assert self.cluster is not None and self.sim is not None
        self.checks += 1
        ingress = self.cluster.ingress_count
        rpc = self.cluster.rpc
        if rpc is None:
            if self.client_responses_seen > ingress:
                self.record(
                    f"{self.client_responses_seen} responses reached the client "
                    f"but only {ingress} requests were ever injected"
                )
            if self.client_requests_seen > ingress:
                self.record(
                    f"{self.client_requests_seen} client requests delivered vs "
                    f"{ingress} injected (duplication)"
                )
        else:
            # Retransmissions legitimately duplicate client requests —
            # but never by more than the caller's own retry counter.
            if self.client_requests_seen > ingress + rpc.retries:
                self.record(
                    f"{self.client_requests_seen} client requests delivered vs "
                    f"{ingress} injected + {rpc.retries} retries "
                    f"(unexplained duplication)"
                )
            if self.client_responses_seen > self.client_requests_seen:
                self.record(
                    f"{self.client_responses_seen} responses reached the "
                    f"client but only {self.client_requests_seen} client "
                    f"requests were ever delivered"
                )
        net = self.cluster.network
        if net.packets_delivered > net.packets_sent:
            self.record(
                f"network delivered {net.packets_delivered} packets but "
                f"only {net.packets_sent} were sent"
            )
        stats = getattr(self.client, "stats", None)
        if stats is not None:
            self.checks += 1
            if stats.sent != ingress:
                self.record(
                    f"client reports {stats.sent} sends but cluster ingress "
                    f"counted {ingress}"
                )
            errored = getattr(stats, "errored", 0)
            if rpc is None:
                if errored:
                    self.record(
                        f"client recorded {errored} errored request(s) with "
                        f"no RPC resilience layer armed"
                    )
                if stats.completed != self.client_responses_seen:
                    self.record(
                        f"client reports {stats.completed} completions but "
                        f"{self.client_responses_seen} responses were delivered"
                    )
            else:
                # Duplicate/stale responses are absorbed by the RPC done
                # latch and error responses resolve as errors, so
                # completions can only consume a subset of deliveries.
                if stats.completed + errored > self.client_responses_seen + rpc.errors:
                    self.record(
                        f"client resolved {stats.completed}+{errored} requests "
                        f"but only {self.client_responses_seen} responses were "
                        f"delivered and {rpc.errors} calls errored locally"
                    )
            in_flight = stats.sent - stats.completed - errored
            if in_flight < 0:
                self.record(
                    f"more resolutions ({stats.completed}+{errored}) than "
                    f"sends ({stats.sent})"
                )
            if self.sim.live_events_pending == 0 and in_flight != 0:
                self.record(
                    f"simulation fully drained with {in_flight} request(s) "
                    f"neither completed, errored, nor in flight (lost)"
                )

    def _disarm(self) -> None:
        assert self.cluster is not None
        self.cluster.network.remove_observer(self._observer)


class CoreFeasibilityMonitor(InvariantMonitor):
    """Core allocations stay feasible: every container holds > 0 cores
    and no node's allocation sum ever exceeds its workload budget.

    Checked at arm time, after *every* ``Cluster.set_cores`` call, and
    again at finalize (a full sweep that also catches mutations made
    behind the cluster API's back).
    """

    name = "core-feasibility"

    def _arm(self) -> None:
        assert self.cluster is not None
        self._sweep()
        cluster = self.cluster
        original = cluster.set_cores

        def checked_set_cores(name: str, cores: float) -> None:
            original(name, cores)
            self._check_after_set(name)

        self._original_set_cores = original
        cluster.set_cores = checked_set_cores  # type: ignore[method-assign]

    def _check_after_set(self, name: str) -> None:
        assert self.cluster is not None
        self.checks += 1
        node = self.cluster.node_of(name)
        for err in node.allocation_errors(_CORE_EPS):
            self.record(err)

    def _sweep(self) -> None:
        assert self.cluster is not None
        for node in self.cluster.nodes:
            self.checks += 1
            for err in node.allocation_errors(_CORE_EPS):
                self.record(err)

    def _finalize(self) -> None:
        self._sweep()

    def _disarm(self) -> None:
        assert self.cluster is not None
        del self.cluster.set_cores  # restore the class method


class FrequencyBoundsMonitor(InvariantMonitor):
    """Frequencies stay inside the DVFS range and fast-path boosts revert.

    * every ``Cluster.set_frequency`` leaves the container at a level in
      ``[f_min, f_max]``;
    * at finalize, no container still sits at ``f_max`` long after its
      last FirstResponder boost — once the hold window expires and the
      Escalator has had cycles to decay it, a stuck boost is a leak.
    """

    name = "frequency-bounds"

    #: Escalator decision cycles granted for a boost to start decaying
    #: before a still-maxed frequency counts as stuck.
    decay_grace_cycles = 20

    def _arm(self) -> None:
        assert self.cluster is not None
        cluster = self.cluster
        self._sweep()
        original = cluster.set_frequency

        def checked_set_frequency(name: str, frequency: float) -> None:
            original(name, frequency)
            self._check_container(name)

        self._original_set_frequency = original
        cluster.set_frequency = checked_set_frequency  # type: ignore[method-assign]

    def _check_container(self, name: str) -> None:
        assert self.cluster is not None
        self.checks += 1
        c = self.cluster.containers[name]
        dvfs = c.dvfs
        if not dvfs.f_min <= c.frequency <= dvfs.f_max:
            self.record(
                f"container {name!r} at {c.frequency:.3e} Hz outside "
                f"[{dvfs.f_min:.3e}, {dvfs.f_max:.3e}]"
            )

    def _sweep(self) -> None:
        assert self.cluster is not None
        for name in self.cluster.containers:
            self._check_container(name)

    def _finalize(self) -> None:
        assert self.cluster is not None and self.sim is not None
        self._sweep()
        responders = getattr(self.controller, "firstresponders", None)
        if not responders:
            return
        now = self.sim.now
        for fr in responders:
            interval = fr.config.escalator_interval
            grace = fr.hold_window + self.decay_grace_cycles * interval
            for name, t_boost in fr.last_boost_time.items():
                self.checks += 1
                c = self.cluster.containers[name]
                if now - t_boost > grace and c.frequency >= c.dvfs.f_max:
                    self.record(
                        f"container {name!r} still at f_max "
                        f"{now - t_boost:.3f}s after its last boost "
                        f"(hold window {fr.hold_window:.3f}s) — boost "
                        f"never reverted"
                    )

    def _disarm(self) -> None:
        assert self.cluster is not None
        del self.cluster.set_frequency  # restore the class method


class TraceCausalityMonitor(InvariantMonitor):
    """Packet timestamps are causally ordered along every traced request.

    Samples up to ``max_requests`` requests through a
    :class:`~repro.cluster.tracing.RequestTracer` and, at finalize,
    validates each sampled span tree (receive before complete, children
    after parents, non-negative critical-path self-times).
    """

    name = "trace-causality"
    #: A shard observes only the hops whose destination is local, so
    #: sampled span trees are structurally incomplete mid-fleet.
    shard_safe = False

    def __init__(self, *, max_requests: int = 200) -> None:
        super().__init__()
        self.max_requests = max_requests
        self._tracer: Optional[RequestTracer] = None

    def _arm(self) -> None:
        assert self.cluster is not None
        self._tracer = RequestTracer(self.cluster, max_requests=self.max_requests)

    def _finalize(self) -> None:
        tracer = self._tracer
        assert tracer is not None
        for request_id in tracer.request_ids():
            self.checks += 1
            for err in tracer.causality_errors(request_id):
                self.record(err)

    def _disarm(self) -> None:
        assert self.cluster is not None
        if self._tracer is not None:
            self.cluster.network.remove_observer(self._tracer._on_packet)
            self._tracer = None


class EscalatorSanityMonitor(InvariantMonitor):
    """SurgeGuard's control signal is well-formed.

    For every runtime window each Escalator collects:
    ``0 <= execMetric <= execTime``, ``queueBuildup >= 1``, and
    non-negative connection waits; after the run, every observed entry
    of the sensitivity EWMA matrix must be finite and positive.

    Arms as a no-op for controllers without Escalators.
    """

    name = "escalator-sanity"

    #: Relative slop on the exec-metric/exec-time comparison (the
    #: runtime clamps conn_wait to exec_time, so only float error can
    #: make the window violate it).
    _REL_EPS = 1e-9

    def _arm(self) -> None:
        self._hooked = []
        escalators = getattr(self.controller, "escalators", None)
        if not escalators:
            return
        for esc in escalators:
            if esc.window_hook is not None:  # pragma: no cover - defensive
                raise RuntimeError("Escalator.window_hook already in use")
            esc.window_hook = self._on_window
            self._hooked.append(esc)

    def _on_window(self, name: str, window) -> None:
        self.checks += 1
        eps = self._REL_EPS * max(window.avg_exec_time, 1e-12)
        if window.count < 0:
            self.record(f"{name!r}: negative window count {window.count}")
        if window.avg_exec_metric < -eps or window.avg_conn_wait < -eps:
            self.record(
                f"{name!r}: negative window metric "
                f"(execMetric={window.avg_exec_metric!r}, "
                f"connWait={window.avg_conn_wait!r})"
            )
        if window.avg_exec_metric > window.avg_exec_time + eps:
            self.record(
                f"{name!r}: execMetric {window.avg_exec_metric!r} exceeds "
                f"execTime {window.avg_exec_time!r}"
            )
        if window.count > 0 and window.queue_buildup < 1.0 - self._REL_EPS:
            self.record(
                f"{name!r}: queueBuildup {window.queue_buildup!r} < 1"
            )

    def _finalize(self) -> None:
        for esc in self._hooked:
            self.checks += 1
            for container, cores, value in esc.sensitivity.nonfinite_entries():
                self.record(
                    f"sensitivity EWMA for {container!r} at {cores} cores "
                    f"is {value!r} (must be finite and positive)"
                )

    def _disarm(self) -> None:
        for esc in self._hooked:
            esc.window_hook = None
        self._hooked = []


class FaultResilienceMonitor(InvariantMonitor):
    """Fault handling is airtight: retries are bounded, timers are
    cleaned up, and crashes orphan nothing.

    Pure finalize-time checks (nothing is hooked), so arming it on a
    fault-free run is free and still proves the no-orphan / ledger
    invariants of the plain path:

    * every service instance's request ledger balances —
      ``started == completed + failed + killed`` once drained, and no
      invocation is still registered live;
    * with the RPC layer armed: observed attempts never exceed
      ``max_retries + 1``, every call resolved exactly once
      (``open_calls == 0`` once drained — a leaked timeout timer or a
      double resolution would break the count), and the error counter
      matches what the policy allows (``errors <= calls``).
    """

    name = "fault-resilience"

    def _finalize(self) -> None:
        assert self.cluster is not None and self.sim is not None
        drained = self.sim.live_events_pending == 0
        for name, inst in self.cluster.instances.items():
            self.checks += 1
            live = len(getattr(inst, "_live", ()))
            if drained and live:
                self.record(
                    f"instance {name!r} drained with {live} invocation(s) "
                    f"still registered live (orphaned in-flight state)"
                )
            started = inst.requests_started
            resolved = (
                inst.requests_completed
                + inst.requests_failed
                + inst.inflight_killed
            )
            if drained and started != resolved:
                self.record(
                    f"instance {name!r}: {started} requests started but "
                    f"{resolved} resolved (completed "
                    f"{inst.requests_completed} + failed "
                    f"{inst.requests_failed} + killed "
                    f"{inst.inflight_killed})"
                )
        rpc = self.cluster.rpc
        if rpc is None:
            return
        self.checks += 1
        allowed = rpc.policy.max_retries + 1
        if rpc.max_attempts_observed > allowed:
            self.record(
                f"a call reached {rpc.max_attempts_observed} attempts; the "
                f"policy allows at most {allowed} (retries unbounded)"
            )
        if drained and rpc.open_calls != 0:
            self.record(
                f"simulation drained with {rpc.open_calls} RPC call(s) "
                f"unresolved (leaked timer or lost resolution)"
            )
        if rpc.errors > rpc.calls:
            self.record(
                f"{rpc.errors} RPC errors recorded for only {rpc.calls} calls"
            )


class ReplicaConservationMonitor(InvariantMonitor):
    """The load-balancer tier's routing ledger balances exactly.

    Pure finalize-time checks against the counters the LB and the
    service instances already keep (nothing is hooked); arming it on an
    unreplicated run (``cluster.replica_sets is None``) is a no-op, so
    the monitor is free for the legacy matrix families.

    Per :class:`~repro.cluster.loadbalancer.ReplicaSet`:

    * the set's dispatch counter equals the sum over its replicas —
      every routed request was pinned to exactly one replica;
    * no dispatch ever resolved to a non-READY replica (warming and
      reaped replicas receive no traffic, ever);
    * each replica received at most what was dispatched to it
      (``requests_started + requests_dropped_down <= dispatched``), with
      exact equality once the simulation fully drains — a gap on a
      drained run is a packet lost between the LB and the replica;
    * a replica that never reached READY handled zero requests.
    """

    name = "replica-conservation"

    def _finalize(self) -> None:
        assert self.cluster is not None and self.sim is not None
        rsets = getattr(self.cluster, "replica_sets", None)
        if not rsets:
            return
        drained = self.sim.live_events_pending == 0
        for service, rset in rsets.items():
            self.checks += 1
            routed = sum(r.dispatched for r in rset.replicas)
            if rset.dispatched != routed:
                self.record(
                    f"service {service!r}: LB dispatched {rset.dispatched} "
                    f"requests but replicas account for {routed}"
                )
            if rset.nonready_dispatches:
                self.record(
                    f"service {service!r}: {rset.nonready_dispatches} "
                    f"dispatch(es) resolved to a non-READY replica"
                )
            for r in rset.replicas:
                self.checks += 1
                inst = r.instance
                received = inst.requests_started + inst.requests_dropped_down
                if received > r.dispatched:
                    self.record(
                        f"replica {r.name!r} received {received} requests "
                        f"but only {r.dispatched} were dispatched to it"
                    )
                elif drained and received != r.dispatched:
                    self.record(
                        f"replica {r.name!r}: {r.dispatched} requests "
                        f"dispatched but only {received} arrived "
                        f"(started {inst.requests_started} + dropped-down "
                        f"{inst.requests_dropped_down}) on a drained run"
                    )
                if r.state == WARMING and r.ready_at < 0 and received:
                    self.record(
                        f"replica {r.name!r} handled {received} request(s) "
                        f"without ever reaching READY"
                    )


class ShardConservationMonitor(InvariantMonitor):
    """No packet is lost or duplicated at a shard boundary.

    Fed after a sharded run (see :func:`repro.exec.sharded.run_sharded`)
    from the per-shard :meth:`~repro.sim.shard.ShardContext.ledger`
    snapshots rather than armed on a live simulation — the boundary
    channels span processes, so the evidence is collected at the edges
    and audited centrally:

    * every directed channel balances exactly: packets shard *i*
      serialized toward shard *j* equal the packets *j* accepted from
      *i* (a gap is a loss, an excess is a duplication);
    * per-channel serial numbers arrived in strictly contiguous order
      (``seq_errors == 0`` — reordering or replay at the pipe level);
    * every registered cross-shard continuation was resolved by exactly
      one response (``open_contexts == 0`` after the drain);
    * invariant violations detected by the workers' own shard-safe
      monitors are re-raised here so one audit point reports the fleet.
    """

    name = "shard-conservation"

    def feed(
        self,
        ledgers: List[dict],
        *,
        time: float,
        worker_violations=(),
    ) -> None:
        """Audit per-shard boundary ledgers (callable without arming)."""
        by_shard = {led["shard"]: led for led in ledgers}
        k = len(by_shard)

        def fail(message: str) -> None:
            self.violations.append(
                InvariantViolation(time=time, monitor=self.name, message=message)
            )

        for i in range(k):
            led = by_shard[i]
            self.checks += 1
            if led["seq_errors"]:
                fail(
                    f"shard {i} accepted {led['seq_errors']} boundary "
                    f"packet(s) out of serial order (reordered or replayed)"
                )
            self.checks += 1
            if led["open_contexts"]:
                fail(
                    f"shard {i} drained with {led['open_contexts']} "
                    f"cross-shard continuation(s) never resolved"
                )
            for j in range(k):
                if i == j:
                    continue
                self.checks += 1
                sent = led["sent"][j]
                got = by_shard[j]["received"][i]
                if sent != got:
                    what = "lost" if sent > got else "duplicated"
                    fail(
                        f"channel {i}->{j}: {sent} packet(s) serialized but "
                        f"{got} accepted ({abs(sent - got)} {what} at the "
                        f"boundary)"
                    )
        for v in worker_violations:
            self.checks += 1
            self.violations.append(
                InvariantViolation(time=v[0], monitor=self.name, message=v[2])
            )


def default_monitors() -> List[InvariantMonitor]:
    """One fresh instance of every built-in monitor."""
    return [
        RequestConservationMonitor(),
        CoreFeasibilityMonitor(),
        FrequencyBoundsMonitor(),
        TraceCausalityMonitor(),
        EscalatorSanityMonitor(),
        FaultResilienceMonitor(),
        ReplicaConservationMonitor(),
    ]


class MonitorSet:
    """A group of monitors armed and finalized together.

    >>> monitors = MonitorSet()             # all built-in monitors
    >>> # run_experiment(cfg, monitors=monitors)
    >>> # monitors.ok, monitors.all_violations
    """

    def __init__(self, monitors: Optional[List[InvariantMonitor]] = None):
        self.monitors = default_monitors() if monitors is None else list(monitors)
        self._armed = False
        self._finalized = False

    def arm(
        self,
        sim: Simulator,
        cluster: Cluster,
        *,
        controller=None,
        client=None,
        shard_safe_only: bool = False,
    ) -> None:
        """Arm every monitor (or, on a sharded worker's partial cluster,
        only the ``shard_safe`` ones — the rest stay disarmed and are
        skipped at finalize)."""
        if self._armed:
            raise RuntimeError("MonitorSet already armed")
        self._armed = True
        for m in self.monitors:
            if shard_safe_only and not m.shard_safe:
                continue
            m.arm(sim, cluster, controller=controller, client=client)

    def finalize(self) -> None:
        """Run end-of-run checks on every armed monitor, then disarm."""
        if not self._armed:
            raise RuntimeError("MonitorSet finalized before arm")
        if self._finalized:
            raise RuntimeError("MonitorSet already finalized")
        self._finalized = True
        for m in self.monitors:
            if m._armed:
                m.finalize()
        for m in self.monitors:
            m.disarm()

    @property
    def all_violations(self) -> List[InvariantViolation]:
        return [v for m in self.monitors for v in m.violations]

    @property
    def ok(self) -> bool:
        return not self.all_violations

    @property
    def total_checks(self) -> int:
        return sum(m.checks for m in self.monitors)

    def by_monitor(self) -> Dict[str, int]:
        """{monitor name: violation count} including zero entries."""
        return {m.name: len(m.violations) for m in self.monitors}
