"""Matrix executor behind ``python -m repro.validate``.

For every scenario cell: run it with **all invariant monitors armed**,
extract the metric fingerprint, and compare it field-for-field against
the committed golden (``goldens.json`` next to this module).  Any
invariant violation or fingerprint drift fails the run; goldens are
regenerated only on explicit ``--update-golden``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.harness import clear_profile_cache, run_experiment
from repro.validate.fingerprint import fingerprint_diff, scenario_fingerprint
from repro.validate.monitors import MonitorSet
from repro.validate.scenarios import (
    Scenario,
    fault_matrix,
    horizontal_matrix,
    scenario_matrix,
    sharded_matrix,
    zoo_matrix,
)

__all__ = ["CellOutcome", "MatrixReport", "golden_path", "run_matrix"]

#: Committed golden fingerprints, keyed by :attr:`Scenario.key`.
_GOLDEN_FILE = "goldens.json"


def golden_path() -> Path:
    """Path of the committed golden-fingerprint file."""
    return Path(__file__).resolve().parent / _GOLDEN_FILE


def load_goldens(path: Optional[Path] = None) -> Dict[str, dict]:
    p = golden_path() if path is None else path
    if not p.exists():
        return {}
    with open(p) as fh:
        return json.load(fh)


@dataclass
class CellOutcome:
    """Everything one matrix cell reports."""

    scenario: Scenario
    fingerprint: dict
    #: Invariant violations (stringified), empty on a clean run.
    violations: List[str]
    #: Fingerprint differences vs the golden, empty on a match.
    diffs: List[str]
    #: Individual invariant evaluations performed by the armed monitors.
    checks: int
    seconds: float
    #: True when no committed golden exists for this cell yet.
    golden_missing: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations and not self.diffs and not self.golden_missing


@dataclass
class MatrixReport:
    """Aggregate of one matrix run."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    updated_golden: bool = False

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.outcomes)

    @property
    def total_violations(self) -> int:
        return sum(len(c.violations) for c in self.outcomes)

    @property
    def total_checks(self) -> int:
        return sum(c.checks for c in self.outcomes)


def run_cell_validated(cell: Scenario) -> CellOutcome:
    """Run one scenario with monitors armed and fingerprint it."""
    monitors = MonitorSet()
    captured = {}

    def probe(sim, cluster) -> None:
        captured["sim"] = sim
        captured["cluster"] = cluster

    t0 = time.perf_counter()
    result = run_experiment(cell.config, monitors=monitors, probe=probe)
    seconds = time.perf_counter() - t0
    fp = scenario_fingerprint(result, captured["sim"], captured["cluster"])
    return CellOutcome(
        scenario=cell,
        fingerprint=fp,
        violations=[str(v) for v in monitors.all_violations],
        diffs=[],
        checks=monitors.total_checks,
        seconds=seconds,
    )


def run_matrix(
    cells: Optional[List[Scenario]] = None,
    *,
    update_golden: bool = False,
    golden_file: Optional[Path] = None,
    verbose: bool = True,
) -> MatrixReport:
    """Run the scenario matrix and compare against committed goldens.

    ``update_golden=True`` rewrites the golden file with the observed
    fingerprints instead of comparing (only the cells actually run are
    rewritten — a filtered run updates a filtered set).
    """
    if cells is None:
        cells = (
            scenario_matrix()
            + fault_matrix()
            + horizontal_matrix()
            + zoo_matrix()
            + sharded_matrix()
        )
    goldens = load_goldens(golden_file)
    report = MatrixReport()
    # Profiling is memoized per workload — clear once up front so the
    # matrix is reproducible regardless of what ran before it.
    clear_profile_cache()
    for cell in cells:
        outcome = run_cell_validated(cell)
        if update_golden:
            goldens[cell.key] = outcome.fingerprint
        else:
            golden = goldens.get(cell.key)
            if golden is None:
                outcome.golden_missing = True
            else:
                outcome.diffs = fingerprint_diff(golden, outcome.fingerprint)
        report.outcomes.append(outcome)
        if verbose:
            _print_cell(outcome)
    if update_golden:
        path = golden_path() if golden_file is None else golden_file
        with open(path, "w") as fh:
            json.dump(goldens, fh, indent=2, sort_keys=True)
            fh.write("\n")
        report.updated_golden = True
        if verbose:
            print(f"wrote {len(goldens)} golden fingerprint(s) to {path}")
    elif verbose:
        _print_summary(report)
    return report


def _print_cell(c: CellOutcome) -> None:
    if c.golden_missing:
        status = "NO-GOLDEN"
    elif c.violations:
        status = "INVARIANT-FAIL"
    elif c.diffs:
        status = "DRIFT"
    else:
        status = "ok"
    print(
        f"{c.scenario.key:<45} {status:>14}  "
        f"checks={c.checks:<6} {c.seconds:5.2f}s"
    )
    for v in c.violations:
        print(f"    violation: {v}")
    for d in c.diffs:
        print(f"    drift: {d}")


def _print_summary(report: MatrixReport) -> None:
    n = len(report.outcomes)
    bad = [c for c in report.outcomes if not c.ok]
    print(
        f"\n{n} cell(s), {report.total_checks} invariant checks, "
        f"{report.total_violations} violation(s), "
        f"{len(bad)} failing cell(s)"
    )
    if report.ok:
        print("matrix OK: all invariants hold, all fingerprints match goldens")
    else:
        print("matrix FAILED")
