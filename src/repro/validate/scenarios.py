"""The differential scenario matrix: workloads × controllers × scenarios.

One scaled representative per paper workload family ({CHAIN,
socialNetwork, hotelReservation}), crossed with the null baseline, full
SurgeGuard, and the two strongest baselines (Parties, CaladanAlgo),
under three traffic shapes:

* ``steady`` — base rate only, no disturbance;
* ``rate-spike`` — the §VI-B periodic request-rate surges;
* ``latency-surge`` — the abstract's second surge type, injected through
  :meth:`repro.cluster.network.Network.add_latency_surge` via the
  harness's ``latency_surges`` config.

Durations are deliberately small (a cell runs in seconds) — this matrix
is a *differential* net, not a performance study: with monitors armed it
must produce zero invariant violations and fingerprints bit-identical to
the committed goldens.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig

__all__ = [
    "CONTROLLERS",
    "SCENARIOS",
    "WORKLOADS",
    "Scenario",
    "scenario_matrix",
]

#: Matrix workloads: registry key per paper workload family.
WORKLOADS: Dict[str, str] = {
    "chain": "chain",
    "socialNetwork": "readUserTimeline",
    "hotelReservation": "searchHotel",
}

#: Matrix controllers (spec-registry names — picklable and stable).
CONTROLLERS: Tuple[str, ...] = ("null", "surgeguard", "parties", "caladan")

#: Matrix traffic shapes.
SCENARIOS: Tuple[str, ...] = ("steady", "rate-spike", "latency-surge")

#: Shared cell timing: measurement [warmup, warmup+duration), then drain.
_BASE = dict(
    duration=2.0,
    warmup=1.0,
    profile_duration=1.0,
    drain=1.0,
    seed=11,
)


@dataclass(frozen=True)
class Scenario:
    """One matrix cell: its identity plus the harness config to run."""

    workload_family: str
    workload_key: str
    controller: str
    scenario: str
    config: ExperimentConfig

    @property
    def key(self) -> str:
        """Stable golden-file key, ``family/controller/scenario``."""
        return f"{self.workload_family}/{self.controller}/{self.scenario}"


def _cell_config(workload_key: str, controller: str, scenario: str) -> ExperimentConfig:
    cfg = ExperimentConfig(
        workload=workload_key,
        controller_factory=spec(controller),
        spike_magnitude=None,
        **_BASE,
    )
    if scenario == "steady":
        return cfg
    if scenario == "rate-spike":
        return replace(
            cfg,
            spike_magnitude=2.0,
            spike_len=0.5,
            spike_period=2.0,
            spike_offset=0.25,
        )
    if scenario == "latency-surge":
        # 2 ms extra per hop for half a second, mid-measurement — an
        # order of magnitude over the base inter-node hop latency.
        t0 = _BASE["warmup"] + 0.5
        return replace(cfg, latency_surges=((t0, t0 + 0.5, 2e-3),))
    raise ValueError(f"unknown scenario {scenario!r}")


def scenario_matrix(
    *,
    workloads: Optional[List[str]] = None,
    controllers: Optional[List[str]] = None,
    scenarios: Optional[List[str]] = None,
) -> List[Scenario]:
    """Build the (optionally filtered) scenario list in stable order."""
    families = list(WORKLOADS) if workloads is None else workloads
    ctrls = list(CONTROLLERS) if controllers is None else controllers
    shapes = list(SCENARIOS) if scenarios is None else scenarios
    cells = []
    for family in families:
        try:
            workload_key = WORKLOADS[family]
        except KeyError:
            raise KeyError(
                f"unknown workload family {family!r}; known: {sorted(WORKLOADS)}"
            ) from None
        for controller in ctrls:
            for scenario in shapes:
                if scenario not in SCENARIOS:
                    raise KeyError(
                        f"unknown scenario {scenario!r}; known: {list(SCENARIOS)}"
                    )
                cells.append(
                    Scenario(
                        workload_family=family,
                        workload_key=workload_key,
                        controller=controller,
                        scenario=scenario,
                        config=_cell_config(workload_key, controller, scenario),
                    )
                )
    return cells
