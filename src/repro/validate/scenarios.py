"""The differential scenario matrix: workloads × controllers × scenarios.

One scaled representative per paper workload family ({CHAIN,
socialNetwork, hotelReservation}), crossed with the null baseline, full
SurgeGuard, and the two strongest baselines (Parties, CaladanAlgo),
under three traffic shapes:

* ``steady`` — base rate only, no disturbance;
* ``rate-spike`` — the §VI-B periodic request-rate surges;
* ``latency-surge`` — the abstract's second surge type, injected through
  :meth:`repro.cluster.network.Network.add_latency_surge` via the
  harness's ``latency_surges`` config.

Durations are deliberately small (a cell runs in seconds) — this matrix
is a *differential* net, not a performance study: with monitors armed it
must produce zero invariant violations and fingerprints bit-identical to
the committed goldens.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.cluster.network import NetworkConfig
from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig
from repro.faults.plan import (
    ContainerCrash,
    ControllerStall,
    FaultPlan,
    LossWindow,
    RpcPolicy,
)

__all__ = [
    "CONTROLLERS",
    "FAULT_CONTROLLERS",
    "FAULT_SCENARIOS",
    "HORIZONTAL_CONTROLLERS",
    "HORIZONTAL_SCENARIOS",
    "SCENARIOS",
    "SHARDED_CONTROLLERS",
    "SHARDED_SCENARIOS",
    "WORKLOADS",
    "ZOO_CONTROLLERS",
    "ZOO_SCENARIOS",
    "Scenario",
    "fault_matrix",
    "horizontal_matrix",
    "scenario_matrix",
    "sharded_matrix",
    "zoo_matrix",
]

#: Matrix workloads: registry key per paper workload family.
WORKLOADS: Dict[str, str] = {
    "chain": "chain",
    "socialNetwork": "readUserTimeline",
    "hotelReservation": "searchHotel",
}

#: Matrix controllers (spec-registry names — picklable and stable).
CONTROLLERS: Tuple[str, ...] = ("null", "surgeguard", "parties", "caladan")

#: Matrix traffic shapes.
SCENARIOS: Tuple[str, ...] = ("steady", "rate-spike", "latency-surge")

#: Shared cell timing: measurement [warmup, warmup+duration), then drain.
_BASE = dict(
    duration=2.0,
    warmup=1.0,
    profile_duration=1.0,
    drain=1.0,
    seed=11,
)


@dataclass(frozen=True)
class Scenario:
    """One matrix cell: its identity plus the harness config to run."""

    workload_family: str
    workload_key: str
    controller: str
    scenario: str
    config: ExperimentConfig

    @property
    def key(self) -> str:
        """Stable golden-file key, ``family/controller/scenario``."""
        return f"{self.workload_family}/{self.controller}/{self.scenario}"


def _cell_config(workload_key: str, controller: str, scenario: str) -> ExperimentConfig:
    cfg = ExperimentConfig(
        workload=workload_key,
        controller_factory=spec(controller),
        spike_magnitude=None,
        **_BASE,
    )
    if scenario == "steady":
        return cfg
    if scenario == "rate-spike":
        return replace(
            cfg,
            spike_magnitude=2.0,
            spike_len=0.5,
            spike_period=2.0,
            spike_offset=0.25,
        )
    if scenario == "latency-surge":
        # 2 ms extra per hop for half a second, mid-measurement — an
        # order of magnitude over the base inter-node hop latency.
        t0 = _BASE["warmup"] + 0.5
        return replace(cfg, latency_surges=((t0, t0 + 0.5, 2e-3),))
    raise ValueError(f"unknown scenario {scenario!r}")


#: Fault-family controllers (the resilience comparison set: no control,
#: the paper's system, and the strongest reactive baseline).
FAULT_CONTROLLERS: Tuple[str, ...] = ("null", "surgeguard", "parties")

#: Fault-family scenarios (see :mod:`repro.faults`).
FAULT_SCENARIOS: Tuple[str, ...] = (
    "loss-burst",
    "crash-during-surge",
    "stalled-controller",
)

#: Shared fault-cell RPC policy.  The 250 ms timeout sits far above the
#: steady-state latency tail (~8 ms end-to-end) but inside the worst
#: congested tails (~700 ms) — a request that slow is deeply
#: QoS-violating either way, so the error rate becomes part of the
#: controller differential.  The retry budget is the storm brake: the
#: matrix runs near saturation, where unbudgeted timeout retries turn
#: one loss burst into a permanent metastable collapse that drowns any
#: controller signal.  Every cell uses ``drain=2.0`` so the worst-case
#: call resolution (~0.9 s after the last injection) lands inside the
#: run and the drained-ledger invariants stay checkable.
_FAULT_RPC = RpcPolicy(
    timeout=0.25,
    max_retries=2,
    backoff_base=20e-3,
    retry_budget=0.1,
    retry_burst=50.0,
)

#: The periodic rate surge shared by the crash / stall fault cells
#: (identical shape to the ``rate-spike`` scenario).
_SPIKE = dict(spike_magnitude=2.0, spike_len=0.5, spike_period=2.0, spike_offset=0.25)


def _fault_cell_config(workload_key: str, controller: str, scenario: str) -> ExperimentConfig:
    cfg = ExperimentConfig(
        workload=workload_key,
        controller_factory=spec(controller),
        spike_magnitude=None,
        **_BASE,
    )
    if scenario == "loss-burst":
        # 30% loss for the middle half-second of measurement, steady
        # rate: transport errors hit every controller identically; how
        # fast the post-burst backlog drains is the differential.
        return replace(
            cfg,
            drain=2.0,
            faults=FaultPlan(loss_windows=(LossWindow(1.5, 2.0, 0.3),), rpc=_FAULT_RPC),
        )
    if scenario == "crash-during-surge":
        # The mid-chain service dies at the peak of the first surge and
        # comes back 300 ms later.
        return replace(
            cfg,
            drain=2.0,
            faults=FaultPlan(
                crashes=(ContainerCrash("chain3", 1.4, 0.3),), rpc=_FAULT_RPC
            ),
            **_SPIKE,
        )
    if scenario == "stalled-controller":
        # The decision loop is wedged across a full surge: reactive
        # controllers cannot respond for 1.2 s; SurgeGuard's data-plane
        # FirstResponder keeps running (it is not a decision cycle).
        return replace(
            cfg,
            drain=2.0,
            faults=FaultPlan(stalls=(ControllerStall(1.0, 2.2),), rpc=_FAULT_RPC),
            **_SPIKE,
        )
    raise ValueError(f"unknown fault scenario {scenario!r}")


#: Horizontal-family controllers: the replica autoscaler alone and the
#: §VII hybrid (HPA + SurgeGuard) that bridges its launch gap.
HORIZONTAL_CONTROLLERS: Tuple[str, ...] = ("hpa", "hybrid")

#: Horizontal-family scenarios.
HORIZONTAL_SCENARIOS: Tuple[str, ...] = ("replica-surge",)

#: HPA knobs for the horizontal cells.  The tight interval and short
#: launch delay make the autoscaler actually fire inside a 2 s
#: measurement window; ``scale_in_patience`` is set beyond the cell
#: horizon so no replica is reaped mid-run (keeps every container in
#: the final-allocation fingerprint with positive cores).
_HPA_CELL = dict(
    interval=0.25,
    launch_delay=0.3,
    max_replicas=3,
    scale_in_patience=40,
)


def _horizontal_cell_config(workload_key: str, controller: str, scenario: str) -> ExperimentConfig:
    if scenario not in HORIZONTAL_SCENARIOS:
        raise ValueError(f"unknown horizontal scenario {scenario!r}")
    return ExperimentConfig(
        workload=workload_key,
        controller_factory=spec(controller, **_HPA_CELL),
        # Replicas are real here: start at 1 per service behind the LB,
        # with node budget sized to host the autoscaler's max.
        replicas=1,
        lb_policy="round_robin",
        replica_capacity=_HPA_CELL["max_replicas"],
        **_SPIKE,
        **_BASE,
    )


def horizontal_matrix(
    *,
    workloads: Optional[List[str]] = None,
    controllers: Optional[List[str]] = None,
    scenarios: Optional[List[str]] = None,
) -> List[Scenario]:
    """The replica-scaling cells: every workload family × {hpa, hybrid}
    under the standard periodic surge, with the LB tier armed."""
    families = list(WORKLOADS) if workloads is None else workloads
    ctrls = list(HORIZONTAL_CONTROLLERS) if controllers is None else controllers
    shapes = list(HORIZONTAL_SCENARIOS) if scenarios is None else scenarios
    cells = []
    for family in families:
        try:
            workload_key = WORKLOADS[family]
        except KeyError:
            raise KeyError(
                f"unknown workload family {family!r}; known: {sorted(WORKLOADS)}"
            ) from None
        for controller in ctrls:
            if controller not in HORIZONTAL_CONTROLLERS:
                raise KeyError(
                    f"unknown horizontal controller {controller!r}; "
                    f"known: {list(HORIZONTAL_CONTROLLERS)}"
                )
            for scenario in shapes:
                if scenario not in HORIZONTAL_SCENARIOS:
                    raise KeyError(
                        f"unknown horizontal scenario {scenario!r}; "
                        f"known: {list(HORIZONTAL_SCENARIOS)}"
                    )
                cells.append(
                    Scenario(
                        workload_family=family,
                        workload_key=workload_key,
                        controller=controller,
                        scenario=scenario,
                        config=_horizontal_cell_config(
                            workload_key, controller, scenario
                        ),
                    )
                )
    return cells


#: Controller-zoo family: the related-work plugins of DESIGN.md §11.
ZOO_CONTROLLERS: Tuple[str, ...] = ("statuscale", "lsram")

#: Zoo scenarios: the vertical-scaling shapes plus the replica-armed
#: surge, which exercises both plugins on ``svc@k`` replica endpoints
#: (targets resolved through the replica fallback).
ZOO_SCENARIOS: Tuple[str, ...] = ("steady", "spike", "replica-surge")


def _zoo_cell_config(workload_key: str, controller: str, scenario: str) -> ExperimentConfig:
    cfg = ExperimentConfig(
        workload=workload_key,
        controller_factory=spec(controller),
        spike_magnitude=None,
        **_BASE,
    )
    if scenario == "steady":
        return cfg
    if scenario == "spike":
        return replace(cfg, **_SPIKE)
    if scenario == "replica-surge":
        # Static 2-replica deployment behind the LB (no horizontal
        # controller): the zoo plugin sizes each replica endpoint
        # vertically while the surge runs.
        return replace(
            cfg,
            replicas=2,
            lb_policy="round_robin",
            replica_capacity=2,
            **_SPIKE,
        )
    raise ValueError(f"unknown zoo scenario {scenario!r}")


def zoo_matrix(
    *,
    workloads: Optional[List[str]] = None,
    controllers: Optional[List[str]] = None,
    scenarios: Optional[List[str]] = None,
) -> List[Scenario]:
    """The controller-zoo cells: every workload family × {statuscale,
    lsram} × {steady, spike, replica-surge}."""
    families = list(WORKLOADS) if workloads is None else workloads
    ctrls = list(ZOO_CONTROLLERS) if controllers is None else controllers
    shapes = list(ZOO_SCENARIOS) if scenarios is None else scenarios
    cells = []
    for family in families:
        try:
            workload_key = WORKLOADS[family]
        except KeyError:
            raise KeyError(
                f"unknown workload family {family!r}; known: {sorted(WORKLOADS)}"
            ) from None
        for controller in ctrls:
            if controller not in ZOO_CONTROLLERS:
                raise KeyError(
                    f"unknown zoo controller {controller!r}; "
                    f"known: {list(ZOO_CONTROLLERS)}"
                )
            for scenario in shapes:
                if scenario not in ZOO_SCENARIOS:
                    raise KeyError(
                        f"unknown zoo scenario {scenario!r}; "
                        f"known: {list(ZOO_SCENARIOS)}"
                    )
                cells.append(
                    Scenario(
                        workload_family=family,
                        workload_key=workload_key,
                        controller=controller,
                        scenario=scenario,
                        config=_zoo_cell_config(workload_key, controller, scenario),
                    )
                )
    return cells


#: Sharded-family controllers: only shardable ones are eligible
#: (``Controller.shardable`` — strictly per-node state).
SHARDED_CONTROLLERS: Tuple[str, ...] = ("null", "surgeguard")

#: Sharded-family scenarios (distinct names — the keys must not collide
#: with the base matrix's ``family/controller/steady`` cells).
SHARDED_SCENARIOS: Tuple[str, ...] = ("sharded-steady", "sharded-spike")


def _sharded_cell_config(workload_key: str, controller: str, scenario: str) -> ExperimentConfig:
    # jitter=0 makes the dynamics an exact invariant of the shard count
    # (the only serial/sharded divergence is jitter-draw interleaving),
    # so one committed golden pins serial, shards=1, and shards=2 alike.
    # ``shards`` stays None: the REPRO_SHARDS environment (the CI matrix
    # legs) decides how each cell actually executes.
    cfg = ExperimentConfig(
        workload=workload_key,
        controller_factory=spec(controller),
        spike_magnitude=None,
        n_nodes=4,
        network=NetworkConfig(jitter=0.0),
        **_BASE,
    )
    if scenario == "sharded-steady":
        return cfg
    if scenario == "sharded-spike":
        return replace(cfg, **_SPIKE)
    raise ValueError(f"unknown sharded scenario {scenario!r}")


def sharded_matrix(
    *,
    workloads: Optional[List[str]] = None,
    controllers: Optional[List[str]] = None,
    scenarios: Optional[List[str]] = None,
) -> List[Scenario]:
    """The shard-invariance cells: every workload family × {null,
    surgeguard} × {steady, spike} on a 4-node, jitter-free fabric."""
    families = list(WORKLOADS) if workloads is None else workloads
    ctrls = list(SHARDED_CONTROLLERS) if controllers is None else controllers
    shapes = list(SHARDED_SCENARIOS) if scenarios is None else scenarios
    cells = []
    for family in families:
        try:
            workload_key = WORKLOADS[family]
        except KeyError:
            raise KeyError(
                f"unknown workload family {family!r}; known: {sorted(WORKLOADS)}"
            ) from None
        for controller in ctrls:
            if controller not in SHARDED_CONTROLLERS:
                raise KeyError(
                    f"unknown sharded controller {controller!r}; "
                    f"known: {list(SHARDED_CONTROLLERS)}"
                )
            for scenario in shapes:
                if scenario not in SHARDED_SCENARIOS:
                    raise KeyError(
                        f"unknown sharded scenario {scenario!r}; "
                        f"known: {list(SHARDED_SCENARIOS)}"
                    )
                cells.append(
                    Scenario(
                        workload_family=family,
                        workload_key=workload_key,
                        controller=controller,
                        scenario=scenario,
                        config=_sharded_cell_config(workload_key, controller, scenario),
                    )
                )
    return cells


def fault_matrix(
    *,
    controllers: Optional[List[str]] = None,
    scenarios: Optional[List[str]] = None,
) -> List[Scenario]:
    """The fault-injection cells (chain family only — the crash target
    is a mid-chain service, and one family keeps the matrix cheap)."""
    ctrls = list(FAULT_CONTROLLERS) if controllers is None else controllers
    shapes = list(FAULT_SCENARIOS) if scenarios is None else scenarios
    cells = []
    for controller in ctrls:
        if controller not in FAULT_CONTROLLERS:
            raise KeyError(
                f"unknown fault controller {controller!r}; "
                f"known: {list(FAULT_CONTROLLERS)}"
            )
        for scenario in shapes:
            if scenario not in FAULT_SCENARIOS:
                raise KeyError(
                    f"unknown fault scenario {scenario!r}; "
                    f"known: {list(FAULT_SCENARIOS)}"
                )
            cells.append(
                Scenario(
                    workload_family="chain",
                    workload_key=WORKLOADS["chain"],
                    controller=controller,
                    scenario=scenario,
                    config=_fault_cell_config(WORKLOADS["chain"], controller, scenario),
                )
            )
    return cells


def scenario_matrix(
    *,
    workloads: Optional[List[str]] = None,
    controllers: Optional[List[str]] = None,
    scenarios: Optional[List[str]] = None,
) -> List[Scenario]:
    """Build the (optionally filtered) scenario list in stable order."""
    families = list(WORKLOADS) if workloads is None else workloads
    ctrls = list(CONTROLLERS) if controllers is None else controllers
    shapes = list(SCENARIOS) if scenarios is None else scenarios
    cells = []
    for family in families:
        try:
            workload_key = WORKLOADS[family]
        except KeyError:
            raise KeyError(
                f"unknown workload family {family!r}; known: {sorted(WORKLOADS)}"
            ) from None
        for controller in ctrls:
            for scenario in shapes:
                if scenario not in SCENARIOS:
                    raise KeyError(
                        f"unknown scenario {scenario!r}; known: {list(SCENARIOS)}"
                    )
                cells.append(
                    Scenario(
                        workload_family=family,
                        workload_key=workload_key,
                        controller=controller,
                        scenario=scenario,
                        config=_cell_config(workload_key, controller, scenario),
                    )
                )
    return cells
