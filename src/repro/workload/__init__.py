"""Open-loop workload generation — the ``wrk2_spike`` artifact (A2).

The paper modifies wrk2 to (a) generate input load spikes and (b) report
the violation-volume metric.  This subpackage is that tool's simulation
counterpart:

* :class:`~repro.workload.arrivals.RateSchedule` — piecewise-constant
  request-rate functions with the artifact's knobs (``-rate``,
  ``-spikerate``, ``-spikelen`` and the spike period used in §VI-B);
* :class:`~repro.workload.generator.OpenLoopClient` — a constant-pacing
  (wrk2-style) or Poisson open-loop client.  Open-loop means arrivals
  never wait for completions, so queue buildup during a surge is fully
  visible (no coordinated omission).
"""

from repro.workload.arrivals import RateSchedule, Spike
from repro.workload.generator import ClientStats, OpenLoopClient

__all__ = ["ClientStats", "OpenLoopClient", "RateSchedule", "Spike"]
