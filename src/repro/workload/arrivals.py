"""Piecewise-constant request-rate schedules with spike injection.

A :class:`RateSchedule` is a base rate plus a list of :class:`Spike`
windows during which the rate is overridden (the paper's instantaneous
surge model: "the *instantaneous* request rate during a surge is much
higher" — modeled as a rectangular rate pulse, which is also exactly
what the modified wrk2 generates).

The schedule supports exact inversion of the cumulative arrival count
(:meth:`RateSchedule.advance`), which the open-loop client uses to place
arrivals precisely even when a 100 µs spike multiplies the rate 20×.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["RateSchedule", "Spike"]

#: Candidate-arrival block size for :meth:`RateSchedule.advance_batch`:
#: bounds the re-accumulated tail at segment boundaries.
_BATCH_BLOCK = 4096


@dataclass(frozen=True)
class Spike:
    """One rectangular rate override: rate = ``rate`` during [start, end)."""

    start: float
    end: float
    rate: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty spike window [{self.start}, {self.end})")
        if self.rate < 0:
            raise ValueError("spike rate must be non-negative")


class RateSchedule:
    """Base rate plus non-overlapping spike overrides.

    Parameters
    ----------
    base_rate:
        Steady-state request rate (the wrk2 ``-rate`` knob).
    spikes:
        Override windows, non-overlapping (checked).  During a spike the
        rate *is* the spike rate (not additive), matching the paper's
        "request rate during the surge is set to 1.25×/1.5×/1.75× of the
        base request rate".
    """

    def __init__(self, base_rate: float, spikes: Sequence[Spike] = ()):
        if base_rate < 0:
            raise ValueError("base_rate must be non-negative")
        self.base_rate = float(base_rate)
        self.spikes: List[Spike] = sorted(spikes, key=lambda s: s.start)
        for a, b in zip(self.spikes, self.spikes[1:]):
            if b.start < a.end:
                raise ValueError(f"overlapping spikes: {a} and {b}")
        # Static segment table: contiguous half-open segments covering
        # (-inf, inf), segment i = [_seg_ends[i-1], _seg_ends[i]) at rate
        # _seg_rates[i].  Built once so every query is a bisect plus a
        # short walk instead of an O(#spikes) list rebuild per call — the
        # open-loop client calls `advance` once per arrival, which made
        # the old rebuild quadratic over a run with periodic spikes.
        ends: List[float] = []
        rates: List[float] = []
        prev_end = -math.inf
        for s in self.spikes:
            if s.start > prev_end:
                ends.append(s.start)
                rates.append(self.base_rate)
            ends.append(s.end)
            rates.append(s.rate)
            prev_end = s.end
        ends.append(math.inf)
        rates.append(self.base_rate)
        self._seg_ends = ends
        self._seg_rates = rates

    # ------------------------------------------------------------- builders
    @classmethod
    def periodic(
        cls,
        base_rate: float,
        *,
        magnitude: float,
        spike_len: float,
        period: float,
        first: float,
        until: float,
    ) -> "RateSchedule":
        """Spikes of ``magnitude × base_rate`` every ``period`` seconds.

        This is the §VI-B configuration ("injecting 2 s long request rate
        surges every 10 s ... surge rate 1.25×/1.5×/1.75× of base").
        """
        if magnitude < 0 or spike_len <= 0 or period <= 0:
            raise ValueError("invalid periodic spike parameters")
        if spike_len > period:
            raise ValueError("spike_len must not exceed period")
        spikes = []
        t = first
        while t < until:
            spikes.append(Spike(t, min(t + spike_len, until), magnitude * base_rate))
            t += period
        return cls(base_rate, spikes)

    @classmethod
    def single(
        cls, base_rate: float, *, magnitude: float, start: float, length: float
    ) -> "RateSchedule":
        """One spike of ``magnitude × base_rate`` (Fig. 10 / Fig. 14 shape)."""
        return cls(base_rate, [Spike(start, start + length, magnitude * base_rate)])

    # --------------------------------------------------------------- queries
    def rate_at(self, t: float) -> float:
        """Instantaneous rate at time ``t``."""
        i = bisect_right(self._seg_ends, t)
        if i >= len(self._seg_rates):  # t == inf
            return self.base_rate
        return self._seg_rates[i]

    def advance(self, t: float, units: float) -> float:
        """Earliest ``t' ≥ t`` with ``∫_t^{t'} rate(u) du = units``.

        Returns ``inf`` if the integral never reaches ``units`` (zero
        rate forever).  This inverts the cumulative arrival function for
        both deterministic pacing (``units = 1``) and Poisson thinning
        (``units ~ Exp(1)``).
        """
        if units < 0:
            raise ValueError("units must be non-negative")
        if units == 0:
            # ∫_t^t rate du == 0 already: the identity, even when the
            # segment containing t has zero rate (skipping ahead to the
            # next nonzero segment would invent a time jump for nothing).
            return t
        ends = self._seg_ends
        rates = self._seg_rates
        remaining = units
        cur = t
        i = bisect_right(ends, t)
        while True:
            seg_end = ends[i]
            rate = rates[i]
            if rate > 0:
                dt_needed = remaining / rate
                if cur + dt_needed <= seg_end:
                    return cur + dt_needed
                remaining -= (seg_end - cur) * rate
            if seg_end == math.inf:
                return math.inf
            cur = seg_end
            i += 1

    def advance_batch(self, t: float, units: np.ndarray) -> np.ndarray:
        """Vectorized chain of :meth:`advance`: arrival ``j`` advances from
        arrival ``j-1`` by ``units[j]`` integral units.

        Bit-identical to the scalar loop
        ``t_j = advance(t_{j-1}, units[j])`` (``t_{-1} = t``), which is
        what the chunked open-loop client depends on: within one
        constant-rate segment the scalar recurrence is
        ``t_j = t_{j-1} + units[j] / rate``, and
        ``np.add.accumulate`` over ``[cur, units/rate...]`` performs the
        *same* left-to-right float64 additions the scalar chain does, so
        the results match to the last bit.  Arrivals whose step crosses a
        segment boundary (and any landing in a zero-rate segment) are
        resolved by delegating that one step to the scalar
        :meth:`advance` — different arithmetic applies there
        (``remaining -= (seg_end - cur) * rate``), so the batch never
        re-derives it.  The boundary-fit test ``cand <= seg_end`` mirrors
        the scalar ``cur + dt_needed <= seg_end`` comparison exactly.

        Candidates are accumulated in blocks of :data:`_BATCH_BLOCK`, so
        a schedule with many segments costs O(n + segments·block), not
        O(n·segments).  Splitting the accumulation is free for identity:
        each block restarts from the exact float64 the previous block
        ended on, so the addition sequence is unchanged.
        """
        units = np.ascontiguousarray(units, dtype=np.float64)
        if units.ndim != 1:
            raise ValueError("units must be a 1-D array")
        n = units.shape[0]
        if n and float(units.min()) < 0:
            raise ValueError("units must be non-negative")
        out = np.empty(n, dtype=np.float64)
        ends = self._seg_ends
        rates = self._seg_rates
        cur = t
        j = 0
        while j < n:
            if cur == math.inf:
                out[j:] = math.inf
                break
            i = bisect_right(ends, cur)
            seg_end = ends[i]
            rate = rates[i]
            if rate > 0.0:
                # errstate: units/rate can overflow to inf on denormal
                # rates, exactly as the scalar path's Python division
                # does (silently); the candidates then simply fail the
                # fit test and resolve through the scalar fallback.
                with np.errstate(over="ignore"):
                    steps = units[j : j + _BATCH_BLOCK] / rate
                cand = np.add.accumulate(np.concatenate(([cur], steps)))[1:]
                fits = cand <= seg_end
                k = cand.shape[0] if bool(fits.all()) else int(fits.argmin())
                if k:
                    out[j : j + k] = cand[:k]
                    cur = float(cand[k - 1])
                    j += k
                    continue
            # Boundary-crossing step (or zero-rate segment): one scalar
            # advance, then resume batching from wherever it lands.
            cur = self.advance(cur, float(units[j]))
            out[j] = cur
            j += 1
        return out

    def mean_rate(self, t0: float, t1: float) -> float:
        """Average rate over [t0, t1] (for expected-request-count checks)."""
        if t1 <= t0:
            raise ValueError("empty interval")
        ends = self._seg_ends
        rates = self._seg_rates
        total = 0.0
        cur = t0
        i = bisect_right(ends, t0)
        while True:
            end = min(ends[i], t1)
            if end > cur:
                total += (end - cur) * rates[i]
                cur = end
            if cur >= t1:
                break
            i += 1
        return total / (t1 - t0)
