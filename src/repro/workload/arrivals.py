"""Piecewise-constant request-rate schedules with spike injection.

A :class:`RateSchedule` is a base rate plus a list of :class:`Spike`
windows during which the rate is overridden (the paper's instantaneous
surge model: "the *instantaneous* request rate during a surge is much
higher" — modeled as a rectangular rate pulse, which is also exactly
what the modified wrk2 generates).

The schedule supports exact inversion of the cumulative arrival count
(:meth:`RateSchedule.advance`), which the open-loop client uses to place
arrivals precisely even when a 100 µs spike multiplies the rate 20×.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["RateSchedule", "Spike"]


@dataclass(frozen=True)
class Spike:
    """One rectangular rate override: rate = ``rate`` during [start, end)."""

    start: float
    end: float
    rate: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty spike window [{self.start}, {self.end})")
        if self.rate < 0:
            raise ValueError("spike rate must be non-negative")


class RateSchedule:
    """Base rate plus non-overlapping spike overrides.

    Parameters
    ----------
    base_rate:
        Steady-state request rate (the wrk2 ``-rate`` knob).
    spikes:
        Override windows, non-overlapping (checked).  During a spike the
        rate *is* the spike rate (not additive), matching the paper's
        "request rate during the surge is set to 1.25×/1.5×/1.75× of the
        base request rate".
    """

    def __init__(self, base_rate: float, spikes: Sequence[Spike] = ()):
        if base_rate < 0:
            raise ValueError("base_rate must be non-negative")
        self.base_rate = float(base_rate)
        self.spikes: List[Spike] = sorted(spikes, key=lambda s: s.start)
        for a, b in zip(self.spikes, self.spikes[1:]):
            if b.start < a.end:
                raise ValueError(f"overlapping spikes: {a} and {b}")

    # ------------------------------------------------------------- builders
    @classmethod
    def periodic(
        cls,
        base_rate: float,
        *,
        magnitude: float,
        spike_len: float,
        period: float,
        first: float,
        until: float,
    ) -> "RateSchedule":
        """Spikes of ``magnitude × base_rate`` every ``period`` seconds.

        This is the §VI-B configuration ("injecting 2 s long request rate
        surges every 10 s ... surge rate 1.25×/1.5×/1.75× of base").
        """
        if magnitude < 0 or spike_len <= 0 or period <= 0:
            raise ValueError("invalid periodic spike parameters")
        if spike_len > period:
            raise ValueError("spike_len must not exceed period")
        spikes = []
        t = first
        while t < until:
            spikes.append(Spike(t, min(t + spike_len, until), magnitude * base_rate))
            t += period
        return cls(base_rate, spikes)

    @classmethod
    def single(
        cls, base_rate: float, *, magnitude: float, start: float, length: float
    ) -> "RateSchedule":
        """One spike of ``magnitude × base_rate`` (Fig. 10 / Fig. 14 shape)."""
        return cls(base_rate, [Spike(start, start + length, magnitude * base_rate)])

    # --------------------------------------------------------------- queries
    def rate_at(self, t: float) -> float:
        """Instantaneous rate at time ``t``."""
        for s in self.spikes:
            if s.start <= t < s.end:
                return s.rate
        return self.base_rate

    def _boundaries_after(self, t: float) -> List[Tuple[float, float]]:
        """(segment_end, segment_rate) pairs covering [t, ∞) in order."""
        segs: List[Tuple[float, float]] = []
        cur = t
        for s in self.spikes:
            if s.end <= cur:
                continue
            if s.start > cur:
                segs.append((s.start, self.base_rate))
            segs.append((s.end, s.rate))
            cur = s.end
        segs.append((math.inf, self.base_rate))
        return segs

    def advance(self, t: float, units: float) -> float:
        """Earliest ``t' ≥ t`` with ``∫_t^{t'} rate(u) du = units``.

        Returns ``inf`` if the integral never reaches ``units`` (zero
        rate forever).  This inverts the cumulative arrival function for
        both deterministic pacing (``units = 1``) and Poisson thinning
        (``units ~ Exp(1)``).
        """
        if units < 0:
            raise ValueError("units must be non-negative")
        remaining = units
        cur = t
        for seg_end, rate in self._boundaries_after(t):
            if rate > 0:
                dt_needed = remaining / rate
                if cur + dt_needed <= seg_end:
                    return cur + dt_needed
                remaining -= (seg_end - cur) * rate
            if seg_end is math.inf or seg_end == math.inf:
                return math.inf
            cur = seg_end
        return math.inf  # pragma: no cover - loop always hits the inf segment

    def mean_rate(self, t0: float, t1: float) -> float:
        """Average rate over [t0, t1] (for expected-request-count checks)."""
        if t1 <= t0:
            raise ValueError("empty interval")
        total = 0.0
        cur = t0
        for seg_end, rate in self._boundaries_after(t0):
            end = min(seg_end, t1)
            if end > cur:
                total += (end - cur) * rate
                cur = end
            if cur >= t1:
                break
        return total / (t1 - t0)
