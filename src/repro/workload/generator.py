"""Open-loop client: paced arrivals, latency recording, violation volume.

wrk2 semantics: the client fires requests on a fixed schedule derived
from the rate function, *regardless* of completions.  During a surge the
backlog therefore shows up as latency (no coordinated omission), which
is what the violation-volume metric integrates.

``pacing="uniform"`` reproduces wrk2's constant pacing (deterministic
inter-arrival 1/rate); ``pacing="poisson"`` draws exponential gaps via
the unit-rate transform (``advance(t, Exp(1))``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.cluster.cluster import Cluster
from repro.cluster.packet import RpcPacket
from repro.metrics.buffers import FloatBuffer
from repro.workload.arrivals import RateSchedule

__all__ = ["ClientStats", "OpenLoopClient"]


@dataclass
class ClientStats:
    """Per-request outcome log of one client run.

    The per-request columns are :class:`~repro.metrics.buffers.FloatBuffer`
    (geometrically-grown ``float64``, not boxed-float lists), so the
    metrics layer scans them without an ``np.asarray`` conversion pass.
    """

    #: Arrival (injection) timestamps, seconds.
    arrival_times: FloatBuffer = field(default_factory=FloatBuffer)
    #: End-to-end latencies; ``nan`` while a request is outstanding and
    #: for requests that completed as errors (their wall time measures
    #: timeout policy, not service latency).
    latencies: FloatBuffer = field(default_factory=FloatBuffer)
    sent: int = 0
    completed: int = 0
    #: Requests that completed as an *error* (RPC retry exhaustion under
    #: an armed fault layer).  Always 0 on fault-free runs.
    errored: int = 0

    def completed_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(arrival_times, latencies) of completed requests, time-ordered."""
        t = self.arrival_times.view()
        lat = self.latencies.view()
        mask = ~np.isnan(lat)
        return t[mask], lat[mask]

    @property
    def outstanding(self) -> int:
        """Requests injected but not resolved when the run stopped."""
        return self.sent - self.completed - self.errored

    @property
    def error_rate(self) -> float:
        """Fraction of injected requests that completed as errors."""
        return self.errored / self.sent if self.sent else 0.0


class OpenLoopClient:
    """Drives a cluster with an open-loop arrival schedule.

    Parameters
    ----------
    sim, cluster:
        The simulation and the deployed application.
    schedule:
        Rate function (base + spikes).
    start, duration:
        Injection window: requests are injected in ``[start, start+duration)``.
    pacing:
        ``"uniform"`` (wrk2 constant pacing, default) or ``"poisson"``.
    rng:
        Required for Poisson pacing.
    on_complete:
        Optional callback ``(request_index, arrival_t, latency)`` per
        completion — used by figure scripts for live timelines.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        schedule: RateSchedule,
        *,
        start: float = 0.0,
        duration: float,
        pacing: str = "uniform",
        rng: Optional[np.random.Generator] = None,
        on_complete: Optional[Callable[[int, float, float], None]] = None,
    ):
        if duration <= 0:
            raise ValueError("duration must be positive")
        if pacing not in ("uniform", "poisson"):
            raise ValueError(f"unknown pacing {pacing!r}")
        if pacing == "poisson" and rng is None:
            raise ValueError("poisson pacing requires an rng")
        self.sim = sim
        self.cluster = cluster
        self.schedule = schedule
        self.start = start
        self.end = start + duration
        self.pacing = pacing
        self.rng = rng
        self.on_complete = on_complete
        self.stats = ClientStats()
        self._next_id = 0
        self._started = False
        # Per-arrival fast path: bind the schedule inversion once and
        # skip the units-draw indirection under uniform pacing.
        self._advance = schedule.advance
        self._uniform = pacing == "uniform"

    def begin(self) -> None:
        """Arm the client (schedules the first arrival)."""
        if self._started:
            raise RuntimeError("client already started")
        self._started = True
        # wrk2 fires its first request immediately; Poisson pacing draws
        # a fresh exponential gap (memorylessness makes either choice
        # statistically equivalent, the immediate start keeps counts
        # exactly rate × duration under uniform pacing).
        if self.pacing == "uniform":
            first = self.start
        else:
            first = self.schedule.advance(self.start, self._draw_units())
        if first < self.end:
            self.sim.schedule_at(first, self._fire)

    def _draw_units(self) -> float:
        if self.pacing == "uniform":
            return 1.0
        return float(self.rng.exponential(1.0))  # type: ignore[union-attr]

    def _fire(self) -> None:
        now = self.sim.now
        idx = self._next_id
        self._next_id += 1
        stats = self.stats
        stats.arrival_times.append(now)
        stats.latencies.append(float("nan"))
        stats.sent += 1
        # The error callback only exists when the RPC resilience layer is
        # armed — the fault-free hot path allocates nothing extra.
        if self.cluster.rpc is None:
            self.cluster.client_send(idx, self._make_callback(idx, now))
        else:
            self.cluster.client_send(
                idx,
                self._make_callback(idx, now),
                on_error=self._make_error_callback(idx),
            )
        if self._uniform:
            nxt = self._advance(now, 1.0)
        else:
            nxt = self._advance(now, float(self.rng.exponential(1.0)))  # type: ignore[union-attr]
        if nxt < self.end:
            self.sim.schedule_at(nxt, self._fire)

    def _make_callback(self, idx: int, arrival: float):
        def cb(pkt: RpcPacket) -> None:
            if pkt.error:
                # Propagated failure: the root completed the request as
                # an error.  Recorded in the error ledger, not latency.
                self.stats.errored += 1
                return
            latency = self.sim.now - arrival
            # Direct slot write into the latency column: the nan placed
            # at injection time is overwritten in place.
            self.stats.latencies[idx] = latency
            self.stats.completed += 1
            if self.on_complete is not None:
                self.on_complete(idx, arrival, latency)

        return cb

    def _make_error_callback(self, idx: int):
        def cb(_pkt: RpcPacket) -> None:
            # Local retry exhaustion at the client→root call: no response
            # ever arrived, but the request is resolved (not hung).
            self.stats.errored += 1

        return cb
