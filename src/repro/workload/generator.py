"""Open-loop client: paced arrivals, latency recording, violation volume.

wrk2 semantics: the client fires requests on a fixed schedule derived
from the rate function, *regardless* of completions.  During a surge the
backlog therefore shows up as latency (no coordinated omission), which
is what the violation-volume metric integrates.

``pacing="uniform"`` reproduces wrk2's constant pacing (deterministic
inter-arrival 1/rate); ``pacing="poisson"`` draws exponential gaps via
the unit-rate transform (``advance(t, Exp(1))``).

Arrival generation has two modes (``REPRO_ARRIVALS``, read at client
construction like ``REPRO_SCHED``): ``scalar`` (default) inverts the
rate schedule once per arrival from inside the fired event; ``chunked``
precomputes the next :data:`DEFAULT_CHUNK` arrival timestamps per
refill via :meth:`RateSchedule.advance_batch` (Poisson unit draws come
as one block from the same RNG stream, which numpy guarantees is
bit-identical to sequential scalar draws).  Each arrival still fires as
its own event, scheduled by its predecessor — exactly the scalar
chain's event-creation order — so event counts, sequence numbers, and
therefore the committed golden fingerprints are bit-identical across
modes; only the per-arrival schedule-inversion and RNG-draw work is
batched away.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.cluster.cluster import Cluster
from repro.cluster.packet import RpcPacket
from repro.metrics.buffers import FloatBuffer
from repro.workload.arrivals import RateSchedule

__all__ = ["ClientStats", "OpenLoopClient", "arrivals_mode", "DEFAULT_CHUNK"]

#: Arrival timestamps precomputed per refill in chunked mode.
DEFAULT_CHUNK = 128


def arrivals_mode() -> str:
    """Arrival-generation selection (``REPRO_ARRIVALS``).

    ``"scalar"`` (default) or ``"chunked"``; read at
    :class:`OpenLoopClient` construction time, never at import time.
    """
    raw = os.environ.get("REPRO_ARRIVALS", "").strip().lower()
    if raw in ("", "scalar"):
        return "scalar"
    if raw == "chunked":
        return "chunked"
    raise ValueError(f"REPRO_ARRIVALS={raw!r}: expected scalar or chunked")


@dataclass
class ClientStats:
    """Per-request outcome log of one client run.

    The per-request columns are :class:`~repro.metrics.buffers.FloatBuffer`
    (geometrically-grown ``float64``, not boxed-float lists), so the
    metrics layer scans them without an ``np.asarray`` conversion pass.
    """

    #: Arrival (injection) timestamps, seconds.
    arrival_times: FloatBuffer = field(default_factory=FloatBuffer)
    #: End-to-end latencies; ``nan`` while a request is outstanding and
    #: for requests that completed as errors (their wall time measures
    #: timeout policy, not service latency).
    latencies: FloatBuffer = field(default_factory=FloatBuffer)
    sent: int = 0
    completed: int = 0
    #: Requests that completed as an *error* (RPC retry exhaustion under
    #: an armed fault layer).  Always 0 on fault-free runs.
    errored: int = 0

    def completed_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(arrival_times, latencies) of completed requests, time-ordered."""
        t = self.arrival_times.view()
        lat = self.latencies.view()
        mask = ~np.isnan(lat)
        return t[mask], lat[mask]

    @property
    def outstanding(self) -> int:
        """Requests injected but not resolved when the run stopped."""
        return self.sent - self.completed - self.errored

    @property
    def error_rate(self) -> float:
        """Fraction of injected requests that completed as errors."""
        return self.errored / self.sent if self.sent else 0.0


class OpenLoopClient:
    """Drives a cluster with an open-loop arrival schedule.

    Parameters
    ----------
    sim, cluster:
        The simulation and the deployed application.
    schedule:
        Rate function (base + spikes).
    start, duration:
        Injection window: requests are injected in ``[start, start+duration)``.
    pacing:
        ``"uniform"`` (wrk2 constant pacing, default) or ``"poisson"``.
    rng:
        Required for Poisson pacing.
    on_complete:
        Optional callback ``(request_index, arrival_t, latency)`` per
        completion — used by figure scripts for live timelines.
    chunk:
        Arrival timestamps to precompute per refill.  ``None`` defers to
        ``REPRO_ARRIVALS`` (scalar mode, or :data:`DEFAULT_CHUNK` when
        chunked); an explicit size forces chunked generation.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        schedule: RateSchedule,
        *,
        start: float = 0.0,
        duration: float,
        pacing: str = "uniform",
        rng: Optional[np.random.Generator] = None,
        on_complete: Optional[Callable[[int, float, float], None]] = None,
        chunk: Optional[int] = None,
    ):
        if duration <= 0:
            raise ValueError("duration must be positive")
        if pacing not in ("uniform", "poisson"):
            raise ValueError(f"unknown pacing {pacing!r}")
        if pacing == "poisson" and rng is None:
            raise ValueError("poisson pacing requires an rng")
        if chunk is None and arrivals_mode() == "chunked":
            chunk = DEFAULT_CHUNK
        if chunk is not None and chunk < 1:
            raise ValueError("chunk must be a positive size")
        self.sim = sim
        self.cluster = cluster
        self.schedule = schedule
        self.start = start
        self.end = start + duration
        self.pacing = pacing
        self.rng = rng
        self.on_complete = on_complete
        self.stats = ClientStats()
        self._next_id = 0
        self._started = False
        # Per-arrival fast path: bind the schedule inversion and the
        # cluster's prebound ingress sender once.
        self._advance = schedule.advance
        self._uniform = pacing == "uniform"
        self._send = cluster.client_sender()
        self._chunk = chunk
        self._times: Optional[np.ndarray] = None  # chunked-mode buffer
        self._times_i = 0
        self._ones = None if chunk is None or not self._uniform else np.ones(chunk)

    def begin(self) -> None:
        """Arm the client (schedules the first arrival)."""
        if self._started:
            raise RuntimeError("client already started")
        self._started = True
        # wrk2 fires its first request immediately; Poisson pacing draws
        # a fresh exponential gap (memorylessness makes either choice
        # statistically equivalent, the immediate start keeps counts
        # exactly rate × duration under uniform pacing).  The first
        # arrival always resolves through the scalar path — chunked mode
        # starts batching from the second arrival on, which keeps the
        # RNG draw order aligned with scalar mode from the very first
        # exponential.
        first = self.start if self._uniform else self._next_scalar(self.start)
        if first < self.end:
            fire = self._fire if self._chunk is None else self._fire_chunk
            self.sim.schedule_at(first, fire)

    def _next_scalar(self, frm: float) -> float:
        """The single draw-and-invert path shared by ``begin``/``_fire``."""
        if self._uniform:
            return self._advance(frm, 1.0)
        return self._advance(frm, float(self.rng.exponential(1.0)))  # type: ignore[union-attr]

    def _inject(self, now: float) -> None:
        """Record and send one arrival (shared by both firing modes)."""
        idx = self._next_id
        self._next_id = idx + 1
        stats = self.stats
        stats.arrival_times.append(now)
        stats.latencies.append(float("nan"))
        stats.sent += 1
        # The error callback only exists when the RPC resilience layer is
        # armed — the fault-free hot path allocates nothing extra and
        # goes through the prebound sender.
        if self.cluster.rpc is None:
            self._send(idx, self._make_callback(idx, now))
        else:
            self.cluster.client_send(
                idx,
                self._make_callback(idx, now),
                on_error=self._make_error_callback(idx),
            )

    def _fire(self) -> None:
        now = self.sim.now
        self._inject(now)
        nxt = self._next_scalar(now)
        if nxt < self.end:
            self.sim.schedule_at(nxt, self._fire)

    def _fire_chunk(self) -> None:
        now = self.sim.now
        self._inject(now)
        times = self._times
        i = self._times_i
        if times is None or i >= times.shape[0]:
            # Refill: block-draw the next ``chunk`` unit gaps and invert
            # them in one vectorized pass starting from this arrival.
            if self._uniform:
                units = self._ones
            else:
                units = self.rng.exponential(1.0, size=self._chunk)  # type: ignore[union-attr]
            times = self._times = self.schedule.advance_batch(now, units)
            i = 0
        self._times_i = i + 1
        nxt = float(times[i])
        if nxt < self.end:
            self.sim.schedule_at(nxt, self._fire_chunk)

    def _make_callback(self, idx: int, arrival: float):
        def cb(pkt: RpcPacket) -> None:
            if pkt.error:
                # Propagated failure: the root completed the request as
                # an error.  Recorded in the error ledger, not latency.
                self.stats.errored += 1
                return
            latency = self.sim.now - arrival
            # Direct slot write into the latency column: the nan placed
            # at injection time is overwritten in place.
            self.stats.latencies[idx] = latency
            self.stats.completed += 1
            if self.on_complete is not None:
                self.on_complete(idx, arrival, latency)

        return cb

    def _make_error_callback(self, idx: int):
        def cb(_pkt: RpcPacket) -> None:
            # Local retry exhaustion at the client→root call: no response
            # ever arrived, but the request is resolved (not hung).
            self.stats.errored += 1

        return cb
