"""Realistic load patterns beyond rectangular spikes.

The paper's evaluation uses rectangular surges (the modified wrk2), but
its motivation cites production traffic: diurnal cycles with sudden
events (Facebook's global events, Twitter search spikes, AWS's spiky
workloads).  These builders produce such shapes as
:class:`~repro.workload.arrivals.RateSchedule` piecewise-constant
approximations, so any experiment can swap them in.

All of them go through :func:`from_samples`, which also lets users feed
*measured* request-rate traces (one sample per bucket) straight into the
open-loop client.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.workload.arrivals import RateSchedule, Spike

__all__ = ["diurnal", "flash_crowd", "from_samples", "ramp"]


def from_samples(
    samples: Sequence[float],
    *,
    bucket: float,
    start: float = 0.0,
) -> RateSchedule:
    """Piecewise-constant schedule from a measured rate trace.

    Parameters
    ----------
    samples:
        Request rate per bucket (req/s).  Must be non-empty and
        non-negative.
    bucket:
        Bucket width in seconds.
    start:
        Time of the first bucket.

    The schedule's *base* rate is the final sample (the trace's steady
    tail); earlier buckets become override windows.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("empty trace")
    if np.any(arr < 0) or not np.all(np.isfinite(arr)):
        raise ValueError("rates must be finite and non-negative")
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    base = float(arr[-1])
    spikes: List[Spike] = []
    t = start
    for rate in arr[:-1]:
        spikes.append(Spike(t, t + bucket, float(rate)))
        t += bucket
    return RateSchedule(base, spikes)


def diurnal(
    *,
    mean_rate: float,
    amplitude: float = 0.4,
    period: float = 60.0,
    duration: float = 120.0,
    buckets: int = 48,
    rng: Optional[np.random.Generator] = None,
    noise: float = 0.0,
) -> RateSchedule:
    """A day/night sinusoid compressed to simulation scale.

    ``rate(t) = mean · (1 + amplitude · sin(2πt/period))`` sampled into
    ``buckets`` steps, with optional multiplicative noise.
    """
    if not 0 <= amplitude < 1:
        raise ValueError("amplitude must be in [0, 1)")
    if noise < 0 or (noise > 0 and rng is None):
        raise ValueError("noise requires an rng and must be non-negative")
    t = np.linspace(0.0, duration, buckets, endpoint=False)
    rates = mean_rate * (1.0 + amplitude * np.sin(2 * math.pi * t / period))
    if noise > 0 and rng is not None:
        rates = rates * (1.0 + noise * (rng.random(buckets) - 0.5))
    # from_samples takes the *final* sample as the schedule's steady
    # base, so the sinusoid must end on an explicit mean-rate tail —
    # otherwise the post-window rate freezes at whatever phase the last
    # bucket sampled (e.g. ~89.6 req/s for mean 100, period 10, duration
    # 20), exactly like flash_crowd's appended steady tail.
    samples = np.append(rates, mean_rate)
    return from_samples(samples, bucket=duration / buckets)


def flash_crowd(
    *,
    base_rate: float,
    peak_multiplier: float = 3.0,
    onset: float,
    rise: float = 0.5,
    hold: float = 2.0,
    decay: float = 4.0,
    buckets_per_second: float = 4.0,
) -> RateSchedule:
    """A flash-crowd event: sharp rise, plateau, exponential-ish decay.

    This is the "large transient surge" shape of the paper's motivation
    (2–3× average with much higher instantaneous rates), as opposed to
    the evaluation's clean rectangles.
    """
    if peak_multiplier < 1:
        raise ValueError("peak_multiplier must be >= 1")
    nb = max(int((rise + hold + decay) * buckets_per_second), 3)
    t = np.linspace(0.0, rise + hold + decay, nb, endpoint=False)
    mult = np.ones(nb)
    rising = t < rise
    mult[rising] = 1.0 + (peak_multiplier - 1.0) * (t[rising] / max(rise, 1e-9))
    plateau = (t >= rise) & (t < rise + hold)
    mult[plateau] = peak_multiplier
    tail = t >= rise + hold
    mult[tail] = 1.0 + (peak_multiplier - 1.0) * np.exp(
        -(t[tail] - rise - hold) / max(decay / 3.0, 1e-9)
    )
    samples = np.append(base_rate * mult, base_rate)  # steady tail
    return from_samples(
        samples, bucket=(rise + hold + decay) / nb, start=onset
    )


def ramp(
    *,
    start_rate: float,
    end_rate: float,
    t0: float,
    length: float,
    steps: int = 20,
) -> RateSchedule:
    """A linear rate ramp (capacity-planning style load test)."""
    if steps < 1 or length <= 0:
        raise ValueError("need steps >= 1 and positive length")
    rates = np.linspace(start_rate, end_rate, steps + 1)
    return from_samples(rates, bucket=length / steps, start=t0)
