"""Unit tests for the repetition / trimmed-mean protocol."""

import pytest

from repro.analysis.aggregate import default_reps, run_cell, trimmed_mean
from repro.controllers.null import NullController
from tests.controllers.conftest import mini_config


class TestTrimmedMean:
    def test_paper_protocol_17_to_15(self):
        """17 points, drop best and worst, average 15."""
        values = list(range(17))  # 0..16
        assert trimmed_mean(values) == pytest.approx(sum(range(1, 16)) / 15)

    def test_outliers_excluded(self):
        values = [10.0] * 15 + [0.0, 1e9]
        assert trimmed_mean(values) == pytest.approx(10.0)

    def test_small_samples_untrimmed(self):
        assert trimmed_mean([5.0]) == 5.0
        assert trimmed_mean([4.0, 6.0]) == 5.0

    def test_three_samples_trimmed_to_median(self):
        assert trimmed_mean([1.0, 5.0, 100.0]) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trimmed_mean([])


class TestDefaultReps:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "17")
        assert default_reps() == 17

    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPS", raising=False)
        assert default_reps() == 1

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "zero")
        with pytest.raises(ValueError):
            default_reps()
        monkeypatch.setenv("REPRO_REPS", "0")
        with pytest.raises(ValueError):
            default_reps()


class TestRunCell:
    def test_reps_use_distinct_seeds(self):
        cfg = mini_config(NullController, duration=2.0, warmup=1.0)
        cell = run_cell(cfg, reps=2, keep_runs=True)
        assert cell.reps == 2
        a, b = cell.runs
        assert a.config.seed != b.config.seed

    def test_single_rep_matches_run_experiment(self):
        from repro.experiments.harness import run_experiment

        cfg = mini_config(NullController, duration=2.0, warmup=1.0)
        cell = run_cell(cfg, reps=1)
        direct = run_experiment(cfg)
        assert cell.violation_volume == pytest.approx(direct.violation_volume)
        assert cell.avg_cores == pytest.approx(direct.avg_cores)

    def test_runs_dropped_by_default(self):
        cfg = mini_config(NullController, duration=2.0, warmup=1.0)
        cell = run_cell(cfg, reps=1)
        assert cell.runs == ()
