"""Unit tests for baseline normalization."""

import math

import pytest

from repro.analysis.aggregate import CellResult
from repro.analysis.normalize import normalize_cells


def cell(controller, vv=1.0, cores=10.0, energy=100.0, workload="w"):
    return CellResult(
        workload=workload,
        controller=controller,
        reps=1,
        violation_volume=vv,
        p98=vv / 10,
        avg_cores=cores,
        energy=energy,
    )


class TestNormalize:
    def test_baseline_normalizes_to_one(self):
        base = cell("parties")
        out = normalize_cells([base], base)
        assert out["parties"].violation_volume == 1.0
        assert out["parties"].avg_cores == 1.0

    def test_ratios(self):
        base = cell("parties", vv=2.0, cores=10.0, energy=100.0)
        subject = cell("surgeguard", vv=0.5, cores=9.0, energy=96.0)
        out = normalize_cells([subject], base)
        n = out["surgeguard"]
        assert n.violation_volume == pytest.approx(0.25)
        assert n.avg_cores == pytest.approx(0.9)
        assert n.energy == pytest.approx(0.96)
        assert n.baseline == "parties"

    def test_zero_baseline_vv_is_inf_or_one(self):
        base = cell("parties", vv=0.0)
        perfect = cell("surgeguard", vv=0.0)
        worse = cell("caladan", vv=1.0)
        out = normalize_cells([perfect, worse], base)
        assert out["surgeguard"].violation_volume == 1.0
        assert math.isinf(out["caladan"].violation_volume)

    def test_cross_workload_rejected(self):
        base = cell("parties", workload="a")
        other = cell("surgeguard", workload="b")
        with pytest.raises(ValueError):
            normalize_cells([other], base)
