"""Unit tests for text rendering helpers."""

import pytest

from repro.analysis.render import bar_chart, format_table, sparkline


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [["x", 1], ["yyyy", 22]])
        lines = out.split("\n")
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "bbb" in lines[0]
        # all rows align on the same column
        assert lines[2].index("1") == lines[3].index("2")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_bars_scale_to_peak(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.split("\n")
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
