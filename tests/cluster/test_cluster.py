"""Unit tests for cluster assembly and the NodeView isolation contract."""

import pytest

from repro.cluster.cluster import ClusterConfig
from tests.conftest import make_chain_app


class TestAssembly:
    def test_one_container_per_service(self, small_cluster, small_app):
        assert set(small_cluster.containers) == {s.name for s in small_app.services}

    def test_initial_allocations_match_spec(self, small_cluster, small_app):
        for s in small_app.services:
            assert small_cluster.containers[s.name].cores == s.initial_cores

    def test_initial_frequency_is_floor(self, small_cluster):
        dvfs = small_cluster.config.dvfs
        for c in small_cluster.containers.values():
            assert c.frequency == dvfs.f_min

    def test_round_robin_spreads_across_nodes(self, make_cluster):
        app = make_chain_app(4)
        cluster = make_cluster(app, n_nodes=2, cores_per_node=8)
        nodes_used = {cluster.placement[s] for s in app.service_names}
        assert nodes_used == {0, 1}

    def test_pack_placement_single_node(self, small_cluster):
        assert all(v == 0 for v in small_cluster.placement.values())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(placement="magic")


class TestControllerApi:
    def test_set_cores_respects_node_budget(self, small_cluster):
        with pytest.raises(ValueError):
            small_cluster.set_cores("s0", 100.0)

    def test_set_frequency_clamps(self, small_cluster):
        small_cluster.set_frequency("s0", 99e9)
        assert (
            small_cluster.containers["s0"].frequency
            == small_cluster.config.dvfs.f_max
        )

    def test_timeline_recording(self, sim, make_cluster, small_app):
        cluster = make_cluster(small_app, record_timelines=True)
        sim.schedule(1.0, cluster.set_cores, "s0", 3.0)
        sim.run()
        assert (1.0, "s0", 3.0) in cluster.alloc_events

    def test_average_cores_of_static_cluster(self, sim, make_cluster, small_app):
        cluster = make_cluster(small_app)
        sim.schedule(4.0, lambda: None)
        sim.run()
        total_init = sum(s.initial_cores for s in small_app.services)
        assert cluster.average_cores(4.0) == pytest.approx(total_init)

    def test_total_allocated(self, small_cluster, small_app):
        assert small_cluster.total_allocated == pytest.approx(
            sum(s.initial_cores for s in small_app.services)
        )


class TestNodeView:
    def test_view_lists_only_local_containers(self, make_cluster):
        app = make_chain_app(4)
        cluster = make_cluster(app, n_nodes=2, cores_per_node=8)
        v0, v1 = cluster.node_views
        assert set(v0.container_names) | set(v1.container_names) == set(
            app.service_names
        )
        assert not (set(v0.container_names) & set(v1.container_names))

    def test_remote_access_raises(self, make_cluster):
        app = make_chain_app(4)
        cluster = make_cluster(app, n_nodes=2, cores_per_node=8)
        v0 = cluster.node_views[0]
        remote = next(
            n for n in app.service_names if n not in v0.container_names
        )
        with pytest.raises(KeyError):
            v0.container(remote)
        with pytest.raises(KeyError):
            v0.runtime(remote)
        with pytest.raises(KeyError):
            v0.set_cores(remote, 2.0)
        with pytest.raises(KeyError):
            v0.set_frequency(remote, 2e9)

    def test_local_downstream_filters_to_node(self, make_cluster):
        app = make_chain_app(4)
        cluster = make_cluster(app, n_nodes=2, cores_per_node=8)
        for view in cluster.node_views:
            for name in view.container_names:
                for d in view.local_downstream(name):
                    assert d in view.container_names
                    assert d in app.downstream_of(name)

    def test_view_mutations_apply(self, small_cluster):
        view = small_cluster.node_views[0]
        view.set_cores("s0", 3.0)
        assert small_cluster.containers["s0"].cores == 3.0


class TestClientPath:
    def test_client_roundtrip(self, sim, small_cluster):
        done = []
        small_cluster.client_send(7, lambda pkt: done.append(pkt.request_id))
        sim.run()
        assert done == [7]

    def test_request_counts(self, sim, small_cluster):
        for i in range(5):
            small_cluster.client_send(i, lambda p: None)
        sim.run()
        assert small_cluster.instances["s0"].requests_started == 5
