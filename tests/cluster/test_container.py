"""Unit tests for the processor-sharing container model."""

import pytest

from repro.cluster.container import Container
from repro.cluster.frequency import DvfsModel


@pytest.fixture
def container(sim, dvfs):
    return Container(sim, "c", dvfs, cores=2.0, frequency=1.6e9)


class TestSingleJob:
    def test_uncontended_job_runs_at_frequency(self, sim, container):
        done = []
        container.submit(1.6e9, lambda: done.append(sim.now))  # 1s of work
        sim.run()
        assert done == [pytest.approx(1.0)]

    def test_zero_work_completes_immediately(self, sim, container):
        done = []
        container.submit(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.0)]

    def test_negative_work_rejected(self, container):
        with pytest.raises(ValueError):
            container.submit(-1.0, lambda: None)

    def test_frequency_scales_service_time(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0, frequency=dvfs.f_max)
        done = []
        c.submit(dvfs.f_max, lambda: done.append(sim.now))  # 1s at f_max
        sim.run()
        assert done == [pytest.approx(1.0)]


class TestProcessorSharing:
    def test_two_jobs_on_one_core_take_double(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0, frequency=1.6e9)
        done = []
        c.submit(1.6e9, lambda: done.append(("a", sim.now)))
        c.submit(1.6e9, lambda: done.append(("b", sim.now)))
        sim.run()
        assert [t for _, t in done] == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_jobs_within_core_count_unslowed(self, sim, container):
        # 2 cores, 2 jobs: no contention.
        done = []
        container.submit(1.6e9, lambda: done.append(sim.now))
        container.submit(1.6e9, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_shorter_job_finishes_first(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0, frequency=1.6e9)
        done = []
        c.submit(1.6e9, lambda: done.append("long"))
        c.submit(0.8e9, lambda: done.append("short"))
        sim.run()
        assert done == ["short", "long"]

    def test_late_arrival_shares_capacity(self, sim, dvfs):
        # Job A (1s of work) alone for 0.5s, then B arrives: A's remaining
        # 0.5s of work takes 1.0s shared ⇒ A finishes at 1.5s.
        c = Container(sim, "c", dvfs, cores=1.0, frequency=1.6e9)
        done = {}
        c.submit(1.6e9, lambda: done.setdefault("a", sim.now))
        sim.schedule(0.5, lambda: c.submit(0.8e9, lambda: done.setdefault("b", sim.now)))
        sim.run()
        assert done["a"] == pytest.approx(1.5)
        # B: 0.5s of work, shared with A until 1.5 (progress 0.5s), done at 1.5.
        assert done["b"] == pytest.approx(1.5)

    def test_fractional_cores_slow_single_job(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=0.5, frequency=1.6e9)
        done = []
        c.submit(1.6e9, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.0)]


class TestDynamicReconfiguration:
    def test_adding_cores_speeds_up_mid_job(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0, frequency=1.6e9)
        done = []
        for _ in range(2):
            c.submit(1.6e9, lambda: done.append(sim.now))
        # At t=1, half the work is done (shared); add a second core: the
        # remaining 0.5s each run unshared ⇒ finish at 1.5.
        sim.schedule(1.0, c.set_cores, 2.0)
        sim.run()
        assert done == [pytest.approx(1.5), pytest.approx(1.5)]

    def test_raising_frequency_mid_job(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0, frequency=1.6e9)
        done = []
        c.submit(1.6e9, lambda: done.append(sim.now))
        sim.schedule(0.5, c.set_frequency, dvfs.f_max)  # 2.4 GHz default
        sim.run()
        # 0.5s left of 1.6e9-cycle job = 0.8e9 cycles at 2.4e9 ⇒ ~0.333s.
        assert done == [pytest.approx(0.5 + 0.8 / 2.4)]

    def test_invalid_cores_rejected(self, container):
        with pytest.raises(ValueError):
            container.set_cores(0.0)

    def test_noop_changes_are_cheap(self, sim, container):
        container.submit(1.6e9, lambda: None)
        before = sim.events_pending
        container.set_cores(container.cores)
        container.set_frequency(container.frequency)
        assert sim.events_pending == before

    def test_frequency_clamped_to_dvfs_range(self, container, dvfs):
        container.set_frequency(10e9)
        assert container.frequency == dvfs.f_max
        container.set_frequency(0.1e9)
        assert container.frequency == dvfs.f_min


class TestAccounting:
    def test_alloc_core_seconds_integrates(self, sim, container):
        container.submit(1.6e9, lambda: None)
        sim.run()
        container.sync()
        assert container.alloc_core_seconds == pytest.approx(2.0 * 1.0)

    def test_busy_core_seconds_counts_active_only(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=2.0, frequency=1.6e9)
        c.submit(1.6e9, lambda: None)  # 1 job on 2 cores: busy=1
        sim.run()
        c.sync()
        assert c.busy_core_seconds == pytest.approx(1.0)

    def test_busy_capped_at_cores(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0, frequency=1.6e9)
        c.submit(1.6e9, lambda: None)
        c.submit(1.6e9, lambda: None)
        sim.run()
        c.sync()
        assert c.busy_core_seconds == pytest.approx(2.0)  # 1 core × 2s

    def test_freq_seconds_tracks_mean_frequency(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0, frequency=1.6e9)
        sim.schedule(1.0, c.set_frequency, 2.4e9)
        sim.schedule(2.0, lambda: None)
        sim.run()
        c.sync()
        assert c.freq_seconds == pytest.approx(1.6e9 * 1.0 + 2.4e9 * 1.0)

    def test_completed_jobs_counter(self, sim, container):
        for _ in range(5):
            container.submit(1e6, lambda: None)
        sim.run()
        assert container.completed_jobs == 5

    def test_active_jobs_property(self, sim, container):
        container.submit(1.6e9, lambda: None)
        container.submit(1.6e9, lambda: None)
        assert container.active_jobs == 2
        sim.run()
        assert container.active_jobs == 0


class TestConservation:
    def test_total_work_conserved_under_reconfig(self, sim, dvfs):
        """Work in = cycles out regardless of allocation churn."""
        c = Container(sim, "c", dvfs, cores=1.0, frequency=1.6e9)
        done = []
        total_work = 0.0
        for i in range(10):
            w = (i + 1) * 1e8
            total_work += w
            sim.schedule(i * 0.05, c.submit, w, lambda: done.append(sim.now))
        # Churn allocations while jobs run.
        for i in range(20):
            sim.schedule(0.1 * i, c.set_cores, 1.0 + (i % 3))
        sim.run()
        assert len(done) == 10
        c.sync()
        # busy-core-seconds × frequency ≥ total work (equality when the
        # frequency never changes, as here).
        assert c.busy_core_seconds * 1.6e9 == pytest.approx(total_work, rel=1e-6)
