"""Unit tests for the energy model (idle-subtracted accounting)."""

import pytest

from repro.cluster.container import Container
from repro.cluster.energy import EnergyModel


class TestEnergy:
    def test_idle_allocated_core_burns_static_only(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=2.0)
        sim.schedule(10.0, lambda: None)
        sim.run()
        c.sync()
        e = EnergyModel(dvfs).container_energy(c)
        assert e == pytest.approx(dvfs.static_w * 2.0 * 10.0)

    def test_busy_core_adds_dynamic(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0, frequency=dvfs.f_max)
        c.submit(dvfs.f_max * 2.0, lambda: None)  # 2s busy at f_max
        sim.run()
        c.sync()
        e = EnergyModel(dvfs).container_energy(c)
        expected = dvfs.static_w * 1.0 * 2.0 + dvfs.dyn_w_at_fmax * 1.0 * 2.0
        assert e == pytest.approx(expected)

    def test_dynamic_scales_quadratically_with_frequency_for_fixed_work(self):
        # Same *work* at half frequency takes 2x time but the f³ weight
        # is 1/8: dynamic energy ratio = (f/f_max)² = 1/4.
        from repro.cluster.frequency import DvfsModel

        wide = DvfsModel(f_min=1.0e9, f_max=2.0e9, step=0.5e9)

        def energy_at(f):
            from repro.sim.engine import Simulator

            s = Simulator()
            c = Container(s, "c", wide, cores=1.0, frequency=f)
            c.submit(wide.f_max, lambda: None)
            s.run()
            c.sync()
            return wide.dyn_w_at_fmax * c.busy_weighted_seconds

        ratio = energy_at(wide.f_max / 2) / energy_at(wide.f_max)
        assert ratio == pytest.approx(0.25)

    def test_total_energy_sums(self, sim, dvfs):
        c1 = Container(sim, "a", dvfs, cores=1.0)
        c2 = Container(sim, "b", dvfs, cores=3.0)
        sim.schedule(5.0, lambda: None)
        sim.run()
        c1.sync(), c2.sync()
        model = EnergyModel(dvfs)
        assert model.total_energy([c1, c2]) == pytest.approx(
            model.container_energy(c1) + model.container_energy(c2)
        )

    def test_average_power(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=2.0)
        sim.schedule(10.0, lambda: None)
        sim.run()
        c.sync()
        p = EnergyModel(dvfs).average_power([c], elapsed=10.0)
        assert p == pytest.approx(dvfs.static_w * 2.0)

    def test_average_power_invalid_elapsed(self, dvfs):
        with pytest.raises(ValueError):
            EnergyModel(dvfs).average_power([], elapsed=0.0)
