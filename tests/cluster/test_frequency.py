"""Unit tests for the DVFS model."""

import pytest

from repro.cluster.frequency import DvfsModel


class TestLevels:
    def test_clamp_to_range(self, dvfs):
        assert dvfs.clamp(0.5e9) == dvfs.f_min
        assert dvfs.clamp(99e9) == dvfs.f_max

    def test_clamp_snaps_to_step(self, dvfs):
        assert dvfs.clamp(1.71e9) == pytest.approx(1.8e9)
        assert dvfs.clamp(1.69e9) == pytest.approx(1.6e9)

    def test_step_up_down(self, dvfs):
        assert dvfs.step_up(1.6e9) == pytest.approx(1.8e9)
        assert dvfs.step_down(1.8e9) == pytest.approx(1.6e9)

    def test_step_saturates(self, dvfs):
        assert dvfs.step_up(dvfs.f_max) == dvfs.f_max
        assert dvfs.step_down(dvfs.f_min) == dvfs.f_min

    def test_levels_ascending_and_bounded(self, dvfs):
        levels = dvfs.levels
        assert levels[0] == dvfs.f_min
        assert levels[-1] == dvfs.f_max
        assert all(a < b for a, b in zip(levels, levels[1:]))

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            DvfsModel(f_min=2e9, f_max=1e9)
        with pytest.raises(ValueError):
            DvfsModel(step=0.0)


class TestPower:
    def test_dynamic_power_cubic(self, dvfs):
        half = dvfs.dynamic_power(dvfs.f_max / 2)
        full = dvfs.dynamic_power(dvfs.f_max)
        assert half == pytest.approx(full / 8)

    def test_core_power_includes_static(self, dvfs):
        idle = dvfs.core_power(dvfs.f_max, 0.0)
        busy = dvfs.core_power(dvfs.f_max, 1.0)
        assert idle == pytest.approx(dvfs.static_w)
        assert busy == pytest.approx(dvfs.static_w + dvfs.dyn_w_at_fmax)

    def test_power_monotone_in_frequency(self, dvfs):
        powers = [dvfs.core_power(f, 1.0) for f in dvfs.levels]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_invalid_utilization_rejected(self, dvfs):
        with pytest.raises(ValueError):
            dvfs.core_power(dvfs.f_min, 1.5)
