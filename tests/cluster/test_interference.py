"""Tests for interference injection (the third surge type)."""

import pytest

from repro.cluster.container import Container
from repro.cluster.interference import InterferenceInjector, InterferenceWindow
from tests.conftest import make_chain_app


class TestSpeedFactor:
    def test_slowdown_scales_service_time(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0, frequency=1.6e9)
        c.set_speed_factor(0.5)
        done = []
        c.submit(1.6e9, lambda: done.append(sim.now))  # 1s of clean work
        sim.run()
        assert done == [pytest.approx(2.0)]

    def test_factor_change_mid_job(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0, frequency=1.6e9)
        done = []
        c.submit(1.6e9, lambda: done.append(sim.now))
        sim.schedule(0.5, c.set_speed_factor, 0.5)
        sim.run()
        # 0.5s clean (half done) + remaining 0.5s of work at half speed.
        assert done == [pytest.approx(1.5)]

    def test_invalid_factor_rejected(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0)
        with pytest.raises(ValueError):
            c.set_speed_factor(0.0)
        with pytest.raises(ValueError):
            c.set_speed_factor(1.5)

    def test_lifting_interference_restores_speed(self, sim, dvfs):
        c = Container(sim, "c", dvfs, cores=1.0, frequency=1.6e9)
        c.set_speed_factor(0.5)
        c.set_speed_factor(1.0)
        done = []
        c.submit(1.6e9, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0)]


class TestInjector:
    def test_window_applies_and_lifts(self, sim, make_cluster):
        cluster = make_cluster(make_chain_app(2), cores_per_node=8)
        inj = InterferenceInjector(cluster)
        inj.inject("s1", start=1.0, length=0.5, factor=0.4)
        sim.run(until=1.2)
        assert cluster.containers["s1"].speed_factor == 0.4
        sim.run(until=2.0)
        assert cluster.containers["s1"].speed_factor == 1.0

    def test_unknown_container_rejected(self, make_cluster):
        cluster = make_cluster(make_chain_app(2), cores_per_node=8)
        with pytest.raises(KeyError):
            InterferenceInjector(cluster).inject(
                "ghost", start=0.0, length=1.0, factor=0.5
            )

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            InterferenceWindow("c", 1.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            InterferenceWindow("c", 0.0, 1.0, 1.0)


class TestSurgeGuardUnderInterference:
    def test_surgeguard_mitigates_interference(self, sim, rng):
        """An interference episode inside one mid-chain container: the
        latency hit with SurgeGuard must be far below static."""
        from repro.controllers.null import NullController
        from repro.core import SurgeGuardController
        from repro.experiments.harness import ExperimentConfig, profile_targets
        from repro.metrics.violation import violation_volume
        from repro.sim.engine import Simulator
        from repro.sim.rng import RngRegistry
        from repro.workload.arrivals import RateSchedule
        from repro.workload.generator import OpenLoopClient

        app = make_chain_app(3, work=1.6e6, pool=8, cores=1.5, deterministic=False)
        cfg = ExperimentConfig(
            workload="interf",
            app=app,
            base_rate=800.0,
            spike_magnitude=None,
            duration=5.0,
            warmup=1.5,
            cores_per_node=10.0,
            profile_duration=1.5,
        )
        targets = profile_targets(cfg)

        def run(factory):
            s = Simulator()
            from repro.cluster.cluster import Cluster as C, ClusterConfig as CC

            cluster = C(s, app, CC(cores_per_node=10, placement="pack"), RngRegistry(5))
            InterferenceInjector(cluster).inject(
                "s1", start=2.5, length=1.5, factor=0.45
            )
            client = OpenLoopClient(s, cluster, RateSchedule(800.0), duration=6.0)
            ctrl = factory()
            ctrl.attach(s, cluster, targets)
            client.begin()
            ctrl.start()
            s.run(until=7.5)
            t, lat = client.stats.completed_arrays()
            mask = t >= 1.5
            return violation_volume(t[mask], lat[mask], targets.qos_target)

        vv_static = run(NullController)
        vv_sg = run(SurgeGuardController)
        assert vv_sg < 0.5 * vv_static
