"""Integration tests of the request state machine through a real cluster."""

import pytest

from repro.cluster.packet import RpcPacket
from repro.services.taskgraph import AppSpec, EdgeSpec, ServiceSpec, WorkDist
from tests.conftest import make_chain_app


def run_one_request(sim, cluster):
    done = []
    cluster.client_send(0, lambda pkt: done.append(sim.now))
    sim.run()
    return done


def fanout_app(mode: str, pool: int | None) -> AppSpec:
    return AppSpec(
        name="fan",
        action=mode,
        services=(
            ServiceSpec(
                "root",
                pre_work=WorkDist(1.6e6, "deterministic"),
                children=(EdgeSpec("l", pool), EdgeSpec("r", pool)),
                fanout=mode,
                initial_cores=2.0,
            ),
            ServiceSpec("l", pre_work=WorkDist(1.6e6, "deterministic"), initial_cores=1.0),
            ServiceSpec("r", pre_work=WorkDist(1.6e6, "deterministic"), initial_cores=1.0),
        ),
        root="root",
        qos_target=50e-3,
    )


class TestChainFlow:
    def test_request_traverses_whole_chain(self, sim, make_cluster):
        app = make_chain_app(3)
        cluster = make_cluster(app)
        done = run_one_request(sim, cluster)
        assert len(done) == 1
        for name in ("s0", "s1", "s2"):
            assert cluster.instances[name].requests_completed == 1

    def test_latency_at_least_sum_of_work(self, sim, make_cluster):
        app = make_chain_app(3, work=1.6e6)  # 1ms per stage at 1.6GHz
        cluster = make_cluster(app)
        done = run_one_request(sim, cluster)
        assert done[0] >= 3e-3

    def test_exec_times_nest_downstream(self, sim, make_cluster):
        """Upstream execTime ≥ downstream execTime (synchronous RPC)."""
        app = make_chain_app(3)
        cluster = make_cluster(app)
        run_one_request(sim, cluster)
        e = {
            n: cluster.runtimes[n].total_exec_time
            for n in ("s0", "s1", "s2")
        }
        assert e["s0"] > e["s1"] > e["s2"]

    def test_post_work_runs_after_children(self, sim, make_cluster):
        app = AppSpec(
            name="pw",
            action="x",
            services=(
                ServiceSpec(
                    "a",
                    pre_work=WorkDist(1.6e6, "deterministic"),
                    children=(EdgeSpec("b", None),),
                    post_work=WorkDist(1.6e6, "deterministic"),
                    initial_cores=1.0,
                ),
                ServiceSpec("b", pre_work=WorkDist(1.6e6, "deterministic"), initial_cores=1.0),
            ),
            root="a",
            qos_target=50e-3,
        )
        cluster = make_cluster(app)
        done = run_one_request(sim, cluster)
        assert done[0] >= 3e-3  # pre + child + post


class TestFanout:
    def test_parallel_faster_than_sequential(self):
        from repro.cluster.cluster import Cluster, ClusterConfig
        from repro.sim.engine import Simulator
        from repro.sim.rng import RngRegistry

        def latency(mode):
            s = Simulator()
            cfg = ClusterConfig(cores_per_node=12, placement="pack")
            c = Cluster(s, fanout_app(mode, None), cfg, RngRegistry(1))
            done = []
            c.client_send(0, lambda p: done.append(s.now))
            s.run()
            return done[0]

        assert latency("parallel") < latency("sequential")

    def test_parallel_waits_for_all_children(self, sim, make_cluster):
        cluster = make_cluster(fanout_app("parallel", None))
        done = run_one_request(sim, cluster)
        assert cluster.instances["l"].requests_completed == 1
        assert cluster.instances["r"].requests_completed == 1

    def test_sequential_conn_wait_accumulates(self, sim, make_cluster):
        """With a pool of 1 on both edges, the second child call cannot
        overlap; conn wait stays within execTime."""
        cluster = make_cluster(fanout_app("sequential", 1))
        for i in range(4):
            cluster.client_send(i, lambda p: None)
        sim.run()
        rt = cluster.runtimes["root"]
        assert rt.total_conn_wait >= 0.0
        assert rt.total_exec_metric > 0.0  # never negative / degenerate


class TestHintPropagation:
    def test_upscale_hint_decrements_down_the_chain(self, sim, make_cluster):
        app = make_chain_app(4)
        cluster = make_cluster(app)
        # Stamp the root: TTL 2 should reach s1 (2) and s2 (1), not s3 (0).
        cluster.runtimes["s0"].stamp_upscale(ttl=2, duration=10.0)
        cluster.client_send(0, lambda p: None)
        sim.run()
        w1 = cluster.runtimes["s1"].collect()
        w2 = cluster.runtimes["s2"].collect()
        w3 = cluster.runtimes["s3"].collect()
        assert w1.upscale_hints == 1 and w1.max_hint_ttl == 2
        assert w2.upscale_hints == 1 and w2.max_hint_ttl == 1
        assert w3.upscale_hints == 0

    def test_no_hint_without_stamp(self, sim, make_cluster):
        cluster = make_cluster(make_chain_app(3))
        cluster.client_send(0, lambda p: None)
        sim.run()
        for n in ("s0", "s1", "s2"):
            assert cluster.runtimes[n].collect().upscale_hints == 0

    def test_start_time_propagates_unchanged(self, sim, make_cluster):
        seen = []
        cluster = make_cluster(make_chain_app(3))
        for node in cluster.nodes:
            node.add_rx_hook(lambda p: seen.append(p.start_time))
        cluster.client_send(0, lambda p: None)
        sim.run()
        assert len(set(seen)) == 1  # one job, one start_time everywhere
