"""Unit tests for the replica/LB substrate: naming, placement expansion,
policy registry, cluster replica API, and the network's virtual-endpoint
resolution seam."""

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.loadbalancer import (
    DOWN,
    DRAINING,
    READY,
    WARMING,
    ConsistentHashPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    make_policy,
    replica_name,
    service_of_name,
)
from repro.cluster.placement import expand_depths, expand_replicas
from tests.conftest import drive_cluster, make_chain_app


class TestNaming:
    def test_replica_zero_keeps_the_bare_service_name(self):
        assert replica_name("geo", 0) == "geo"
        assert replica_name("geo", 2) == "geo@2"

    def test_service_of_name_round_trips(self):
        for svc in ("geo", "rate", "user-store"):
            for k in range(4):
                assert service_of_name(replica_name(svc, k)) == svc

    def test_non_replica_suffixes_pass_through(self):
        # "@" followed by a non-index is part of the service name.
        assert service_of_name("mail@host") == "mail@host"
        assert service_of_name("plain") == "plain"


class TestPlacementExpansion:
    def test_identity_at_one_replica(self):
        names = ["a", "b", "c"]
        assert expand_replicas(names, 1) == names
        depths = {"a": 0, "b": 1}
        assert expand_depths(depths, 1) == depths

    def test_replicas_expand_in_service_major_order(self):
        assert expand_replicas(["a", "b"], 3) == [
            "a", "a@1", "a@2", "b", "b@1", "b@2",
        ]

    def test_replicas_inherit_their_service_depth(self):
        assert expand_depths({"a": 0, "b": 2}, 2) == {
            "a": 0, "a@1": 0, "b": 2, "b@1": 2,
        }

    def test_bad_replica_count_rejected(self):
        with pytest.raises(ValueError):
            expand_replicas(["a"], 0)


class TestPolicyRegistry:
    def test_make_policy_builds_each_registered_policy(self):
        assert isinstance(make_policy("round_robin"), RoundRobinPolicy)
        assert isinstance(make_policy("least_loaded"), LeastLoadedPolicy)
        assert isinstance(make_policy("consistent_hash"), ConsistentHashPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown lb policy"):
            make_policy("random")


class TestClusterConfigValidation:
    def test_bad_replica_count_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(replicas=0)

    def test_bad_lb_policy_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(replicas=2, lb_policy="random")


class TestUnarmedCluster:
    def test_replica_api_degrades_to_identity(self, small_cluster):
        assert small_cluster.replica_sets is None
        assert small_cluster.replicas_of("s1") == ["s1"]
        assert small_cluster.service_of("s1") == "s1"
        with pytest.raises(RuntimeError, match="replica-armed"):
            small_cluster.scale_out("s1")
        with pytest.raises(RuntimeError, match="replica-armed"):
            small_cluster.scale_in("s1")
        assert small_cluster.reap_draining() == 0


class TestArmedCluster:
    def test_construction_deploys_every_replica(self, make_cluster):
        cluster = make_cluster(make_chain_app(3), replicas=2)
        assert set(cluster.replica_sets) == {"s0", "s1", "s2"}
        assert cluster.replicas_of("s1") == ["s1", "s1@1"]
        assert cluster.service_of("s1@1") == "s1"
        assert "s1@1" in cluster.containers and "s1@1" in cluster.instances
        for rset in cluster.replica_sets.values():
            assert all(r.state == READY for r in rset.replicas)

    def test_local_downstream_lists_every_co_located_replica(self, make_cluster):
        cluster = make_cluster(make_chain_app(3), replicas=2)
        (view,) = cluster.node_views
        # Transitive downstream of the root, expanded per replica, in
        # stable service-major order.
        assert view.local_downstream("s0") == ["s1", "s1@1", "s2", "s2@1"]
        assert view.local_downstream("s0@1") == ["s1", "s1@1", "s2", "s2@1"]
        assert view.local_downstream("s2@1") == []

    def test_scale_lifecycle_out_drain_reap_revive(self, sim, make_cluster):
        cluster = make_cluster(
            make_chain_app(2, cores=2.0), cores_per_node=12.0, replicas=1
        )
        node = cluster.nodes[0]
        free0 = node.free_cores
        rset = cluster.replica_sets["s1"]

        # Launch: warming holds cores but is not READY yet.
        name = cluster.scale_out("s1", ready_delay=0.1)
        assert name == "s1@1"
        replica = rset.by_name(name)
        assert replica.state == WARMING
        assert node.free_cores == free0 - 2.0
        sim.run(until=0.2)
        assert replica.state == READY

        # Drain, then reap once idle past the grace period.
        assert cluster.scale_in("s1") == "s1@1"
        assert replica.state == DRAINING
        sim.run(until=0.2 + cluster.REAP_GRACE + 0.05)
        assert cluster.reap_draining() == 1
        assert replica.state == DOWN
        assert node.free_cores == free0  # cores returned to the budget
        assert cluster.allocations()["s1@1"] == 0.0

        # Scale-out again revives the reaped slot under the same name.
        assert cluster.scale_out("s1", ready_delay=0.1) == "s1@1"
        assert replica.state == WARMING
        assert node.free_cores == free0 - 2.0

    def test_scale_out_prefers_undraining_over_launch(self, make_cluster):
        cluster = make_cluster(make_chain_app(2), replicas=2)
        rset = cluster.replica_sets["s1"]
        assert cluster.scale_in("s1") == "s1@1"
        # The draining replica is still warm: scale-out reuses it
        # instantly instead of paying for a fresh launch.
        assert cluster.scale_out("s1", ready_delay=5.0) == "s1@1"
        assert rset.by_name("s1@1").state == READY
        assert len(rset.replicas) == 2

    def test_replica_zero_is_never_drained(self, make_cluster):
        cluster = make_cluster(make_chain_app(2), replicas=1)
        assert cluster.scale_in("s1") is None

    def test_scale_out_blocked_by_node_budget(self, make_cluster):
        # 2 services × 2.0 cores fill the node exactly: nothing fits.
        cluster = make_cluster(
            make_chain_app(2, cores=2.0), cores_per_node=4.0, replicas=1
        )
        assert cluster.scale_out("s1") is None
        assert cluster.replicas_of("s1") == ["s1"]

    def test_traffic_flows_through_replicas(self, sim, make_cluster):
        cluster = make_cluster(make_chain_app(2), replicas=2)
        client = drive_cluster(sim, cluster, rate=400.0, duration=0.3)
        assert client.stats.completed == client.stats.sent > 0
        rset = cluster.replica_sets["s1"]
        # Round-robin spread the mid-chain hops across both replicas.
        assert all(r.dispatched > 0 for r in rset.replicas)
        assert rset.dispatched == sum(r.dispatched for r in rset.replicas)

    def test_warming_replica_receives_no_traffic(self, sim, make_cluster):
        cluster = make_cluster(make_chain_app(2), replicas=1)
        name = cluster.scale_out("s1", ready_delay=60.0)  # warms forever
        drive_cluster(sim, cluster, rate=400.0, duration=0.3)
        warming = cluster.replica_sets["s1"].by_name(name)
        assert warming.state == WARMING
        assert warming.dispatched == 0
        assert warming.instance.requests_started == 0

    def test_no_ready_replica_discards_the_packet(self, sim, make_cluster):
        cluster = make_cluster(make_chain_app(2), replicas=1)
        rset = cluster.replica_sets["s0"]
        rset.replicas[0].state = WARMING  # ingress endpoint unavailable
        responses = []
        cluster.client_send(0, responses.append)
        sim.run()
        assert responses == []
        assert rset.unroutable == 1
        assert cluster.network.packets_unroutable == 1
