"""Unit tests for the RPC fabric."""

import pytest

from repro.cluster.frequency import DvfsModel
from repro.cluster.network import Network, NetworkConfig
from repro.cluster.node import Node
from repro.cluster.packet import REQUEST, RpcPacket


def mk_packet(src="a", dst="b", upscale=0):
    return RpcPacket(
        request_id=1, kind=REQUEST, src=src, dst=dst, start_time=0.0, upscale=upscale
    )


@pytest.fixture
def net(sim):
    return Network(sim, NetworkConfig(jitter=0.0))


@pytest.fixture
def two_nodes(sim, dvfs):
    return Node(sim, "n0", 8, dvfs), Node(sim, "n1", 8, dvfs)


class TestRouting:
    def test_delivers_to_registered_endpoint(self, sim, net, two_nodes):
        n0, _ = two_nodes
        inbox = []
        net.register("a", n0, inbox.append)
        net.register("b", n0, inbox.append)
        net.send(mk_packet())
        sim.run()
        assert len(inbox) == 1
        assert inbox[0].dst == "b"

    def test_unknown_destination_raises(self, net, two_nodes):
        net.register("a", two_nodes[0], lambda p: None)
        with pytest.raises(KeyError):
            net.send(mk_packet(dst="nope"))

    def test_unknown_source_raises(self, net, two_nodes):
        net.register("b", two_nodes[0], lambda p: None)
        with pytest.raises(KeyError):
            net.send(mk_packet(src="ghost"))

    def test_duplicate_registration_rejected(self, net, two_nodes):
        net.register("a", two_nodes[0], lambda p: None)
        with pytest.raises(ValueError):
            net.register("a", two_nodes[0], lambda p: None)

    def test_counters(self, sim, net, two_nodes):
        n0, _ = two_nodes
        net.register("a", n0, lambda p: None)
        net.register("b", n0, lambda p: None)
        net.send(mk_packet())
        assert net.packets_sent == 1
        sim.run()
        assert net.packets_delivered == 1


class TestLatency:
    def test_intra_node_cheaper_than_inter(self, sim, dvfs, two_nodes):
        cfg = NetworkConfig(intra_node_latency=5e-6, inter_node_latency=30e-6, jitter=0.0)
        net = Network(sim, cfg)
        n0, n1 = two_nodes
        net.register("a", n0, lambda p: None)
        net.register("b", n0, lambda p: None)
        net.register("c", n1, lambda p: None)
        assert net.latency("a", "b") == pytest.approx(5e-6)
        assert net.latency("a", "c") == pytest.approx(30e-6)

    def test_external_endpoint_is_remote(self, sim, net, two_nodes):
        n0, _ = two_nodes
        net.register("a", n0, lambda p: None)
        net.register("client", None, lambda p: None)
        assert net.latency("client", "a") == pytest.approx(
            net.config.inter_node_latency
        )

    def test_delivery_time_matches_latency(self, sim, net, two_nodes):
        n0, n1 = two_nodes
        times = []
        net.register("a", n0, lambda p: None)
        net.register("b", n1, lambda p: times.append(sim.now))
        net.send(mk_packet())
        sim.run()
        assert times == [pytest.approx(net.config.inter_node_latency)]

    def test_latency_surge_adds_delay(self, sim, net, two_nodes):
        n0, n1 = two_nodes
        times = []
        net.register("a", n0, lambda p: None)
        net.register("b", n1, lambda p: times.append(sim.now))
        net.add_latency_surge(0.0, 1.0, extra=0.005)
        net.send(mk_packet())
        sim.run(until=0.1)
        assert times == [pytest.approx(0.005 + net.config.inter_node_latency)]

    def test_latency_surge_window_respected(self, sim, net, two_nodes):
        n0, n1 = two_nodes
        times = []
        net.register("a", n0, lambda p: None)
        net.register("b", n1, lambda p: times.append(sim.now))
        net.add_latency_surge(0.5, 1.0, extra=0.005)
        sim.schedule(2.0, lambda: net.send(mk_packet()))
        sim.run()
        assert times == [pytest.approx(2.0 + net.config.inter_node_latency)]

    def test_invalid_surge_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_latency_surge(1.0, 0.5, extra=0.01)


class TestSurgeTimeline:
    @pytest.fixture
    def routed(self, sim, net, two_nodes):
        n0, n1 = two_nodes
        net.register("a", n0, lambda p: None)
        net.register("b", n1, lambda p: None)
        return net

    def _advance_to(self, sim, t):
        sim.schedule(t, lambda: None)
        sim.run()

    def test_surge_cost_drops_to_zero_after_end(self, sim, routed):
        routed.add_latency_surge(0.0, 1.0, extra=0.005)
        inter = routed.config.inter_node_latency
        assert routed.latency("a", "b") == pytest.approx(0.005 + inter)
        self._advance_to(sim, 2.0)
        assert routed.latency("a", "b") == pytest.approx(inter)

    def test_expired_surges_pruned_from_timeline(self, sim, routed):
        routed.add_latency_surge(0.0, 1.0, extra=0.005)
        routed.add_latency_surge(0.5, 1.5, extra=0.002)
        self._advance_to(sim, 2.0)
        routed.latency("a", "b")  # triggers the rescan/prune
        assert routed._surges == []

    def test_wholly_past_window_dropped_on_add(self, sim, routed):
        self._advance_to(sim, 5.0)
        routed.add_latency_surge(0.0, 1.0, extra=0.005)
        assert routed._surges == []
        assert routed.latency("a", "b") == pytest.approx(
            routed.config.inter_node_latency
        )

    def test_overlapping_surges_sum(self, sim, routed):
        routed.add_latency_surge(0.0, 2.0, extra=0.005)
        routed.add_latency_surge(0.0, 1.0, extra=0.002)
        assert routed.latency("a", "b") == pytest.approx(
            0.007 + routed.config.inter_node_latency
        )

    def test_adding_surge_invalidates_active_cache(self, sim, routed):
        inter = routed.config.inter_node_latency
        assert routed.latency("a", "b") == pytest.approx(inter)  # caches "no surge"
        routed.add_latency_surge(0.0, 1.0, extra=0.005)
        assert routed.latency("a", "b") == pytest.approx(0.005 + inter)

    def test_cache_expires_at_next_boundary(self, sim, routed):
        inter = routed.config.inter_node_latency
        routed.add_latency_surge(1.0, 2.0, extra=0.005)
        assert routed.latency("a", "b") == pytest.approx(inter)
        self._advance_to(sim, 1.5)
        assert routed.latency("a", "b") == pytest.approx(0.005 + inter)


class TestJitterBatching:
    def test_batched_stream_matches_per_call_draws(self, sim, dvfs, two_nodes):
        import numpy as np

        from repro.cluster.network import NetworkConfig

        cfg = NetworkConfig(intra_node_latency=5e-6, jitter=0.1)
        net = Network(sim, cfg, np.random.default_rng(7))
        n0, _ = two_nodes
        net.register("a", n0, lambda p: None)
        net.register("b", n0, lambda p: None)
        got = [net.latency("a", "b") for _ in range(5)]
        ref_rng = np.random.default_rng(7)
        want = [5e-6 * (1.0 + float(ref_rng.random()) * 0.1) for _ in range(5)]
        assert got == want  # bit-identical, not approx


class TestRxHooks:
    def test_hooks_run_before_handler(self, sim, net, two_nodes):
        n0, _ = two_nodes
        order = []
        n0.add_rx_hook(lambda p: order.append("hook"))
        net.register("a", n0, lambda p: None)
        net.register("b", n0, lambda p: order.append("handler"))
        net.send(mk_packet())
        sim.run()
        assert order == ["hook", "handler"]

    def test_hook_cost_added_to_latency(self, sim, dvfs, two_nodes):
        cfg = NetworkConfig(intra_node_latency=5e-6, jitter=0.0)
        net = Network(sim, cfg)
        n0, _ = two_nodes
        n0.add_rx_hook(lambda p: None, cost=0.26e-6)
        net.register("a", n0, lambda p: None)
        net.register("b", n0, lambda p: None)
        assert net.latency("a", "b") == pytest.approx(5e-6 + 0.26e-6)

    def test_external_endpoints_skip_hooks(self, sim, net, two_nodes):
        n0, _ = two_nodes
        hooked = []
        n0.add_rx_hook(hooked.append)
        net.register("a", n0, lambda p: None)
        net.register("client", None, lambda p: None)
        net.send(mk_packet(src="a", dst="client"))
        sim.run()
        assert hooked == []
