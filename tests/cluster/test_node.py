"""Unit tests for nodes: budgets and hooks."""

import pytest

from repro.cluster.container import Container
from repro.cluster.node import Node


@pytest.fixture
def node(sim, dvfs):
    return Node(sim, "n0", 8.0, dvfs)


def add(node, name, cores):
    c = Container(node.sim, name, node.dvfs, cores=cores)
    node.add_container(c)
    return c


class TestBudget:
    def test_allocation_accounting(self, node):
        add(node, "a", 2.0)
        add(node, "b", 3.0)
        assert node.allocated == 5.0
        assert node.free_cores == 3.0

    def test_adding_over_budget_rejected(self, node):
        add(node, "a", 6.0)
        with pytest.raises(ValueError):
            add(node, "b", 3.0)

    def test_set_cores_within_budget(self, node):
        add(node, "a", 2.0)
        node.set_cores("a", 7.0)
        assert node.containers["a"].cores == 7.0

    def test_set_cores_over_budget_rejected(self, node):
        add(node, "a", 2.0)
        add(node, "b", 2.0)
        with pytest.raises(ValueError):
            node.set_cores("a", 7.0)

    def test_can_grow(self, node):
        add(node, "a", 2.0)
        assert node.can_grow("a", 6.0)
        assert not node.can_grow("a", 6.5)

    def test_can_grow_unknown_container(self, node):
        with pytest.raises(KeyError):
            node.can_grow("ghost", 1.0)

    def test_duplicate_container_rejected(self, node):
        add(node, "a", 1.0)
        with pytest.raises(ValueError):
            add(node, "a", 1.0)

    def test_container_cannot_be_placed_twice(self, sim, dvfs, node):
        c = add(node, "a", 1.0)
        other = Node(sim, "n1", 8.0, dvfs)
        with pytest.raises(ValueError):
            other.add_container(c)

    def test_invalid_node_cores_rejected(self, sim, dvfs):
        with pytest.raises(ValueError):
            Node(sim, "n", 0.0, dvfs)


class TestHooks:
    def test_hooks_invoked_in_order(self, node):
        calls = []
        node.add_rx_hook(lambda p: calls.append(1))
        node.add_rx_hook(lambda p: calls.append(2))
        node.on_packet(object())
        assert calls == [1, 2]

    def test_rx_overhead_sums_costs(self, node):
        node.add_rx_hook(lambda p: None, cost=0.26e-6)
        node.add_rx_hook(lambda p: None, cost=0.1e-6)
        assert node.rx_overhead == pytest.approx(0.36e-6)

    def test_remove_hook(self, node):
        calls = []
        hook = lambda p: calls.append(1)
        node.add_rx_hook(hook, cost=1e-6)
        node.remove_rx_hook(hook)
        node.on_packet(object())
        assert calls == []
        assert node.rx_overhead == 0.0

    def test_negative_cost_rejected(self, node):
        with pytest.raises(ValueError):
            node.add_rx_hook(lambda p: None, cost=-1.0)
