"""Unit tests for RPC packets and the Fig. 8 metadata rules."""

import dataclasses

from repro.cluster.packet import REQUEST, RESPONSE, RpcPacket


def mk(upscale=0, start_time=1.25):
    return RpcPacket(
        request_id=7,
        kind=REQUEST,
        src="a",
        dst="b",
        start_time=start_time,
        upscale=upscale,
    )


class TestForkDownstream:
    def test_start_time_propagates_unchanged(self):
        pkt = mk(start_time=3.5)
        child = pkt.fork_downstream(dst="c", src="b", upscale=0)
        assert child.start_time == 3.5
        assert child.request_id == 7
        assert child.kind == REQUEST
        assert child.src == "b" and child.dst == "c"

    def test_upscale_set_by_caller(self):
        child = mk().fork_downstream(dst="c", src="b", upscale=2)
        assert child.upscale == 2

    def test_context_not_inherited_downstream(self):
        pkt = mk()
        pkt.context = object()
        child = pkt.fork_downstream(dst="c", src="b", upscale=0)
        assert child.context is None


class TestMakeResponse:
    def test_response_routes_back_to_sender(self):
        pkt = mk()
        resp = pkt.make_response(src="b")
        assert resp.kind == RESPONSE
        assert resp.dst == "a"
        assert resp.src == "b"

    def test_response_preserves_context_and_start_time(self):
        pkt = mk(start_time=9.0)
        marker = object()
        pkt.context = marker
        resp = pkt.make_response(src="b")
        assert resp.context is marker
        assert resp.start_time == 9.0

    def test_response_carries_no_upscale(self):
        resp = mk(upscale=3).make_response(src="b")
        assert resp.upscale == 0


class TestCloneRetry:
    def test_error_flag_propagates(self):
        # Regression: the hand-rolled clone used to rebuild the packet
        # field-by-field and silently dropped ``error``, so a retried
        # attempt of an already-failed request forgot its failure.
        pkt = mk()
        pkt.error = True
        clone = pkt.clone_retry()
        assert clone.error is True

    def test_fresh_send_time_and_context(self):
        pkt = mk()
        pkt.send_time = 4.0
        pkt.context = object()
        clone = pkt.clone_retry()
        assert clone is not pkt
        assert clone.send_time == 0.0
        assert clone.context is None


class TestFieldLedger:
    """Every RpcPacket field must be *classified* by each clone helper.

    The helpers are built on :func:`dataclasses.replace`, so a field they
    don't name propagates verbatim.  This ledger records, per helper,
    exactly which fields are deliberately reset; everything else must
    come through unchanged.  Adding a field to ``RpcPacket`` fails this
    test until the new field is classified for all three helpers —
    silently-dropped metadata (the ``clone_retry``/``error`` bug) cannot
    recur.
    """

    #: Distinctive non-default source values, one per init field.
    SOURCE = dict(
        request_id=91,
        kind=REQUEST,
        src="caller",
        dst="callee",
        start_time=6.5,
        upscale=4,
        send_time=2.25,
        error=True,
        context=("ctx-marker",),
    )

    #: helper -> {field: expected value after the call}; unnamed fields
    #: must equal the source packet's.
    RESET = {
        "fork_downstream": dict(
            kind=REQUEST, src="callee", dst="next", upscale=1,
            send_time=0.0, error=False, context=None, _pool_state=0,
        ),
        "make_response": dict(
            kind=RESPONSE, src="callee", dst="caller", upscale=0,
            send_time=0.0, error=True, _pool_state=0,
        ),
        "clone_retry": dict(send_time=0.0, context=None, _pool_state=0),
    }

    CALLS = {
        "fork_downstream": lambda p: p.fork_downstream(
            dst="next", src="callee", upscale=1
        ),
        "make_response": lambda p: p.make_response(src="callee", error=True),
        "clone_retry": lambda p: p.clone_retry(),
    }

    def source_packet(self):
        return RpcPacket(**self.SOURCE)

    def test_ledger_classifies_every_field(self):
        field_names = {f.name for f in dataclasses.fields(RpcPacket)}
        for helper, resets in self.RESET.items():
            unknown = set(resets) - field_names
            assert not unknown, f"{helper} ledger names unknown fields {unknown}"
        # The ledger only needs resets; propagated fields are implied.
        # But the *source* must exercise a distinctive value for every
        # init field so propagation is actually observable.
        init_fields = {f.name for f in dataclasses.fields(RpcPacket) if f.init}
        assert set(self.SOURCE) == init_fields

    def test_every_field_propagated_or_deliberately_reset(self):
        for helper, call in self.CALLS.items():
            src = self.source_packet()
            out = call(src)
            resets = self.RESET[helper]
            for f in dataclasses.fields(RpcPacket):
                got = getattr(out, f.name)
                if f.name in resets:
                    assert got == resets[f.name], (
                        f"{helper}: field {f.name!r} should be reset to "
                        f"{resets[f.name]!r}, got {got!r}"
                    )
                else:
                    assert got == getattr(src, f.name), (
                        f"{helper}: field {f.name!r} was dropped instead of "
                        f"propagated (got {got!r}); classify it in RESET if "
                        f"the reset is intentional"
                    )
