"""Unit tests for RPC packets and the Fig. 8 metadata rules."""

from repro.cluster.packet import REQUEST, RESPONSE, RpcPacket


def mk(upscale=0, start_time=1.25):
    return RpcPacket(
        request_id=7,
        kind=REQUEST,
        src="a",
        dst="b",
        start_time=start_time,
        upscale=upscale,
    )


class TestForkDownstream:
    def test_start_time_propagates_unchanged(self):
        pkt = mk(start_time=3.5)
        child = pkt.fork_downstream(dst="c", src="b", upscale=0)
        assert child.start_time == 3.5
        assert child.request_id == 7
        assert child.kind == REQUEST
        assert child.src == "b" and child.dst == "c"

    def test_upscale_set_by_caller(self):
        child = mk().fork_downstream(dst="c", src="b", upscale=2)
        assert child.upscale == 2

    def test_context_not_inherited_downstream(self):
        pkt = mk()
        pkt.context = object()
        child = pkt.fork_downstream(dst="c", src="b", upscale=0)
        assert child.context is None


class TestMakeResponse:
    def test_response_routes_back_to_sender(self):
        pkt = mk()
        resp = pkt.make_response(src="b")
        assert resp.kind == RESPONSE
        assert resp.dst == "a"
        assert resp.src == "b"

    def test_response_preserves_context_and_start_time(self):
        pkt = mk(start_time=9.0)
        marker = object()
        pkt.context = marker
        resp = pkt.make_response(src="b")
        assert resp.context is marker
        assert resp.start_time == 9.0

    def test_response_carries_no_upscale(self):
        resp = mk(upscale=3).make_response(src="b")
        assert resp.upscale == 0
