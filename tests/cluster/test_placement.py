"""Unit tests for placement policies."""

import pytest

from repro.cluster.placement import by_depth, pack_first, round_robin


class TestPlacement:
    def test_round_robin_spreads(self):
        p = round_robin(["a", "b", "c", "d"], 2)
        assert p == {"a": 0, "b": 1, "c": 0, "d": 1}

    def test_round_robin_single_node(self):
        p = round_robin(["a", "b"], 1)
        assert set(p.values()) == {0}

    def test_pack_first_all_on_node0(self):
        p = pack_first(["a", "b", "c"], 4)
        assert set(p.values()) == {0}

    def test_by_depth_alternates_stages(self):
        depths = {"root": 1, "mid": 2, "leaf": 3}
        p = by_depth(depths, 2)
        assert p["root"] != p["mid"]
        assert p["mid"] != p["leaf"]

    def test_by_depth_crosses_every_edge(self):
        depths = {f"s{i}": i + 1 for i in range(6)}
        p = by_depth(depths, 2)
        for i in range(5):
            assert p[f"s{i}"] != p[f"s{i+1}"]

    @pytest.mark.parametrize("fn", [round_robin, pack_first])
    def test_zero_nodes_rejected(self, fn):
        with pytest.raises(ValueError):
            fn(["a"], 0)

    def test_by_depth_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            by_depth({"a": 1}, 0)
