"""Unit tests for the hot-path recyclers: PacketPool and the engine's
EventHandle free list.

The pool's safety story has three legs, each pinned here: a pooled
packet released twice *always* raises (even outside debug mode), a
released packet in debug mode is poisoned so any later use raises or
misroutes loudly, and the engine only ever recycles a handle when
``sys.getrefcount`` proves nobody else still holds it.
"""

import math

import pytest

from repro.cluster.packet import (
    REQUEST,
    RESPONSE,
    PacketPool,
    PoolError,
    RpcPacket,
)
from repro.sim.engine import Simulator


def live_pool(**kw):
    kw.setdefault("enabled", True)
    kw.setdefault("debug", False)
    return PacketPool(**kw)


class TestAcquireRelease:
    def test_acquire_constructs_when_free_list_empty(self):
        pool = live_pool()
        pkt = pool.acquire(1, REQUEST, "a", "b", 0.5)
        assert isinstance(pkt, RpcPacket)
        assert pool.constructed == 1
        assert pool.recycled == 0

    def test_release_then_acquire_reuses_the_same_object(self):
        pool = live_pool()
        first = pool.acquire(1, REQUEST, "a", "b", 0.5, 3)
        pool.release(first)
        second = pool.acquire(2, RESPONSE, "c", "d", 1.5)
        assert second is first
        assert pool.recycled == 1
        # Every field was overwritten by the new acquisition.
        assert second.request_id == 2
        assert second.kind == RESPONSE
        assert second.src == "c" and second.dst == "d"
        assert second.start_time == 1.5
        assert second.upscale == 0
        assert second.send_time == 0.0
        assert second.error is False
        assert second.context is None

    def test_release_of_directly_constructed_packet_is_noop(self):
        pool = live_pool()
        pkt = RpcPacket(request_id=1, kind=REQUEST, src="a", dst="b", start_time=0.0)
        pool.release(pkt)
        pool.release(pkt)  # still a no-op, not a double release
        assert pool.free == 0
        assert pool.released == 0

    def test_double_release_raises_even_without_debug(self):
        pool = live_pool()
        pkt = pool.acquire(1, REQUEST, "a", "b", 0.0)
        pool.release(pkt)
        with pytest.raises(PoolError, match="double release"):
            pool.release(pkt)

    def test_release_drops_the_context_reference(self):
        pool = live_pool()
        pkt = pool.acquire(1, REQUEST, "a", "b", 0.0, context=lambda p: None)
        pool.release(pkt)
        assert not callable(pkt.context) or pkt.context.__name__ == "_poison_context"

    def test_disabled_pool_never_recycles(self):
        pool = PacketPool(enabled=False, debug=False)
        pkt = pool.acquire(1, REQUEST, "a", "b", 0.0)
        pool.release(pkt)  # unmanaged: no-op
        other = pool.acquire(2, REQUEST, "a", "b", 0.0)
        assert other is not pkt
        assert pool.recycled == 0
        assert pool.constructed == 2

    def test_stats_snapshot(self):
        pool = live_pool()
        pkt = pool.acquire(1, REQUEST, "a", "b", 0.0)
        pool.release(pkt)
        pool.acquire(2, REQUEST, "a", "b", 0.0)
        assert pool.stats() == {
            "constructed": 1,
            "recycled": 1,
            "released": 1,
            "free": 0,
        }


class TestPoisonDebugMode:
    def test_use_after_release_context_call_raises(self):
        pool = live_pool(debug=True)
        pkt = pool.acquire(1, RESPONSE, "a", "client", 0.0, context=lambda p: None)
        pool.release(pkt)
        with pytest.raises(PoolError, match="use-after-release"):
            pkt.context(pkt)  # a stale continuation firing

    def test_released_packet_fields_are_poisoned(self):
        pool = live_pool(debug=True)
        pkt = pool.acquire(1, REQUEST, "a", "b", 2.0)
        pool.release(pkt)
        # Stale routing on the poisoned packet cannot silently succeed:
        # the kind matches neither REQUEST nor RESPONSE and the names
        # match no container, so any dispatch on it fails loudly.
        assert pkt.kind not in (REQUEST, RESPONSE)
        assert pkt.src == pkt.kind and pkt.dst == pkt.kind
        assert math.isnan(pkt.start_time) and math.isnan(pkt.send_time)

    def test_reacquired_packet_is_fully_unpoisoned(self):
        pool = live_pool(debug=True)
        pkt = pool.acquire(1, REQUEST, "a", "b", 2.0)
        pool.release(pkt)
        again = pool.acquire(2, REQUEST, "x", "y", 3.0)
        assert again is pkt
        assert again.kind == REQUEST
        assert again.start_time == 3.0 and again.send_time == 0.0
        assert again.context is None


class TestPooledBuilders:
    """The pooled fork/response builders must match the RpcPacket methods
    field-for-field (the identity suite pins the end-to-end claim)."""

    def mk(self):
        pkt = RpcPacket(
            request_id=7, kind=REQUEST, src="client", dst="s0",
            start_time=1.25, upscale=2,
        )
        pkt.context = object()
        return pkt

    def test_fork_downstream_matches_method(self):
        pkt = self.mk()
        pool = live_pool()
        pooled = pool.fork_downstream(pkt, dst="s1", src="s0", upscale=1)
        plain = pkt.fork_downstream(dst="s1", src="s0", upscale=1)
        assert pooled == plain

    def test_make_response_matches_method(self):
        pkt = self.mk()
        pool = live_pool()
        pooled = pool.make_response(pkt, src="s0", error=True)
        plain = pkt.make_response(src="s0", error=True)
        assert pooled == plain
        assert pooled.context is pkt.context


class TestEnvSwitches:
    def test_pool_disabled_via_env_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "0")
        pool = PacketPool()
        assert not pool.enabled
        pkt = pool.acquire(1, REQUEST, "a", "b", 0.0)
        pool.release(pkt)
        assert pool.free == 0

    def test_debug_enabled_via_env_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_DEBUG", "1")
        pool = PacketPool()
        assert pool.enabled and pool.debug

    def test_default_is_pooled_non_debug(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL", raising=False)
        monkeypatch.delenv("REPRO_POOL_DEBUG", raising=False)
        pool = PacketPool()
        assert pool.enabled and not pool.debug


class TestHandleRecycling:
    """Engine EventHandle free list, guarded by ``sys.getrefcount``."""

    def test_chain_run_recycles_instead_of_constructing(self):
        sim = Simulator()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert sim.events_fired == 10_000
        # The chain reuses one handle over and over; a tiny constant
        # number of fresh allocations (first link + heap warm-up), the
        # rest served from the free list.
        assert sim.handles_constructed <= 4
        assert sim.handles_recycled >= 9_000

    def test_retained_handle_is_never_recycled(self):
        sim = Simulator()
        kept = sim.schedule(0.0, lambda: None)
        sim.run()
        assert kept.fn is None  # fired
        fresh = sim.schedule(0.0, lambda: None)
        # Our live reference was visible to the refcount guard, so the
        # engine allocated a new handle rather than reusing ``kept``.
        assert fresh is not kept
        assert sim.handles_recycled == 0

    def test_unretained_fired_handle_is_recycled(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)  # handle reference dropped here
        sim.run()
        again = sim.schedule(0.0, lambda: None)
        assert sim.handles_recycled == 1
        assert again.seq == 1  # seq keeps counting across reuse
        sim.run()

    def test_cancelled_dropped_handle_is_recycled(self):
        sim = Simulator()
        decoy = sim.schedule(1.0, lambda: None)
        decoy.cancel()
        del decoy
        sim.schedule(2.0, lambda: None)
        sim.run()  # pops the cancelled entry, free-lists it
        sim.schedule(0.0, lambda: None)
        assert sim.handles_recycled >= 1
        sim.run()

    def test_retained_cancelled_handle_is_never_recycled(self):
        sim = Simulator()
        kept = sim.schedule(1.0, lambda: None)
        kept.cancel()
        sim.run()  # drops the cancelled entry; our reference blocks reuse
        fresh = sim.schedule(0.0, lambda: None)
        assert fresh is not kept
        assert sim.handles_recycled == 0

    def test_env_kill_switch_disables_recycling(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "0")
        sim = Simulator()
        remaining = [100]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert sim.handles_recycled == 0
        assert sim.handles_constructed == 100

    def test_step_recycles_like_run(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        assert sim.step()
        sim.schedule(0.0, lambda: None)
        assert sim.handles_recycled == 1
        assert sim.step()
