"""Unit tests for container runtime metrics (Eqs. 2–3 + hint relay)."""

import pytest

from repro.cluster.runtime import ContainerRuntime


@pytest.fixture
def rt(sim):
    return ContainerRuntime(sim, "svc")


class TestMetrics:
    def test_exec_metric_is_exec_minus_wait(self, sim, rt):
        rt.on_complete(exec_time=10e-3, conn_wait=4e-3)
        w = rt.collect()
        assert w.avg_exec_time == pytest.approx(10e-3)
        assert w.avg_conn_wait == pytest.approx(4e-3)
        assert w.avg_exec_metric == pytest.approx(6e-3)

    def test_queue_buildup_ratio(self, sim, rt):
        rt.on_complete(10e-3, 5e-3)
        rt.on_complete(10e-3, 5e-3)
        w = rt.collect()
        assert w.queue_buildup == pytest.approx(2.0)

    def test_no_wait_means_unit_queue_buildup(self, sim, rt):
        """Paper: with unlimited threadpools execMetric == execTime."""
        rt.on_complete(5e-3, 0.0)
        w = rt.collect()
        assert w.queue_buildup == pytest.approx(1.0)
        assert w.avg_exec_metric == w.avg_exec_time

    def test_empty_window_defaults(self, sim, rt):
        w = rt.collect()
        assert w.count == 0
        assert w.queue_buildup == 1.0
        assert w.avg_exec_time == 0.0

    def test_window_resets_after_collect(self, sim, rt):
        rt.on_complete(10e-3, 0.0)
        rt.collect()
        w = rt.collect()
        assert w.count == 0

    def test_window_boundaries(self, sim, rt):
        sim.schedule(1.0, rt.on_complete, 1e-3, 0.0)
        sim.run()
        w = rt.collect()
        assert w.t_start == 0.0
        assert w.t_end == pytest.approx(1.0)
        assert w.throughput == pytest.approx(1.0)

    def test_wait_clamped_to_exec_time(self, sim, rt):
        rt.on_complete(5e-3, 6e-3)  # float slop guard
        w = rt.collect()
        assert w.avg_exec_metric >= 0.0

    def test_negative_values_rejected(self, sim, rt):
        with pytest.raises(ValueError):
            rt.on_complete(-1.0, 0.0)
        with pytest.raises(ValueError):
            rt.on_complete(1.0, -1.0)

    def test_lifetime_totals(self, sim, rt):
        rt.on_complete(10e-3, 2e-3)
        rt.collect()
        rt.on_complete(20e-3, 4e-3)
        assert rt.total_count == 2
        assert rt.total_exec_time == pytest.approx(30e-3)
        assert rt.total_conn_wait == pytest.approx(6e-3)

    def test_time_from_start_average(self, sim, rt):
        rt.on_arrival(3e-3, 0)
        rt.on_arrival(5e-3, 0)
        rt.on_complete(1e-3, 0.0)
        rt.on_complete(1e-3, 0.0)
        w = rt.collect()
        assert w.avg_time_from_start == pytest.approx(4e-3)
        assert rt.total_time_from_start == pytest.approx(8e-3)

    def test_trace_records_kept_when_enabled(self, sim):
        rt = ContainerRuntime(sim, "svc", trace=True)
        rt.on_complete(1e-3, 0.0)
        assert rt.records == [(0.0, 1e-3, 0.0)]


class TestHintRelay:
    def test_incoming_hints_counted(self, sim, rt):
        rt.on_arrival(1e-3, 0)
        rt.on_arrival(1e-3, 2)
        rt.on_arrival(1e-3, 3)
        w = rt.collect()
        assert w.upscale_hints == 2
        assert w.max_hint_ttl == 3

    def test_propagation_decrements(self, sim, rt):
        assert rt.outgoing_upscale(3) == 2
        assert rt.outgoing_upscale(1) == 0
        assert rt.outgoing_upscale(0) == 0

    def test_stamp_overrides_when_larger(self, sim, rt):
        rt.stamp_upscale(ttl=2, duration=1.0)
        assert rt.stamp_active
        assert rt.outgoing_upscale(0) == 2
        assert rt.outgoing_upscale(5) == 4  # propagated hint wins

    def test_stamp_expires(self, sim, rt):
        rt.stamp_upscale(ttl=2, duration=0.5)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert not rt.stamp_active
        assert rt.outgoing_upscale(0) == 0

    def test_invalid_stamp_rejected(self, sim, rt):
        with pytest.raises(ValueError):
            rt.stamp_upscale(-1, 1.0)
        with pytest.raises(ValueError):
            rt.stamp_upscale(1, -1.0)
