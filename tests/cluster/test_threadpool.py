"""Unit tests for connection pools (both threading models)."""

import pytest

from repro.cluster.threadpool import ConnectionPool


class TestFixedPool:
    def test_acquire_within_capacity_immediate(self, sim):
        pool = ConnectionPool(sim, 2)
        waits = []
        pool.acquire(waits.append)
        pool.acquire(waits.append)
        assert waits == [0.0, 0.0]
        assert pool.in_flight == 2
        assert pool.free == 0

    def test_excess_acquire_queues_fifo(self, sim):
        pool = ConnectionPool(sim, 1)
        order = []
        pool.acquire(lambda w: order.append(("a", w)))
        pool.acquire(lambda w: order.append(("b", w)))
        pool.acquire(lambda w: order.append(("c", w)))
        assert order == [("a", 0.0)]
        assert pool.queue_len == 2
        pool.release()
        pool.release()
        assert [x[0] for x in order] == ["a", "b", "c"]

    def test_wait_time_measured(self, sim):
        pool = ConnectionPool(sim, 1)
        waits = {}
        pool.acquire(lambda w: waits.setdefault("a", w))
        pool.acquire(lambda w: waits.setdefault("b", w))
        sim.schedule(0.75, pool.release)
        sim.run()
        assert waits["b"] == pytest.approx(0.75)

    def test_handoff_keeps_in_flight_constant(self, sim):
        pool = ConnectionPool(sim, 1)
        pool.acquire(lambda w: None)
        pool.acquire(lambda w: None)
        pool.release()  # hands off to the waiter
        assert pool.in_flight == 1
        assert pool.queue_len == 0

    def test_release_idle_pool_raises(self, sim):
        pool = ConnectionPool(sim, 1)
        with pytest.raises(RuntimeError):
            pool.release()

    def test_statistics(self, sim):
        pool = ConnectionPool(sim, 1)
        for _ in range(3):
            pool.acquire(lambda w: None)
        assert pool.total_acquires == 3
        assert pool.total_waited == 2
        assert pool.max_queue_len == 2

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            ConnectionPool(sim, 0)


class TestPerRequest:
    def test_unbounded_concurrency(self, sim):
        pool = ConnectionPool(sim, None, setup_latency=0.0)
        waits = []
        for _ in range(100):
            pool.acquire(waits.append)
        assert waits == [0.0] * 100
        assert pool.queue_len == 0
        assert pool.is_per_request
        assert pool.free is None

    def test_setup_latency_delays_grant(self, sim):
        pool = ConnectionPool(sim, None, setup_latency=20e-6)
        granted = []
        pool.acquire(lambda w: granted.append(sim.now))
        assert granted == []  # not synchronous
        sim.run()
        assert granted == [pytest.approx(20e-6)]

    def test_setup_latency_not_counted_as_wait(self, sim):
        """Conn setup is a network cost, not implicit-queue time: with
        unlimited pools the paper requires execMetric == execTime."""
        pool = ConnectionPool(sim, None, setup_latency=20e-6)
        waits = []
        pool.acquire(waits.append)
        sim.run()
        assert waits == [0.0]

    def test_release_tracks_in_flight(self, sim):
        pool = ConnectionPool(sim, None, setup_latency=0.0)
        pool.acquire(lambda w: None)
        assert pool.in_flight == 1
        pool.release()
        assert pool.in_flight == 0

    def test_negative_setup_rejected(self, sim):
        with pytest.raises(ValueError):
            ConnectionPool(sim, None, setup_latency=-1.0)


class TestLittlesLaw:
    def test_pool_binds_when_in_flight_exceeds_capacity(self, sim):
        """Eq. 1 semantics: sustained in-flight > capacity ⇒ queueing."""
        pool = ConnectionPool(sim, 4)
        held = []

        def hold_for(duration):
            def granted(wait):
                held.append(wait)
                sim.schedule(duration, pool.release)

            pool.acquire(granted)

        # Offer 8 concurrent holds of 1s into a 4-pool.
        for _ in range(8):
            hold_for(1.0)
        sim.run()
        assert held[:4] == [0.0] * 4
        assert all(w == pytest.approx(1.0) for w in held[4:])
