"""Tests for the request-flow tracer."""

import pytest

from repro.cluster.tracing import RequestTracer
from tests.conftest import make_chain_app


@pytest.fixture
def traced(make_cluster):
    cluster = make_cluster(make_chain_app(3, work=1.0e6))
    tracer = RequestTracer(cluster)
    return cluster, tracer


class TestSpans:
    def test_one_span_per_container_visit(self, sim, traced):
        cluster, tracer = traced
        cluster.client_send(0, lambda p: None)
        sim.run()
        spans = tracer.spans(0)
        assert [s.container for s in spans] == ["s0", "s1", "s2"]
        assert all(s.t_complete is not None for s in spans)

    def test_span_nesting_times(self, sim, traced):
        cluster, tracer = traced
        cluster.client_send(0, lambda p: None)
        sim.run()
        spans = {s.container: s for s in tracer.spans(0)}
        # Parent spans wrap child spans in time.
        assert spans["s0"].t_receive <= spans["s1"].t_receive
        assert spans["s1"].t_complete <= spans["s0"].t_complete
        assert spans["s0"].duration >= spans["s1"].duration >= spans["s2"].duration

    def test_parent_links(self, sim, traced):
        cluster, tracer = traced
        cluster.client_send(0, lambda p: None)
        sim.run()
        spans = {s.container: s for s in tracer.spans(0)}
        assert spans["s0"].parent == "client"
        assert spans["s1"].parent == "s0"
        assert spans["s2"].parent == "s1"

    def test_max_requests_cap(self, sim, make_cluster):
        cluster = make_cluster(make_chain_app(2, work=0.5e6), cores_per_node=8)
        tracer = RequestTracer(cluster, max_requests=2)
        for i in range(5):
            cluster.client_send(i, lambda p: None)
        sim.run()
        assert tracer.traced_requests == 2


class TestAnalysis:
    def test_critical_path_covers_chain(self, sim, traced):
        cluster, tracer = traced
        cluster.client_send(0, lambda p: None)
        sim.run()
        path = tracer.critical_path(0)
        assert [c for c, _ in path] == ["s0", "s1", "s2"]
        assert all(t >= 0 for _, t in path)
        # Self-times sum to approximately the root span duration.
        root = next(s for s in tracer.spans(0) if s.container == "s0")
        assert sum(t for _, t in path) <= root.duration + 1e-9

    def test_summary_by_container(self, sim, traced):
        cluster, tracer = traced
        for i in range(3):
            cluster.client_send(i, lambda p: None)
        sim.run()
        summary = tracer.summary_by_container()
        assert set(summary) == {"s0", "s1", "s2"}
        for name, (count, mean_dur) in summary.items():
            assert count == 3
            assert mean_dur > 0

    def test_untraced_request_empty(self, traced):
        _, tracer = traced
        assert tracer.spans(99) == []
        assert tracer.critical_path(99) == []

    def test_critical_path_survives_very_deep_chains(self, traced):
        # Synthesize a chain far deeper than the recursion limit: the
        # iterative walk must neither blow the stack nor go quadratic.
        import sys

        from repro.cluster.tracing import Span

        _, tracer = traced
        depth = sys.getrecursionlimit() * 2
        parent = "client"
        for i in range(depth):
            name = f"svc{i}"
            tracer.store.ingest(
                Span(
                    request_id=7,
                    container=name,
                    t_receive=float(i),
                    t_complete=float(2 * depth - i),
                    parent=parent,
                )
            )
            parent = name
        path = tracer.critical_path(7)
        assert len(path) == depth
        assert path[0][0] == "svc0"
        assert path[-1][0] == f"svc{depth - 1}"
        assert all(t >= 0 for _, t in path)
