"""Shared fixtures: simulators, small clusters, and test apps."""

from __future__ import annotations

import os

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.frequency import DvfsModel
from repro.services.taskgraph import AppSpec, EdgeSpec, ServiceSpec, WorkDist
from repro.workload.arrivals import RateSchedule
from repro.workload.generator import OpenLoopClient

try:  # hypothesis is an optional test dependency
    from hypothesis import settings as _hyp_settings

    # CI runs derandomized so a red build is reproducible locally by
    # exporting HYPOTHESIS_PROFILE=ci; the default profile stays random.
    _hyp_settings.register_profile("ci", derandomize=True, deadline=None)
    _hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover
    pass


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(42)


@pytest.fixture
def dvfs() -> DvfsModel:
    return DvfsModel()


def make_chain_app(
    n: int = 3,
    *,
    work: float = 1.0e6,
    pool: int | None = 8,
    cores: float = 2.0,
    qos: float = 20e-3,
    deterministic: bool = True,
) -> AppSpec:
    """A small n-stage chain for substrate tests."""
    dist = "deterministic" if deterministic else "lognormal"
    services = []
    names = [f"s{i}" for i in range(n)]
    for i, name in enumerate(names):
        children = (EdgeSpec(names[i + 1], pool),) if i + 1 < n else ()
        services.append(
            ServiceSpec(
                name,
                pre_work=WorkDist(work, dist),
                children=children,
                initial_cores=cores,
            )
        )
    return AppSpec(
        name="test-chain",
        action=f"chain{n}",
        services=tuple(services),
        root=names[0],
        qos_target=qos,
    )


@pytest.fixture
def small_app() -> AppSpec:
    return make_chain_app()


@pytest.fixture
def make_cluster(sim: Simulator, rng: RngRegistry):
    """Factory for the ubiquitous "deploy this app on a small cluster"
    setup.  Single-node clusters default to packed placement (every
    container on one node), multi-node to round-robin — the two shapes
    virtually every substrate test wants.
    """

    def _make(
        app: AppSpec,
        *,
        cores_per_node: float = 12.0,
        n_nodes: int = 1,
        placement: str | None = None,
        **cfg_kwargs,
    ) -> Cluster:
        if placement is None:
            placement = "pack" if n_nodes == 1 else "round_robin"
        cfg = ClusterConfig(
            n_nodes=n_nodes,
            cores_per_node=cores_per_node,
            placement=placement,
            **cfg_kwargs,
        )
        return Cluster(sim, app, cfg, rng)

    return _make


@pytest.fixture
def small_cluster(make_cluster, small_app: AppSpec) -> Cluster:
    return make_cluster(small_app)


def drive_cluster(
    sim: Simulator,
    cluster: Cluster,
    *,
    rate: float = 300.0,
    duration: float = 0.5,
    run_until: float | None = None,
    controller=None,
) -> OpenLoopClient:
    """Seeded open-loop traffic against a deployed cluster, run to a
    drain (or to ``run_until``).  Returns the client for its stats.
    An attached-but-unstarted controller is started alongside the
    client."""
    client = OpenLoopClient(sim, cluster, RateSchedule(rate), duration=duration)
    client.begin()
    if controller is not None:
        controller.start()
    sim.run(until=duration + 0.5 if run_until is None else run_until)
    return client


@pytest.fixture(autouse=True)
def _clear_profile_cache():
    """Profiling memoization must not leak between tests."""
    from repro.experiments.harness import clear_profile_cache

    clear_profile_cache()
    yield
    clear_profile_cache()
