"""Shared fixtures: simulators, small clusters, and test apps."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.frequency import DvfsModel
from repro.services.taskgraph import AppSpec, EdgeSpec, ServiceSpec, WorkDist


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(42)


@pytest.fixture
def dvfs() -> DvfsModel:
    return DvfsModel()


def make_chain_app(
    n: int = 3,
    *,
    work: float = 1.0e6,
    pool: int | None = 8,
    cores: float = 2.0,
    qos: float = 20e-3,
    deterministic: bool = True,
) -> AppSpec:
    """A small n-stage chain for substrate tests."""
    dist = "deterministic" if deterministic else "lognormal"
    services = []
    names = [f"s{i}" for i in range(n)]
    for i, name in enumerate(names):
        children = (EdgeSpec(names[i + 1], pool),) if i + 1 < n else ()
        services.append(
            ServiceSpec(
                name,
                pre_work=WorkDist(work, dist),
                children=children,
                initial_cores=cores,
            )
        )
    return AppSpec(
        name="test-chain",
        action=f"chain{n}",
        services=tuple(services),
        root=names[0],
        qos_target=qos,
    )


@pytest.fixture
def small_app() -> AppSpec:
    return make_chain_app()


@pytest.fixture
def small_cluster(sim: Simulator, rng: RngRegistry, small_app: AppSpec) -> Cluster:
    cfg = ClusterConfig(n_nodes=1, cores_per_node=12.0, placement="pack")
    return Cluster(sim, small_app, cfg, rng)


@pytest.fixture(autouse=True)
def _clear_profile_cache():
    """Profiling memoization must not leak between tests."""
    from repro.experiments.harness import clear_profile_cache

    clear_profile_cache()
    yield
    clear_profile_cache()
