"""Helpers for controller behavior tests: small, fast experiments."""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentConfig
from tests.conftest import make_chain_app


def mini_config(controller_factory, **overrides) -> ExperimentConfig:
    """A fast 2-service experiment exercising a controller end-to-end.

    Work per stage is 1 ms at 1.6 GHz, base rate 800/s on 1.5 cores
    (ρ = 0.33 each, spare headroom on a 10-core node), one 1.75× surge.
    """
    app = make_chain_app(2, work=1.6e6, pool=6, cores=1.5, deterministic=False)
    defaults = dict(
        workload="mini-chain",
        app=app,
        base_rate=800.0,
        controller_factory=controller_factory,
        spike_magnitude=2.5,
        spike_len=1.5,
        spike_period=100.0,
        spike_offset=0.5,
        duration=4.0,
        warmup=1.5,
        cores_per_node=10.0,
        profile_duration=1.5,
        drain=1.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
