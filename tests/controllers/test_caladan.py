"""Behavior tests for the CaladanAlgo baseline."""

import pytest

from repro.controllers.caladan import CaladanController, CaladanParams
from repro.experiments.harness import run_experiment
from tests.conftest import make_chain_app
from tests.controllers.conftest import mini_config


class TestParams:
    def test_hyperthread_granularity(self):
        assert CaladanParams().core_step == 0.5  # §V

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CaladanParams(interval=0.0)
        with pytest.raises(ValueError):
            CaladanParams(congestion_qb=0.9)
        with pytest.raises(ValueError):
            CaladanParams(yield_patience=0)


class TestBehavior:
    def test_grants_on_queue_buildup(self):
        """Fixed pools ⇒ queueBuildup signal ⇒ Caladan grants cores."""
        res = run_experiment(mini_config(CaladanController))
        assert res.controller_stats.upscale_core_actions > 0

    def test_blind_to_conn_per_request_surges(self):
        """The paper's key Caladan failure: no implicit queues ⇒
        queueBuildup ≈ 1 ⇒ no upscaling at all during the surge."""
        app = make_chain_app(2, work=1.6e6, pool=None, cores=1.5, deterministic=False)
        cfg = mini_config(CaladanController, app=app, workload="mini-cpr")
        res = run_experiment(cfg)
        assert res.controller_stats.upscale_core_actions == 0
        assert res.violation_volume > 0  # the surge hurt and nothing reacted

    def test_yields_idle_cores(self):
        """Over-provisioned container at trivial load loses hyperthreads."""
        app = make_chain_app(1, work=0.4e6, pool=None, cores=4.0)
        cfg = mini_config(
            lambda: CaladanController(CaladanParams(yield_patience=5)),
            app=app,
            workload="mini-idle",
            base_rate=100.0,
            spike_magnitude=None,
        )
        res = run_experiment(cfg)
        assert res.controller_stats.downscale_core_actions > 0

    def test_does_not_yield_busy_cores(self):
        app = make_chain_app(1, work=1.6e6, pool=None, cores=1.5)
        cfg = mini_config(
            CaladanController,
            app=app,
            workload="mini-busy",
            base_rate=1200.0,  # demand ≈ 1.2 of 1.5 cores
            spike_magnitude=None,
        )
        res = run_experiment(cfg)
        # The loaded period must not be stripped; the post-injection
        # drain second may legitimately yield once or twice as the
        # container goes idle.
        assert res.controller_stats.downscale_core_actions <= 2

    def test_fine_decision_interval(self):
        res = run_experiment(mini_config(CaladanController))
        # 10ms interval over ≥6.5s of run time.
        assert res.controller_stats.decision_cycles >= 500
