"""Tests for the §VII horizontal-autoscaler interaction.

The autoscaler actuates *replica counts* behind the load-balancer tier:
scale-out launches a real replica that warms for ``launch_delay`` before
receiving traffic, scale-in drains and reaps the highest-index replica.
"""

import pytest

from repro.cluster.loadbalancer import DRAINING, READY
from repro.controllers.horizontal import (
    HorizontalAutoscaler,
    HpaParams,
    HybridController,
)
from repro.experiments.harness import run_experiment
from tests.controllers.conftest import mini_config


def _replicated(factory, **overrides):
    overrides.setdefault("replicas", 1)
    return mini_config(factory, **overrides)


class _ClusterProbe:
    """Capture end-state replica counts via the harness probe hook."""

    def __init__(self):
        self.ready_counts = {}
        self.total_counts = {}

    def __call__(self, sim, cluster):
        for svc, rset in cluster.replica_sets.items():
            self.ready_counts[svc] = sum(
                1 for r in rset.replicas if r.state == READY
            )
            self.total_counts[svc] = len(rset.replicas)


class TestParams:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            HpaParams(interval=0.0)
        with pytest.raises(ValueError):
            HpaParams(scale_in_utilization=0.8, target_utilization=0.7)
        with pytest.raises(ValueError):
            HpaParams(min_replicas=3, max_replicas=2)

    def test_requires_replica_armed_cluster(self):
        cfg = mini_config(lambda: HorizontalAutoscaler())  # replicas=None
        with pytest.raises(RuntimeError, match="replica-armed"):
            run_experiment(cfg)


class TestHorizontalAlone:
    def test_scales_out_replicas_under_sustained_load(self):
        probe = _ClusterProbe()
        cfg = _replicated(
            lambda: HorizontalAutoscaler(HpaParams(interval=0.5, launch_delay=1.0)),
            spike_magnitude=2.5,
            spike_len=4.0,
            duration=7.0,
        )
        res = run_experiment(cfg, probe=probe)
        assert res.controller_stats.upscale_core_actions > 0
        assert any(n > 1 for n in probe.total_counts.values())

    def test_launch_delay_defers_capacity(self):
        """With a launch delay longer than the surge, the replica lands
        too late to help during it — the §VII gap SurgeGuard bridges."""
        slow = run_experiment(
            _replicated(
                lambda: HorizontalAutoscaler(
                    HpaParams(interval=0.5, launch_delay=5.0)
                ),
                spike_len=1.5,
            )
        )
        fast = run_experiment(
            _replicated(
                lambda: HorizontalAutoscaler(
                    HpaParams(interval=0.5, launch_delay=0.25)
                ),
            )
        )
        assert fast.violation_volume <= slow.violation_volume

    def test_scales_in_when_idle(self):
        probe = _ClusterProbe()
        cfg = _replicated(
            lambda: HorizontalAutoscaler(
                HpaParams(interval=0.25, scale_in_patience=2, launch_delay=0.5)
            ),
            replicas=2,  # start above min_replicas so scale-in has room
            spike_magnitude=None,
            base_rate=100.0,  # almost idle on the initial allocation
            duration=4.0,
        )
        res = run_experiment(cfg, probe=probe)
        assert res.controller_stats.downscale_core_actions > 0
        assert all(n == 1 for n in probe.ready_counts.values())


class _FakeContainer:
    def __init__(self, busy: float, cores: float = 1.0):
        self.busy_core_seconds = busy
        self.cores = cores

    def sync(self):
        pass


class _FakeReplica:
    def __init__(self, name: str, busy: float, state: str = READY):
        self.name = name
        self.state = state
        self.container = _FakeContainer(busy)


class _FakeReplicaSet:
    def __init__(self, *replicas):
        self.replicas = list(replicas)


class _FakeCluster:
    """Just enough replica-armed surface for ``_decide``."""

    def __init__(self, rset):
        self.replica_sets = {"svc": rset}
        self.scale_out_calls = []
        self.scale_in_calls = []

    def reap_draining(self):
        return 0

    def scale_out(self, service, ready_delay=0.0):
        self.scale_out_calls.append(service)
        return None  # pretend max capacity: no new replica materializes

    def scale_in(self, service):
        self.scale_in_calls.append(service)
        return None


def _wired(cluster, params=None) -> HorizontalAutoscaler:
    hpa = HorizontalAutoscaler(params or HpaParams())
    hpa.sim = object()  # _decide only checks presence
    hpa.cluster = cluster
    hpa._low_streak = {"svc": 0}
    return hpa


class TestBaselineAccounting:
    """Regression tests for the busy-baseline lifecycle bugs: stale
    baselines surviving drain/reap and negative deltas from rewound
    integrals both used to corrupt the utilization signal."""

    def test_utilization_clamps_rewound_integrals(self):
        """A replica whose busy integral went backwards (crash/restart
        resets runtime state) reads as idle — it must not cancel the
        other replicas' work."""
        hpa = HorizontalAutoscaler(HpaParams(interval=1.0))
        crashed = _FakeReplica("svc@0", busy=1.0)
        healthy = _FakeReplica("svc@1", busy=8.0)
        hpa._last_busy = {"svc@0": 5.0, "svc@1": 7.5}
        util = hpa._utilization([crashed, healthy])
        # healthy contributed 0.5 busy over 2 allocated core-seconds;
        # the crashed replica's −4.0 delta is clamped to zero.
        assert util == pytest.approx(0.25)

    def test_stale_baseline_evicted_while_not_ready(self):
        """A replica that leaves the READY set loses its baseline, so a
        later revival starts at first sight instead of being charged
        its whole drain-time work in one interval."""
        draining = _FakeReplica("svc@1", busy=0.0, state=DRAINING)
        steady = _FakeReplica("svc@0", busy=0.0)
        cluster = _FakeCluster(_FakeReplicaSet(steady, draining))
        hpa = _wired(cluster, HpaParams(interval=1.0))
        hpa._last_busy = {"svc@0": 0.0, "svc@1": 0.0}

        # Drain period: the draining replica keeps burning cores.
        draining.container.busy_core_seconds = 10.0
        hpa._decide()
        assert "svc@1" not in hpa._last_busy

        # Revival: back to READY with the integral far beyond the old
        # baseline.  First sight re-baselines, so utilization stays low
        # and no spurious scale-out fires.
        draining.state = READY
        draining.container.busy_core_seconds = 10.5
        hpa._decide()
        assert cluster.scale_out_calls == []

    def test_stale_baseline_would_have_inflated_utilization(self):
        """Counterfactual for the test above: with the stale baseline
        left in place, the revival's first read crosses the scale-out
        threshold on drain-time work alone."""
        revived = _FakeReplica("svc@1", busy=10.5)
        steady = _FakeReplica("svc@0", busy=0.0)
        hpa = HorizontalAutoscaler(HpaParams(interval=1.0))
        hpa._last_busy = {"svc@0": 0.0, "svc@1": 0.0}  # stale baseline
        util = hpa._utilization([steady, revived])
        assert util > hpa.params.target_utilization

    def test_revive_after_drain_end_to_end(self):
        """Scale-in under idle load, then a late surge that revives the
        reaped replica: the run completes with both actions recorded."""
        probe = _ClusterProbe()
        cfg = _replicated(
            lambda: HorizontalAutoscaler(
                HpaParams(
                    interval=0.25, scale_in_patience=2, launch_delay=0.25
                )
            ),
            replicas=2,
            base_rate=100.0,  # idle: scale-in fires early
            spike_magnitude=18.0,  # late surge over the idle base rate
            spike_len=2.5,
            spike_period=100.0,
            spike_offset=3.5,
            duration=7.0,
        )
        res = run_experiment(cfg, probe=probe)
        assert res.controller_stats.downscale_core_actions > 0
        assert res.controller_stats.upscale_core_actions > 0
        # The surge ends before the run does, so the revived replicas
        # are draining again by probe time — visible in the totals.
        assert any(n > 1 for n in probe.total_counts.values())


class TestHybrid:
    def test_hybrid_bridges_launch_gap(self):
        """HPA alone eats the surge while replicas launch; the hybrid's
        SurgeGuard units hold QoS in the meantime."""
        hpa = HpaParams(interval=0.5, launch_delay=2.0)
        alone = run_experiment(
            _replicated(lambda: HorizontalAutoscaler(hpa), spike_len=1.5)
        )
        hybrid = run_experiment(
            _replicated(lambda: HybridController(hpa), spike_len=1.5)
        )
        assert hybrid.violation_volume < alone.violation_volume

    def test_hybrid_counts_both_units_actions(self):
        res = run_experiment(
            _replicated(
                lambda: HybridController(HpaParams(interval=0.5, launch_delay=1.0))
            )
        )
        assert res.controller_stats.decision_cycles > 0
