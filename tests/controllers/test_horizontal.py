"""Tests for the §VII horizontal-autoscaler interaction."""

import pytest

from repro.controllers.horizontal import (
    HorizontalAutoscaler,
    HpaParams,
    HybridController,
)
from repro.experiments.harness import run_experiment
from tests.controllers.conftest import mini_config


class TestParams:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            HpaParams(interval=0.0)
        with pytest.raises(ValueError):
            HpaParams(scale_in_utilization=0.8, target_utilization=0.7)


class TestHorizontalAlone:
    def test_scales_out_under_sustained_load(self):
        cfg = mini_config(
            lambda: HorizontalAutoscaler(HpaParams(interval=0.5, launch_delay=1.0)),
            spike_magnitude=2.5,
            spike_len=4.0,
            duration=7.0,
        )
        res = run_experiment(cfg)
        assert res.controller_stats.upscale_core_actions > 0

    def test_launch_delay_defers_capacity(self):
        """With a launch delay longer than the surge, capacity lands too
        late to help during it — the §VII gap SurgeGuard bridges."""
        slow = run_experiment(
            mini_config(
                lambda: HorizontalAutoscaler(
                    HpaParams(interval=0.5, launch_delay=5.0)
                ),
                spike_len=1.5,
            )
        )
        fast = run_experiment(
            mini_config(
                lambda: HorizontalAutoscaler(
                    HpaParams(interval=0.5, launch_delay=0.25)
                ),
            )
        )
        assert fast.violation_volume <= slow.violation_volume

    def test_scales_in_when_idle(self):
        cfg = mini_config(
            lambda: HorizontalAutoscaler(
                HpaParams(interval=0.25, scale_in_patience=2, launch_delay=0.5)
            ),
            spike_magnitude=None,
            base_rate=100.0,  # almost idle on the initial allocation
            duration=4.0,
        )
        res = run_experiment(cfg)
        assert res.controller_stats.downscale_core_actions > 0


class TestHybrid:
    def test_hybrid_bridges_launch_gap(self):
        """HPA alone eats the surge while replicas launch; the hybrid's
        SurgeGuard units hold QoS in the meantime."""
        hpa = HpaParams(interval=0.5, launch_delay=2.0)
        alone = run_experiment(
            mini_config(lambda: HorizontalAutoscaler(hpa), spike_len=1.5)
        )
        hybrid = run_experiment(
            mini_config(lambda: HybridController(hpa), spike_len=1.5)
        )
        assert hybrid.violation_volume < alone.violation_volume

    def test_hybrid_counts_both_units_actions(self):
        res = run_experiment(
            mini_config(
                lambda: HybridController(HpaParams(interval=0.5, launch_delay=1.0))
            )
        )
        assert res.controller_stats.decision_cycles > 0
