"""Tests for the §VII horizontal-autoscaler interaction.

The autoscaler actuates *replica counts* behind the load-balancer tier:
scale-out launches a real replica that warms for ``launch_delay`` before
receiving traffic, scale-in drains and reaps the highest-index replica.
"""

import pytest

from repro.cluster.loadbalancer import READY
from repro.controllers.horizontal import (
    HorizontalAutoscaler,
    HpaParams,
    HybridController,
)
from repro.experiments.harness import run_experiment
from tests.controllers.conftest import mini_config


def _replicated(factory, **overrides):
    overrides.setdefault("replicas", 1)
    return mini_config(factory, **overrides)


class _ClusterProbe:
    """Capture end-state replica counts via the harness probe hook."""

    def __init__(self):
        self.ready_counts = {}
        self.total_counts = {}

    def __call__(self, sim, cluster):
        for svc, rset in cluster.replica_sets.items():
            self.ready_counts[svc] = sum(
                1 for r in rset.replicas if r.state == READY
            )
            self.total_counts[svc] = len(rset.replicas)


class TestParams:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            HpaParams(interval=0.0)
        with pytest.raises(ValueError):
            HpaParams(scale_in_utilization=0.8, target_utilization=0.7)
        with pytest.raises(ValueError):
            HpaParams(min_replicas=3, max_replicas=2)

    def test_requires_replica_armed_cluster(self):
        cfg = mini_config(lambda: HorizontalAutoscaler())  # replicas=None
        with pytest.raises(RuntimeError, match="replica-armed"):
            run_experiment(cfg)


class TestHorizontalAlone:
    def test_scales_out_replicas_under_sustained_load(self):
        probe = _ClusterProbe()
        cfg = _replicated(
            lambda: HorizontalAutoscaler(HpaParams(interval=0.5, launch_delay=1.0)),
            spike_magnitude=2.5,
            spike_len=4.0,
            duration=7.0,
        )
        res = run_experiment(cfg, probe=probe)
        assert res.controller_stats.upscale_core_actions > 0
        assert any(n > 1 for n in probe.total_counts.values())

    def test_launch_delay_defers_capacity(self):
        """With a launch delay longer than the surge, the replica lands
        too late to help during it — the §VII gap SurgeGuard bridges."""
        slow = run_experiment(
            _replicated(
                lambda: HorizontalAutoscaler(
                    HpaParams(interval=0.5, launch_delay=5.0)
                ),
                spike_len=1.5,
            )
        )
        fast = run_experiment(
            _replicated(
                lambda: HorizontalAutoscaler(
                    HpaParams(interval=0.5, launch_delay=0.25)
                ),
            )
        )
        assert fast.violation_volume <= slow.violation_volume

    def test_scales_in_when_idle(self):
        probe = _ClusterProbe()
        cfg = _replicated(
            lambda: HorizontalAutoscaler(
                HpaParams(interval=0.25, scale_in_patience=2, launch_delay=0.5)
            ),
            replicas=2,  # start above min_replicas so scale-in has room
            spike_magnitude=None,
            base_rate=100.0,  # almost idle on the initial allocation
            duration=4.0,
        )
        res = run_experiment(cfg, probe=probe)
        assert res.controller_stats.downscale_core_actions > 0
        assert all(n == 1 for n in probe.ready_counts.values())


class TestHybrid:
    def test_hybrid_bridges_launch_gap(self):
        """HPA alone eats the surge while replicas launch; the hybrid's
        SurgeGuard units hold QoS in the meantime."""
        hpa = HpaParams(interval=0.5, launch_delay=2.0)
        alone = run_experiment(
            _replicated(lambda: HorizontalAutoscaler(hpa), spike_len=1.5)
        )
        hybrid = run_experiment(
            _replicated(lambda: HybridController(hpa), spike_len=1.5)
        )
        assert hybrid.violation_volume < alone.violation_volume

    def test_hybrid_counts_both_units_actions(self):
        res = run_experiment(
            _replicated(
                lambda: HybridController(HpaParams(interval=0.5, launch_delay=1.0))
            )
        )
        assert res.controller_stats.decision_cycles > 0
