"""Behavior + property tests for the LSRAM plugin.

The headline properties pin the pure solver: every solution is feasible
(budget + floors respected), and the projected gradient descent never
returns an allocation whose objective is worse than the projected
starting point's — on any synthetic latency model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controllers.lsram import (
    LsramController,
    LsramParams,
    lower_bounds,
    objective,
    project,
    solve_allocation,
)
from repro.controllers.null import NullController
from repro.experiments.harness import run_experiment
from tests.controllers.conftest import mini_config


class TestParams:
    def test_defaults_sane(self):
        p = LsramParams()
        assert p.demand_margin >= 1.0
        assert 0 < p.sat_threshold < 1
        assert p.probe_growth > 1.0
        assert 0 < p.slo_margin <= 1.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LsramParams(interval=0.0)
        with pytest.raises(ValueError):
            LsramParams(smoothing=0.0)
        with pytest.raises(ValueError):
            LsramParams(slo_margin=1.5)
        with pytest.raises(ValueError):
            LsramParams(lr=0.0)
        with pytest.raises(ValueError):
            LsramParams(iterations=0)
        with pytest.raises(ValueError):
            LsramParams(energy_weight=-0.1)
        with pytest.raises(ValueError):
            LsramParams(min_cores=0.0)
        with pytest.raises(ValueError):
            LsramParams(demand_margin=0.9)
        with pytest.raises(ValueError):
            LsramParams(sat_threshold=1.0)
        with pytest.raises(ValueError):
            LsramParams(probe_growth=1.0)


#: Synthetic per-node models: (current cores, pressure a_i, slo s_i).
_MODELS = st.lists(
    st.tuples(
        st.floats(0.5, 8.0, allow_nan=False),
        st.floats(1e-4, 50e-3, allow_nan=False),
        st.floats(1e-3, 20e-3, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=200)
@given(_MODELS, st.floats(2.0, 40.0, allow_nan=False))
def test_solver_feasibility(model, budget):
    """Solutions respect floors always, and the budget whenever the
    floors themselves fit in it."""
    p = LsramParams()
    current = [m[0] for m in model]
    pressure = [m[1] for m in model]
    slo = [m[2] for m in model]
    sol = solve_allocation(current, pressure, slo, budget, p)
    assert len(sol) == len(model)
    for c in sol:
        assert c >= p.min_cores - 1e-9
    if len(model) * p.min_cores <= budget:
        assert sum(sol) <= budget + 1e-6


@settings(max_examples=200)
@given(_MODELS, st.floats(2.0, 40.0, allow_nan=False))
def test_solver_improves_its_objective(model, budget):
    """PGD never does worse than the projected starting allocation."""
    p = LsramParams()
    current = [m[0] for m in model]
    pressure = [m[1] for m in model]
    slo = [m[2] for m in model]
    start = project(current, budget, [p.min_cores] * len(model))
    sol = solve_allocation(current, pressure, slo, budget, p)
    f_start = objective(start, pressure, slo, p.energy_weight)
    f_sol = objective(sol, pressure, slo, p.energy_weight)
    assert f_sol <= f_start + 1e-9


@settings(max_examples=200)
@given(
    st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=8),
    st.floats(2.0, 40.0, allow_nan=False),
)
def test_lower_bounds_fit_budget(demand, budget):
    """Floors sit at ``max(min_cores, demand·margin)`` and are shrunk
    to the budget whenever ``n·min_cores`` fits at all."""
    p = LsramParams()
    lo = lower_bounds(demand, budget, p)
    for x, d in zip(lo, demand):
        assert x >= p.min_cores - 1e-9
        assert x <= max(p.min_cores, d * p.demand_margin) + 1e-9
    if len(demand) * p.min_cores <= budget:
        assert sum(lo) <= budget + 1e-6


@given(_MODELS, st.floats(2.0, 40.0, allow_nan=False))
def test_project_respects_floors_and_budget(model, budget):
    p = LsramParams()
    cores = [m[0] for m in model]
    lo = [p.min_cores] * len(model)
    proj = project(cores, budget, lo)
    for c in proj:
        assert c >= p.min_cores - 1e-9
    if len(model) * p.min_cores <= budget:
        assert sum(proj) <= budget + 1e-6


def test_solver_grows_a_violating_service():
    """A service modeled above its SLO attracts cores when the budget
    has room."""
    p = LsramParams()
    # a/c = 4 ms on 1 core against a 2 ms SLO: clearly violating.
    sol = solve_allocation([1.0, 4.0], [4e-3, 1e-3], [2e-3, 2e-3], 10.0, p)
    assert sol[0] > 1.0


def test_solver_reclaims_idle_slack_under_scarcity():
    """With the budget bound, slack above a satisfied service's floor
    feeds the violating one."""
    p = LsramParams()
    lo = [0.5, 0.5]
    sol = solve_allocation(
        [1.0, 5.0], [8e-3, 0.5e-3], [2e-3, 2e-3], 6.0, p, lower=lo
    )
    assert sol[0] > 1.0  # violator grew
    assert sol[1] < 5.0  # satisfied service shrank toward its floor
    assert sum(sol) <= 6.0 + 1e-6


class TestBehavior:
    def test_upscales_under_surge(self):
        cfg = mini_config(lambda: LsramController(LsramParams(interval=0.1)))
        res = run_experiment(cfg)
        assert res.controller_stats.upscale_core_actions > 0

    def test_reduces_vv_vs_static(self):
        static = run_experiment(mini_config(NullController))
        ls = run_experiment(
            mini_config(lambda: LsramController(LsramParams(interval=0.1)))
        )
        assert ls.violation_volume < static.violation_volume

    def test_allocations_respect_node_budget(self):
        cfg = mini_config(
            lambda: LsramController(LsramParams(interval=0.1)),
            cores_per_node=4.0,
        )
        res = run_experiment(cfg)
        assert res.avg_cores <= 4.0 + 1e-9

    def test_lifecycle_guards(self):
        c = LsramController()
        with pytest.raises(RuntimeError):
            c.start()
        res = run_experiment(mini_config(LsramController))
        assert res.controller_name == "lsram"

    def test_quiet_at_steady_state(self):
        cfg = mini_config(
            lambda: LsramController(LsramParams(interval=0.1)),
            spike_magnitude=None,
        )
        res = run_experiment(cfg)
        assert res.summary.violation_fraction < 0.05
