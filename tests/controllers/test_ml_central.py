"""Behavior tests for the centralized ML-style comparator."""

import pytest

from repro.controllers.ml_central import CentralizedMLController, MLParams
from repro.core import SurgeGuardConfig, SurgeGuardController
from repro.experiments.harness import run_experiment
from tests.controllers.conftest import mini_config


class TestParams:
    def test_defaults_match_cited_properties(self):
        p = MLParams()
        assert p.interval >= 1.0  # Table I: >1s granularity
        assert p.inference_delay > 0
        assert p.collection_delay > 0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            MLParams(interval=0.0)
        with pytest.raises(ValueError):
            MLParams(collection_delay=-1.0)


class TestBehavior:
    def test_correct_root_cause_but_slow(self):
        """It eventually upscales the right containers (dependence-aware)
        — the deficiency is purely latency."""
        cfg = mini_config(
            CentralizedMLController, spike_len=3.0, duration=6.0,
            record_timelines=True,
        )
        res = run_experiment(cfg)
        assert res.controller_stats.upscale_core_actions > 0

    def test_loses_to_surgeguard_on_transient_surges(self):
        """The paper's argument: for short transients the ML latency is
        fatal even with perfect root-cause analysis."""
        common = dict(spike_len=1.0, duration=5.0)
        ml = run_experiment(mini_config(CentralizedMLController, **common))
        sg = run_experiment(
            mini_config(
                lambda: SurgeGuardController(SurgeGuardConfig()), **common
            )
        )
        assert sg.violation_volume < ml.violation_volume

    def test_decision_granularity_over_one_second(self):
        cfg = mini_config(CentralizedMLController, duration=4.0)
        res = run_experiment(cfg)
        window = cfg.warmup + cfg.duration + cfg.drain
        granularity = window / max(res.controller_stats.decision_cycles, 1)
        assert granularity > 1.0
