"""Behavior tests for the clairvoyant Fig. 4 oracle."""

import pytest

from repro.controllers.oracle import OracleController
from repro.experiments.harness import run_experiment
from repro.workload.arrivals import RateSchedule
from tests.controllers.conftest import mini_config


def oracle_factory(schedule, delay, headroom=1.2):
    return lambda: OracleController(
        schedule, detection_delay=delay, headroom=headroom
    )


def surge_schedule(cfg):
    return RateSchedule.single(
        cfg.resolved_rate(),
        magnitude=cfg.spike_magnitude,
        start=cfg.warmup + cfg.spike_offset,
        length=cfg.spike_len,
    )


class TestOracle:
    def test_invalid_args_rejected(self):
        s = RateSchedule(100.0)
        with pytest.raises(ValueError):
            OracleController(s, detection_delay=-1.0)
        with pytest.raises(ValueError):
            OracleController(s, detection_delay=0.0, headroom=0.5)

    def test_zero_delay_beats_long_delay(self):
        base = mini_config(lambda: None)
        sched = surge_schedule(base)
        fast = run_experiment(
            mini_config(oracle_factory(sched, 0.0002), workload="mini-oracle-f")
        )
        slow = run_experiment(
            mini_config(oracle_factory(sched, 1.0), workload="mini-oracle-s")
        )
        assert fast.violation_volume < slow.violation_volume

    def test_oracle_scales_up_and_back_down(self):
        base = mini_config(lambda: None)
        sched = surge_schedule(base)
        cfg = mini_config(
            oracle_factory(sched, 0.001), workload="mini-oracle-ud",
            record_timelines=True,
        )
        res = run_experiment(cfg)
        ups = res.controller_stats.upscale_core_actions
        downs = res.controller_stats.downscale_core_actions
        assert ups > 0 and downs > 0
