"""Behavior tests for the Parties baseline."""

import pytest

from repro.controllers.parties import PartiesController, PartiesParams
from repro.experiments.harness import run_experiment
from tests.controllers.conftest import mini_config


class TestParams:
    def test_defaults_follow_paper(self):
        p = PartiesParams()
        assert p.interval == 0.5  # Table I
        assert p.core_step == 1.0  # both hyperthreads together (§V)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            PartiesParams(interval=0.0)
        with pytest.raises(ValueError):
            PartiesParams(violation_slack=0.5, comfort_slack=0.3)
        with pytest.raises(ValueError):
            PartiesParams(downscale_patience=0)


class TestBehavior:
    def test_upscales_under_surge(self):
        cfg = mini_config(
            lambda: PartiesController(PartiesParams(interval=0.1))
        )
        res = run_experiment(cfg)
        assert res.controller_stats.upscale_core_actions > 0

    def test_reduces_vv_vs_static(self):
        from repro.controllers.null import NullController

        static = run_experiment(mini_config(NullController))
        parties = run_experiment(
            mini_config(lambda: PartiesController(PartiesParams(interval=0.1)))
        )
        assert parties.violation_volume < static.violation_volume

    def test_one_upscale_per_interval(self):
        cfg = mini_config(
            lambda: PartiesController(PartiesParams(interval=0.25))
        )
        res = run_experiment(cfg)
        # Upscales bounded by decision cycles (one adjustment per cycle).
        assert (
            res.controller_stats.upscale_core_actions
            <= res.controller_stats.decision_cycles
        )

    def test_quiet_at_steady_state(self):
        """Without surges Parties should neither thrash nor violate."""
        cfg = mini_config(
            lambda: PartiesController(PartiesParams(interval=0.1)),
            spike_magnitude=None,
        )
        res = run_experiment(cfg)
        # Occasional lognormal work tails may graze the QoS line, but
        # there is no sustained violation and no allocation thrash.
        assert res.summary.violation_fraction < 0.05
        assert res.controller_stats.total_actions < 30

    def test_lifecycle_guards(self):
        c = PartiesController()
        with pytest.raises(RuntimeError):
            c.start()
        cfg = mini_config(PartiesController)
        res = run_experiment(cfg)  # full lifecycle works
        assert res.controller_name == "parties"
