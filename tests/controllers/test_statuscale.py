"""Behavior + property tests for the StatuScale plugin.

The headline property is **decision monotonicity**: driven by the same
usage history, a service reporting uniformly higher latency never ends
up with fewer cores.  The policy is pure (`plan_decision`), so the
property runs on synthetic sequences without a simulator.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controllers.null import NullController
from repro.controllers.statuscale import (
    ServiceState,
    StatuScaleController,
    StatuScaleParams,
    load_status,
    plan_decision,
    upscale_step,
)
from repro.experiments.harness import run_experiment
from tests.controllers.conftest import mini_config


class TestParams:
    def test_defaults_sane(self):
        p = StatuScaleParams()
        assert p.core_step <= p.max_step
        assert p.downscale_ratio < p.upscale_ratio
        assert 1.0 <= p.headroom <= p.surge_headroom
        assert p.surge_boost >= 1.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            StatuScaleParams(interval=0.0)
        with pytest.raises(ValueError):
            StatuScaleParams(window=1)
        with pytest.raises(ValueError):
            StatuScaleParams(downscale_ratio=1.2, upscale_ratio=1.0)
        with pytest.raises(ValueError):
            StatuScaleParams(headroom=2.5, surge_headroom=2.0)
        with pytest.raises(ValueError):
            StatuScaleParams(core_step=1.0, max_step=0.5)
        with pytest.raises(ValueError):
            StatuScaleParams(surge_boost=0.5)
        with pytest.raises(ValueError):
            StatuScaleParams(downscale_patience=0)
        with pytest.raises(ValueError):
            StatuScaleParams(min_cores=0.0)


class TestDetector:
    def test_short_windows_are_stable(self):
        p = StatuScaleParams()
        assert load_status([], p) is False
        assert load_status([1.0], p) is False
        assert load_status([1.0, 5.0], p) is False

    def test_constant_window_is_stable(self):
        p = StatuScaleParams()
        assert load_status([2.0] * 8, p) is False

    def test_step_change_is_fluctuating(self):
        p = StatuScaleParams()
        assert load_status([1.0, 1.0, 1.0, 1.0, 3.0, 3.0], p) is True

    def test_steady_ramp_is_fluctuating(self):
        p = StatuScaleParams()
        assert load_status([1.0, 1.5, 2.0, 2.5, 3.0], p) is True

    @given(
        st.lists(st.floats(0.25, 4.0, allow_nan=False), min_size=3, max_size=12),
        st.integers(-8, 8),
    )
    def test_scale_invariance(self, samples, k):
        """RSD and normalized slope are exactly invariant under
        power-of-two scaling (pure mantissa shifts), so the verdict is
        bit-identical — the detector reads load *shape*, not magnitude."""
        p = StatuScaleParams()
        scaled = [s * 2.0**k for s in samples]
        assert load_status(samples, p) == load_status(scaled, p)


class TestUpscaleStep:
    def test_zero_below_threshold(self):
        p = StatuScaleParams()
        assert upscale_step(p, 1.0, 4.0, False) == 0.0
        assert upscale_step(p, 0.5, 4.0, True) == 0.0

    def test_quantized_and_capped(self):
        p = StatuScaleParams()
        grant = upscale_step(p, 1.3, 2.0, False)
        assert grant > 0
        assert grant <= p.max_step
        assert abs(grant / p.core_step - round(grant / p.core_step)) < 1e-9

    def test_fluctuation_boosts(self):
        p = StatuScaleParams()
        assert upscale_step(p, 1.2, 2.0, True) >= upscale_step(p, 1.2, 2.0, False)

    @given(
        st.floats(0.0, 5.0, allow_nan=False),
        st.floats(0.0, 5.0, allow_nan=False),
        st.floats(0.5, 20.0, allow_nan=False),
        st.booleans(),
    )
    def test_monotone_in_ratio(self, r1, r2, cores, fluct):
        p = StatuScaleParams()
        lo, hi = min(r1, r2), max(r1, r2)
        assert upscale_step(p, hi, cores, fluct) >= upscale_step(p, lo, cores, fluct)

    @given(
        st.floats(1.0, 5.0, allow_nan=False),
        st.floats(0.5, 20.0, allow_nan=False),
        st.floats(0.5, 20.0, allow_nan=False),
        st.booleans(),
    )
    def test_monotone_in_cores(self, ratio, c1, c2, fluct):
        p = StatuScaleParams()
        lo, hi = min(c1, c2), max(c1, c2)
        assert upscale_step(p, ratio, hi, fluct) >= upscale_step(p, ratio, lo, fluct)


#: (usage, low_ratio, extra_ratio) per step: the high-latency run sees
#: ``low_ratio + extra_ratio`` against the same usage trace.
_HISTORIES = st.lists(
    st.tuples(
        st.floats(0.0, 6.0, allow_nan=False),
        st.floats(0.0, 3.0, allow_nan=False),
        st.floats(0.0, 3.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=200)
@given(_HISTORIES)
def test_decision_monotonicity(history):
    """Uniformly higher latency never yields fewer cores.

    Two copies of the policy replay the same usage trace; one sees a
    pointwise-higher latency/SLO ratio.  Applying every returned delta
    (grants uncapped by any node budget — the policy's own view), the
    high-latency run's allocation must dominate at every step.
    """
    p = StatuScaleParams()
    lo_state, hi_state = ServiceState(), ServiceState()
    lo_cores = hi_cores = 1.0
    for usage, ratio, extra in history:
        lo_cores += plan_decision(p, lo_state, ratio, usage, lo_cores)
        hi_cores += plan_decision(p, hi_state, ratio + extra, usage, hi_cores)
        assert hi_cores >= lo_cores - 1e-9
        assert lo_cores >= p.min_cores - 1e-9
        assert hi_cores >= p.min_cores - 1e-9


@settings(max_examples=100)
@given(_HISTORIES)
def test_deltas_stay_on_the_actuation_lattice(history):
    """Every delta is a multiple of ``core_step`` bounded by
    ``max_step`` — the controller actuates them in quanta."""
    p = StatuScaleParams()
    state = ServiceState()
    cores = 1.0
    for usage, ratio, _ in history:
        delta = plan_decision(p, state, ratio, usage, cores)
        assert abs(delta) <= p.max_step + 1e-9
        steps = delta / p.core_step
        assert abs(steps - round(steps)) < 1e-9
        cores += delta


class TestBehavior:
    def test_upscales_under_surge(self):
        cfg = mini_config(
            lambda: StatuScaleController(StatuScaleParams(interval=0.1))
        )
        res = run_experiment(cfg)
        assert res.controller_stats.upscale_core_actions > 0

    def test_reduces_vv_vs_static(self):
        static = run_experiment(mini_config(NullController))
        ss = run_experiment(
            mini_config(lambda: StatuScaleController(StatuScaleParams(interval=0.1)))
        )
        assert ss.violation_volume < static.violation_volume

    def test_grants_are_budget_bounded(self):
        """On a node with no free cores, sizing up is a no-op, not a
        crash — the helper refuses and the controller moves on."""
        cfg = mini_config(
            lambda: StatuScaleController(StatuScaleParams(interval=0.1)),
            cores_per_node=3.0,  # 2 × 1.5 cores: node starts full
        )
        res = run_experiment(cfg)
        assert res.controller_name == "statuscale"
        assert res.avg_cores <= 3.0 + 1e-9

    def test_lifecycle_guards(self):
        c = StatuScaleController()
        with pytest.raises(RuntimeError):
            c.start()
        res = run_experiment(mini_config(StatuScaleController))
        assert res.controller_name == "statuscale"

    def test_quiet_at_steady_state(self):
        cfg = mini_config(
            lambda: StatuScaleController(StatuScaleParams(interval=0.1)),
            spike_magnitude=None,
        )
        res = run_experiment(cfg)
        assert res.summary.violation_fraction < 0.05
