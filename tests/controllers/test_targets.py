"""Unit tests for target configuration (the artifact's config files)."""

import pytest

from repro.cluster.runtime import RuntimeWindow
from repro.controllers.targets import TargetConfig


def window(exec_time=10e-3, wait=2e-3, tfs=5e-3, count=100):
    metric = exec_time - wait
    return RuntimeWindow(
        t_start=0.0,
        t_end=1.0,
        count=count,
        avg_exec_time=exec_time,
        avg_conn_wait=wait,
        avg_exec_metric=metric,
        queue_buildup=exec_time / metric,
        upscale_hints=0,
        max_hint_ttl=0,
        avg_time_from_start=tfs,
    )


class TestFromWindows:
    def test_two_x_multiplier(self):
        t = TargetConfig.from_windows({"a": window()}, qos_target=0.1)
        assert t.expected_exec_time["a"] == pytest.approx(20e-3)
        assert t.expected_exec_metric["a"] == pytest.approx(16e-3)

    def test_tfs_multiplier_independent(self):
        t = TargetConfig.from_windows(
            {"a": window()}, multiplier=2.0, tfs_multiplier=4.0, qos_target=0.1
        )
        assert t.expected_time_from_start["a"] == pytest.approx(20e-3)

    def test_custom_multiplier(self):
        t = TargetConfig.from_windows(
            {"a": window()}, multiplier=3.0, qos_target=0.1
        )
        assert t.expected_exec_time["a"] == pytest.approx(30e-3)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="no requests"):
            TargetConfig.from_windows({"a": window(count=0)}, qos_target=0.1)

    def test_invalid_multiplier_rejected(self):
        with pytest.raises(ValueError):
            TargetConfig.from_windows({"a": window()}, multiplier=0.0, qos_target=0.1)

    def test_invalid_qos_rejected(self):
        with pytest.raises(ValueError):
            TargetConfig.from_windows({"a": window()}, qos_target=0.0)

    def test_nonpositive_target_rejected(self):
        with pytest.raises(ValueError):
            TargetConfig(
                expected_exec_metric={"a": 0.0},
                expected_exec_time={"a": 1.0},
                expected_time_from_start={"a": 1.0},
                qos_target=1.0,
            )
