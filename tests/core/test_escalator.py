"""Behavior tests for the Escalator slow path."""

import pytest

from repro.core import SurgeGuardConfig, SurgeGuardController
from repro.experiments.harness import run_experiment
from tests.conftest import make_chain_app
from tests.controllers.conftest import mini_config


def escalator_only(**cfg_overrides):
    cfg = SurgeGuardConfig(firstresponder=False, **cfg_overrides)
    return lambda: SurgeGuardController(cfg)


class TestConfig:
    def test_defaults_follow_paper(self):
        cfg = SurgeGuardConfig()
        assert cfg.alpha == 0.5
        assert cfg.sens_revoke_th == 0.02
        assert cfg.hold_factor == 2.0
        assert cfg.hook_cost == pytest.approx(0.26e-6)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SurgeGuardConfig(escalator_interval=0.0)
        with pytest.raises(ValueError):
            SurgeGuardConfig(alpha=1.5)
        with pytest.raises(ValueError):
            SurgeGuardConfig(queue_th=0.5)
        with pytest.raises(ValueError):
            SurgeGuardConfig(upscale_ttl=-1)


class TestSurgeResponse:
    def test_beats_static_on_surge(self):
        from repro.controllers.null import NullController

        static = run_experiment(mini_config(NullController))
        esc = run_experiment(mini_config(escalator_only()))
        assert esc.violation_volume < 0.5 * static.violation_volume

    def test_upscales_downstream_through_hidden_queue(self):
        """The Fig. 5(c) behavior on a pooled chain: the downstream
        container gains cores even though only the upstream one shows a
        raw execTime explosion."""
        app = make_chain_app(2, work=1.6e6, pool=3, cores=1.5, deterministic=False)
        cfg = mini_config(
            escalator_only(),
            app=app,
            workload="mini-esc-hidden",
            spike_magnitude=3.0,
            record_timelines=True,
        )
        res = run_experiment(cfg)
        peak = {"s0": 1.5, "s1": 1.5}
        for t, name, cores in res.alloc_events:
            if t > 0:
                peak[name] = max(peak[name], cores)
        assert peak["s1"] > 1.5, "downstream container was never upscaled"

    def test_no_metrics_mode_misses_downstream(self):
        """Ablation arm sanity: with use_new_metrics=False the downstream
        container of a *hard-pooled* chain gets nothing (Fig. 5b)."""
        app = make_chain_app(2, work=1.6e6, pool=3, cores=1.5, deterministic=False)
        cfg = mini_config(
            escalator_only(use_new_metrics=False, use_sensitivity=False),
            app=app,
            workload="mini-esc-blind",
            spike_magnitude=3.0,
            record_timelines=True,
        )
        res = run_experiment(cfg)
        s1_peak = max(
            [c for t, n, c in res.alloc_events if n == "s1" and t > 0],
            default=1.5,
        )
        # s1's own execMetric stays within envelope (pool shields it), so
        # the blind controller leaves it alone while s0 balloons.
        s0_peak = max(
            [c for t, n, c in res.alloc_events if n == "s0" and t > 0],
            default=1.5,
        )
        assert s0_peak > s1_peak

    def test_quiet_at_steady_state(self):
        cfg = mini_config(escalator_only(), spike_magnitude=None)
        res = run_experiment(cfg)
        assert res.summary.violation_fraction < 0.05
        assert res.controller_stats.upscale_core_actions < 10


class TestStampPlumbing:
    def test_queue_violation_stamps_runtime(self, sim, make_cluster):
        """A queueBuildup violation must mark outgoing packets (Table II
        row 2: 'set pkt.upscale')."""
        from repro.controllers.targets import TargetConfig
        from repro.core.escalator import Escalator

        app = make_chain_app(3, pool=2)
        cluster = make_cluster(app)
        targets = TargetConfig(
            expected_exec_metric={n: 10e-3 for n in app.service_names},
            expected_exec_time={n: 10e-3 for n in app.service_names},
            expected_time_from_start={n: 10e-3 for n in app.service_names},
            qos_target=20e-3,
        )
        esc = Escalator(
            sim, cluster.node_views[0], SurgeGuardConfig(), targets
        )
        # Inject a fabricated queue-buildup window at s0.
        cluster.runtimes["s0"].on_arrival(1e-3, 0)
        cluster.runtimes["s0"].on_complete(exec_time=30e-3, conn_wait=25e-3)
        esc.decide()
        assert cluster.runtimes["s0"].stamp_active
        # Same-node downstream got direct score credit.
        assert esc.last_scores["s1"] >= 1
        assert esc.last_scores["s2"] >= 1

    def test_exec_violation_scores_self_only(self, sim, make_cluster):
        from repro.controllers.targets import TargetConfig
        from repro.core.escalator import Escalator

        app = make_chain_app(2, pool=4)
        cluster = make_cluster(app)
        targets = TargetConfig(
            expected_exec_metric={n: 10e-3 for n in app.service_names},
            expected_exec_time={n: 10e-3 for n in app.service_names},
            expected_time_from_start={n: 10e-3 for n in app.service_names},
            qos_target=20e-3,
        )
        esc = Escalator(sim, cluster.node_views[0], SurgeGuardConfig(), targets)
        cluster.runtimes["s0"].on_complete(exec_time=30e-3, conn_wait=0.0)
        esc.decide()
        assert esc.last_scores["s0"] == 1
        assert esc.last_scores["s1"] == 0
        assert not cluster.runtimes["s0"].stamp_active
