"""Unit + behavior tests for the FirstResponder fast path."""

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.packet import REQUEST, RESPONSE, RpcPacket
from repro.controllers.targets import TargetConfig
from repro.core import SurgeGuardConfig, SurgeGuardController
from repro.core.firstresponder import FirstResponder
from repro.experiments.harness import run_experiment
from tests.conftest import make_chain_app
from tests.controllers.conftest import mini_config


def mk_targets(app, tfs=5e-3):
    names = app.service_names
    return TargetConfig(
        expected_exec_metric={n: 10e-3 for n in names},
        expected_exec_time={n: 10e-3 for n in names},
        expected_time_from_start={n: tfs for n in names},
        qos_target=20e-3,
    )


@pytest.fixture
def setup(sim, make_cluster):
    app = make_chain_app(3)
    cluster = make_cluster(app)
    targets = mk_targets(app)
    fr = FirstResponder(
        sim, cluster.node_views[0], SurgeGuardConfig(), targets
    )
    fr.install()
    return cluster, fr


def pkt(dst, start_time, kind=REQUEST):
    return RpcPacket(
        request_id=0, kind=kind, src="client", dst=dst, start_time=start_time
    )


class TestSlackDetection:
    def test_on_time_packet_ignored(self, sim, setup):
        cluster, fr = setup
        fr.on_packet(pkt("s0", start_time=sim.now - 1e-3))  # slack +4ms
        sim.run()
        assert fr.violations_detected == 0
        assert cluster.containers["s0"].frequency == cluster.config.dvfs.f_min

    def test_late_packet_boosts_container_and_downstream(self, sim, setup):
        cluster, fr = setup
        fr.on_packet(pkt("s0", start_time=-1.0))  # hugely negative slack
        sim.run()
        assert fr.violations_detected == 1
        f_max = cluster.config.dvfs.f_max
        for name in ("s0", "s1", "s2"):
            assert cluster.containers[name].frequency == f_max

    def test_boost_applies_after_worker_latency(self, sim, setup):
        cluster, fr = setup
        fr.on_packet(pkt("s0", start_time=-1.0))
        # Before the worker's enqueue+MSR delay elapses: unchanged.
        assert cluster.containers["s0"].frequency == cluster.config.dvfs.f_min
        sim.run()
        assert cluster.containers["s0"].frequency == cluster.config.dvfs.f_max

    def test_responses_not_progress_checked(self, sim, setup):
        cluster, fr = setup
        fr.on_packet(pkt("s0", start_time=-1.0, kind=RESPONSE))
        sim.run()
        assert fr.violations_detected == 0

    def test_unknown_destination_ignored(self, sim, setup):
        _, fr = setup
        fr.on_packet(pkt("client", start_time=-1.0))
        assert fr.violations_detected == 0

    def test_boost_only_for_downstream_of_dst(self, sim, make_cluster):
        app = make_chain_app(3)
        cluster = make_cluster(app)
        fr = FirstResponder(
            sim, cluster.node_views[0], SurgeGuardConfig(), mk_targets(app)
        )
        fr.install()
        fr.on_packet(pkt("s1", start_time=-1.0))
        sim.run()
        f_max = cluster.config.dvfs.f_max
        f_min = cluster.config.dvfs.f_min
        assert cluster.containers["s0"].frequency == f_min  # upstream untouched
        assert cluster.containers["s1"].frequency == f_max
        assert cluster.containers["s2"].frequency == f_max


class TestHoldWindow:
    def test_hold_suppresses_repeat_boosts(self, sim, setup):
        cluster, fr = setup
        fr.on_packet(pkt("s0", start_time=-1.0))
        fr.on_packet(pkt("s0", start_time=-1.0))
        sim.run()
        assert fr.boosts_applied == 1
        assert fr.boosts_suppressed == 1

    def test_hold_window_is_2x_qos(self, setup):
        _, fr = setup
        assert fr.hold_window == pytest.approx(2.0 * 20e-3)

    def test_boost_allowed_after_hold_expires(self, sim, setup):
        cluster, fr = setup
        fr.on_packet(pkt("s0", start_time=-1.0))
        sim.run()
        # Escalator decays the frequency...
        cluster.set_frequency("s0", cluster.config.dvfs.f_min)
        # ...and after the hold window a new violation re-boosts.
        sim.schedule(fr.hold_window + 1e-3, lambda: fr.on_packet(pkt("s0", start_time=-1.0)))
        sim.run()
        assert fr.boosts_applied == 2

    def test_double_install_rejected(self, setup):
        _, fr = setup
        with pytest.raises(RuntimeError):
            fr.install()


class TestIntegrated:
    def test_fast_path_reduces_short_surge_vv(self):
        """End-to-end: FirstResponder must beat Escalator-only on a
        sub-decision-window burst (the Fig. 10 claim)."""
        common = dict(
            spike_magnitude=50.0,
            spike_len=2e-3,
            spike_period=0.5,
            spike_offset=0.25,
            duration=3.0,
        )
        esc = run_experiment(
            mini_config(
                lambda: SurgeGuardController(SurgeGuardConfig(firstresponder=False)),
                **common,
            )
        )
        full = run_experiment(mini_config(SurgeGuardController, **common))
        assert full.fast_path_packets > 0
        assert full.violation_volume < esc.violation_volume

    def test_hook_cost_charged_on_packets(self, sim, make_cluster):
        app = make_chain_app(2)
        cluster = make_cluster(app)
        fr = FirstResponder(
            sim, cluster.node_views[0], SurgeGuardConfig(), mk_targets(app)
        )
        fr.install()
        assert cluster.nodes[0].rx_overhead == pytest.approx(0.26e-6)
