"""Escalator frequency normalization (the shFreq synchronization).

Regression tests for the boost-masquerades-as-headroom bug: a container
running fast because FirstResponder boosted it must not be judged
"comfortable" by Escalator, or its cores get stripped mid-boost and the
system limit-cycles when the boost decays.
"""

import pytest

from repro.controllers.targets import TargetConfig
from repro.core import SurgeGuardConfig
from repro.core.escalator import Escalator
from tests.conftest import make_chain_app


@pytest.fixture
def setup(sim, make_cluster):
    app = make_chain_app(1, work=1.6e6, pool=None, cores=2.0)
    cluster = make_cluster(app, cores_per_node=8)
    targets = TargetConfig(
        expected_exec_metric={"s0": 4e-3},
        expected_exec_time={"s0": 4e-3},
        expected_time_from_start={"s0": 4e-3},
        qos_target=10e-3,
    )
    esc = Escalator(
        sim,
        cluster.node_views[0],
        SurgeGuardConfig(downscale_patience=1),
        targets,
    )
    return cluster, esc


def _feed_busy(sim, cluster, duration):
    """Keep s0's cores saturated for `duration` (so busy ≈ cores)."""
    end = sim.now + duration
    c = cluster.containers["s0"]

    def resubmit():
        if sim.now < end:
            for _ in range(4 - c.active_jobs):
                c.submit(0.4e6, resubmit)

    for _ in range(4):
        c.submit(0.4e6, resubmit)
    sim.run(until=end)


class TestFrequencyNormalization:
    def test_boosted_fast_window_not_comfortable(self, sim, setup):
        """At f_max, observed 1.7 ms looks comfortable against the 4 ms
        envelope — but normalized to f_min it is 2.55 ms > 0.5×4 ms, so
        no core may be reclaimed."""
        cluster, esc = setup
        cluster.set_frequency("s0", cluster.config.dvfs.f_max)
        _feed_busy(sim, cluster, 0.2)
        # Report a window that is fast *because of* the boost.
        cluster.runtimes["s0"].on_complete(exec_time=1.7e-3, conn_wait=0.0)
        cores_before = cluster.containers["s0"].cores
        esc.decide()
        assert cluster.containers["s0"].cores == cores_before

    def test_same_window_at_base_freq_is_comfortable(self, sim, setup):
        """The identical observation at the base frequency *is* genuine
        headroom and may be reclaimed (patience=1 in this fixture)."""
        cluster, esc = setup
        _feed_busy(sim, cluster, 0.2)
        cluster.runtimes["s0"].on_complete(exec_time=1.7e-3, conn_wait=0.0)
        cores_before = cluster.containers["s0"].cores
        esc.decide()
        assert cluster.containers["s0"].cores < cores_before

    def test_normalization_uses_window_mean_not_instant(self, sim, setup):
        """A boost that decays just before decide() must still be
        normalized away: the window ran fast even though the instant
        frequency is back at the floor."""
        cluster, esc = setup
        dvfs = cluster.config.dvfs
        cluster.set_frequency("s0", dvfs.f_max)
        _feed_busy(sim, cluster, 0.2)
        cluster.runtimes["s0"].on_complete(exec_time=1.7e-3, conn_wait=0.0)
        # Decay to the floor an instant before the decision.
        cluster.set_frequency("s0", dvfs.f_min)
        cores_before = cluster.containers["s0"].cores
        esc.decide()
        assert cluster.containers["s0"].cores == cores_before
