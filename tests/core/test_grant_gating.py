"""Escalator grant gating: cores only go where they are being used.

Regression tests for the Fig. 13 over-allocation fix — a candidate that
is not using its current allocation (e.g. blocked on a connection pool
rather than compute-bound) must not receive more cores; a saturated
candidate must.
"""

import pytest

from repro.controllers.targets import TargetConfig
from repro.core import SurgeGuardConfig
from repro.core.escalator import Escalator
from tests.conftest import make_chain_app


@pytest.fixture
def setup(sim, make_cluster):
    app = make_chain_app(2, work=1.6e6, pool=4)
    cluster = make_cluster(app)
    targets = TargetConfig(
        expected_exec_metric={n: 2e-3 for n in app.service_names},
        expected_exec_time={n: 2e-3 for n in app.service_names},
        expected_time_from_start={n: 2e-3 for n in app.service_names},
        qos_target=10e-3,
    )
    esc = Escalator(sim, cluster.node_views[0], SurgeGuardConfig(), targets)
    return cluster, esc


class TestGrantGating:
    def test_saturated_candidate_gets_core(self, sim, setup):
        cluster, esc = setup
        # Saturate s0's compute: many long jobs keep busy == cores.
        for _ in range(8):
            cluster.containers["s0"].submit(1e9, lambda: None)
        sim.run(until=0.1)
        cluster.runtimes["s0"].on_complete(exec_time=30e-3, conn_wait=0.0)
        before = cluster.containers["s0"].cores
        esc.decide()
        assert cluster.containers["s0"].cores > before

    def test_idle_candidate_not_granted(self, sim, setup):
        cluster, esc = setup
        # s0 violates on paper (fabricated window) but its cores sat idle
        # the whole cycle — a grant would be pure waste.
        sim.run(until=0.1)
        cluster.runtimes["s0"].on_complete(exec_time=30e-3, conn_wait=0.0)
        before = cluster.containers["s0"].cores
        esc.decide()
        assert cluster.containers["s0"].cores == before

    def test_pool_blocked_upstream_not_granted_but_downstream_is(self, sim, setup):
        """The §III-B story end-to-end at the decision level: upstream
        queueBuildup violation with idle cores ⇒ no self-grant; its
        saturated downstream gets the core instead."""
        cluster, esc = setup
        # Saturate only s1 (the downstream).
        for _ in range(8):
            cluster.containers["s1"].submit(1e9, lambda: None)
        sim.run(until=0.1)
        # Upstream shows queueBuildup (pool wait dominates, compute idle).
        cluster.runtimes["s0"].on_complete(exec_time=30e-3, conn_wait=28e-3)
        cluster.runtimes["s1"].on_complete(exec_time=30e-3, conn_wait=0.0)
        c0_before = cluster.containers["s0"].cores
        c1_before = cluster.containers["s1"].cores
        esc.decide()
        assert cluster.containers["s0"].cores == c0_before
        assert cluster.containers["s1"].cores > c1_before
