"""Unit tests for Table II candidate scoring."""

import pytest

from repro.cluster.runtime import RuntimeWindow
from repro.core.config import SurgeGuardConfig
from repro.core.scoring import UPSCALE_RULES, score_container


def window(
    exec_time=10e-3,
    exec_metric=10e-3,
    qb=None,
    hints=0,
    ttl=0,
    count=50,
):
    return RuntimeWindow(
        t_start=0.0,
        t_end=0.1,
        count=count,
        avg_exec_time=exec_time,
        avg_conn_wait=exec_time - exec_metric,
        avg_exec_metric=exec_metric,
        queue_buildup=qb if qb is not None else (exec_time / exec_metric),
        upscale_hints=hints,
        max_hint_ttl=ttl,
        avg_time_from_start=1e-3,
    )


CFG = SurgeGuardConfig()
EXPECTED = 10e-3  # expectedExecMetric == expectedExecTime in these tests


class TestTableII:
    """Each row of Table II as a separate check."""

    def test_pkt_upscale_marks_self(self):
        cs = score_container("c", window(hints=3, ttl=2), EXPECTED, EXPECTED, CFG)
        assert cs.hint
        assert cs.self_score == 1

    def test_queue_buildup_marks_downstream_not_self(self):
        cs = score_container("c", window(exec_time=30e-3, exec_metric=10e-3), EXPECTED, EXPECTED, CFG)
        assert cs.queue_violation
        assert cs.marks_downstream
        assert cs.self_score == 0  # condition 2 scores *downstream*

    def test_exec_metric_violation_marks_self(self):
        cs = score_container("c", window(exec_metric=25e-3, exec_time=25e-3), EXPECTED, EXPECTED, CFG)
        assert cs.exec_violation
        assert cs.self_score == 1

    def test_all_three_conditions_score_two_plus_downstream(self):
        cs = score_container(
            "c",
            window(exec_time=60e-3, exec_metric=25e-3, hints=1, ttl=1),
            EXPECTED,
            EXPECTED,
            CFG,
        )
        assert cs.self_score == 2
        assert cs.marks_downstream

    def test_healthy_container_scores_zero(self):
        cs = score_container("c", window(), EXPECTED, EXPECTED, CFG)
        assert not cs.any
        assert cs.self_score == 0

    def test_empty_window_scores_zero(self):
        cs = score_container(
            "c", window(exec_time=1.0, exec_metric=0.1, count=0), EXPECTED, EXPECTED, CFG
        )
        assert not cs.any

    def test_rules_table_matches_paper(self):
        assert UPSCALE_RULES["pkt.upscale > 0"] == "container c"
        assert "downstream" in UPSCALE_RULES["queueBuildup violation"]
        assert UPSCALE_RULES["execMetric violation"] == "container c"


class TestThresholds:
    def test_queue_th_boundary(self):
        at = score_container("c", window(qb=CFG.queue_th), EXPECTED, EXPECTED, CFG)
        above = score_container(
            "c", window(qb=CFG.queue_th + 0.01), EXPECTED, EXPECTED, CFG
        )
        assert not at.queue_violation
        assert above.queue_violation

    def test_exec_th_boundary(self):
        at = score_container(
            "c", window(exec_metric=EXPECTED * CFG.exec_th), EXPECTED, EXPECTED, CFG
        )
        above = score_container(
            "c",
            window(exec_metric=EXPECTED * CFG.exec_th * 1.01, exec_time=EXPECTED * 1.01),
            EXPECTED,
            EXPECTED,
            CFG,
        )
        assert not at.exec_violation
        assert above.exec_violation


class TestAblationMode:
    """use_new_metrics=False degrades to the dependence-blind check."""

    def test_old_mode_ignores_hints_and_queue(self):
        cfg = SurgeGuardConfig(use_new_metrics=False)
        cs = score_container(
            "c",
            window(exec_time=9e-3, exec_metric=3e-3, hints=5, ttl=3),
            EXPECTED,
            EXPECTED,
            cfg,
        )
        assert not cs.hint
        assert not cs.queue_violation
        assert not cs.exec_violation  # 9ms < 10ms exec-time envelope

    def test_old_mode_uses_raw_exec_time(self):
        cfg = SurgeGuardConfig(use_new_metrics=False)
        cs = score_container(
            "c",
            window(exec_time=30e-3, exec_metric=3e-3),
            EXPECTED,
            EXPECTED,
            cfg,
        )
        assert cs.exec_violation
