"""Unit tests for the execAvg sensitivity matrix (Design Feature #3)."""

import pytest

from repro.core.sensitivity import SensitivityTracker


@pytest.fixture
def tracker():
    return SensitivityTracker(alpha=0.5, step=0.5, max_cores=16.0)


class TestExecAvg:
    def test_first_observation_initializes(self, tracker):
        tracker.observe("c", 2.0, 10e-3)
        assert tracker.exec_avg("c", 2.0) == pytest.approx(10e-3)

    def test_ewma_update_formula(self, tracker):
        """execAvg = α·old + (1−α)·new, as printed in the paper."""
        tracker.observe("c", 2.0, 10e-3)
        tracker.observe("c", 2.0, 20e-3)
        assert tracker.exec_avg("c", 2.0) == pytest.approx(15e-3)

    def test_unobserved_is_none(self, tracker):
        assert tracker.exec_avg("c", 2.0) is None
        tracker.observe("c", 2.0, 10e-3)
        assert tracker.exec_avg("c", 3.0) is None

    def test_degenerate_observation_ignored(self, tracker):
        tracker.observe("c", 2.0, 0.0)
        assert tracker.exec_avg("c", 2.0) is None

    def test_out_of_range_allocation_rejected(self, tracker):
        with pytest.raises(ValueError):
            tracker.observe("c", 100.0, 1e-3)

    def test_known_allocations_count(self, tracker):
        tracker.observe("c", 1.0, 1e-3)
        tracker.observe("c", 2.0, 1e-3)
        tracker.observe("c", 2.0, 2e-3)
        assert tracker.known_allocations("c") == 2
        assert tracker.known_allocations("ghost") == 0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SensitivityTracker(alpha=0.0)
        with pytest.raises(ValueError):
            SensitivityTracker(step=0.0)


class TestSensitivity:
    def test_sens_formula(self, tracker):
        """sens = 1 − execAvg[k+1]/execAvg[k] (paper §III-C)."""
        tracker.observe("c", 2.0, 10e-3)
        tracker.observe("c", 2.5, 8e-3)
        assert tracker.sensitivity("c", 2.0) == pytest.approx(0.2)

    def test_sens_none_without_both_points(self, tracker):
        tracker.observe("c", 2.0, 10e-3)
        assert tracker.sensitivity("c", 2.0) is None

    def test_sens_clipped_nonnegative(self, tracker):
        # An extra core apparently slowing things down reads as zero.
        tracker.observe("c", 2.0, 10e-3)
        tracker.observe("c", 2.5, 12e-3)
        assert tracker.sensitivity("c", 2.0) == 0.0

    def test_top_of_range_sens_zero(self, tracker):
        assert tracker.sensitivity("c", 16.5) == 0.0

    def test_priority_optimistic_when_unknown(self, tracker):
        assert tracker.upscale_priority("c", 2.0) == tracker.optimistic_sens
        tracker.observe("c", 2.0, 10e-3)
        tracker.observe("c", 2.5, 9e-3)
        assert tracker.upscale_priority("c", 2.0) == pytest.approx(0.1)


class TestRevocation:
    def test_revoke_on_flat_curve(self, tracker):
        """Fig. 6-right: last core buys < 2 % ⇒ revoke."""
        tracker.observe("c", 3.5, 10.0e-3)
        tracker.observe("c", 4.0, 9.95e-3)  # 0.5 % gain
        assert tracker.should_revoke("c", 4.0, threshold=0.02)

    def test_no_revoke_on_steep_curve(self, tracker):
        tracker.observe("c", 3.5, 10e-3)
        tracker.observe("c", 4.0, 7e-3)  # 30 % gain
        assert not tracker.should_revoke("c", 4.0, threshold=0.02)

    def test_no_revoke_without_evidence(self, tracker):
        tracker.observe("c", 4.0, 10e-3)  # lower point unknown
        assert not tracker.should_revoke("c", 4.0, threshold=0.02)

    def test_no_revoke_at_floor(self, tracker):
        assert not tracker.should_revoke("c", 0.5, threshold=0.02)

    def test_revocation_self_corrects(self, tracker):
        """After a regretted revoke the bad point is observed and the
        sensitivity turns steep, blocking the next revoke."""
        tracker.observe("c", 1.5, 10e-3)
        tracker.observe("c", 2.0, 9.9e-3)
        assert tracker.should_revoke("c", 2.0, threshold=0.02)
        # The revoke happens, latency explodes at 1.5 cores:
        tracker.observe("c", 1.5, 100e-3)
        assert not tracker.should_revoke("c", 2.0, threshold=0.02)
