"""Tests for the assembled SurgeGuard controller, including the
decentralization contract."""

import pytest

from repro.controllers.null import NullController
from repro.controllers.parties import PartiesController, PartiesParams
from repro.core import SurgeGuardConfig, SurgeGuardController
from repro.experiments.harness import run_experiment
from tests.conftest import make_chain_app
from tests.controllers.conftest import mini_config


class TestAssembly:
    def test_one_unit_pair_per_node(self, sim, make_cluster):
        from repro.controllers.targets import TargetConfig

        app = make_chain_app(4)
        cluster = make_cluster(app, n_nodes=2, cores_per_node=8)
        targets = TargetConfig(
            expected_exec_metric={n: 1e-3 for n in app.service_names},
            expected_exec_time={n: 1e-3 for n in app.service_names},
            expected_time_from_start={n: 1e-3 for n in app.service_names},
            qos_target=10e-3,
        )
        ctrl = SurgeGuardController()
        ctrl.attach(sim, cluster, targets)
        assert len(ctrl.escalators) == 2
        assert len(ctrl.firstresponders) == 2

    def test_fr_disabled_by_config(self, sim, make_cluster):
        from repro.controllers.targets import TargetConfig

        app = make_chain_app(2)
        cluster = make_cluster(app, cores_per_node=8)
        targets = TargetConfig(
            expected_exec_metric={n: 1e-3 for n in app.service_names},
            expected_exec_time={n: 1e-3 for n in app.service_names},
            expected_time_from_start={n: 1e-3 for n in app.service_names},
            qos_target=10e-3,
        )
        ctrl = SurgeGuardController(SurgeGuardConfig(firstresponder=False))
        ctrl.attach(sim, cluster, targets)
        assert ctrl.firstresponders == []


class TestDecentralization:
    def test_core_package_never_imports_global_cluster_handle(self):
        """Escalator/FirstResponder must consume NodeView only — the
        structural decentralization claim (Fig. 1)."""
        import inspect

        import repro.core.escalator as esc
        import repro.core.firstresponder as fr

        for mod in (esc, fr):
            src = inspect.getsource(mod)
            assert "Cluster(" not in src
            assert "cluster.containers" not in src
            assert "node_views" not in src

    def test_escalator_touches_only_local_containers(self, sim, make_cluster):
        """On a 2-node cluster, each Escalator's actions land only on its
        own node's containers."""
        from repro.controllers.targets import TargetConfig
        from repro.core.escalator import Escalator

        app = make_chain_app(4)
        cluster = make_cluster(app, n_nodes=2, cores_per_node=8)
        targets = TargetConfig(
            expected_exec_metric={n: 1e-3 for n in app.service_names},
            expected_exec_time={n: 1e-3 for n in app.service_names},
            expected_time_from_start={n: 1e-3 for n in app.service_names},
            qos_target=10e-3,
        )
        view0 = cluster.node_views[0]
        esc = Escalator(sim, view0, SurgeGuardConfig(), targets)
        remote = [
            n for n in app.service_names if n not in view0.container_names
        ]
        before = {n: cluster.containers[n].cores for n in remote}
        # Force every local container into violation and decide.
        for n in view0.container_names:
            cluster.runtimes[n].on_complete(1.0, 0.9)
        esc.decide()
        after = {n: cluster.containers[n].cores for n in remote}
        assert before == after


class TestEndToEnd:
    def test_beats_parties_on_long_surge(self):
        parties = run_experiment(
            mini_config(lambda: PartiesController(PartiesParams(interval=0.1)))
        )
        sg = run_experiment(mini_config(SurgeGuardController))
        assert sg.violation_volume < parties.violation_volume

    def test_beats_static_heavily(self):
        static = run_experiment(mini_config(NullController))
        sg = run_experiment(mini_config(SurgeGuardController))
        assert sg.violation_volume < 0.25 * static.violation_volume

    def test_diagnostic_counters_populate(self):
        res = run_experiment(mini_config(SurgeGuardController))
        assert res.fast_path_packets > 0
        assert res.controller_stats.decision_cycles > 0

    def test_seed_reproducibility(self):
        a = run_experiment(mini_config(SurgeGuardController, seed=5))
        b = run_experiment(mini_config(SurgeGuardController, seed=5))
        assert a.violation_volume == b.violation_volume
        assert a.avg_cores == b.avg_cores
        assert a.energy == b.energy
