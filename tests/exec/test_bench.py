"""Smoke tests for the engine microbenchmark (`repro.exec.bench`).

The events/second floor is deliberately conservative — an order of
magnitude below what an idle core sustains — so it only trips on
catastrophic engine regressions (accidental O(n) scans in the hot loop,
runaway heap growth), not on CI noise.  The schema-3 memory section is
gated the opposite way: its churn counters come from the recyclers
themselves, so the ceilings are exact and machine-independent.
"""

import json

import pytest

from repro.cluster.loadbalancer import LB_POLICIES
from repro.exec.bench import (
    CHURN_CEILING_PER_100K,
    ENGINE_FLOOR_EPS,
    GC_GEN2_CEILING,
    HISTORY_MAX,
    LB_DISPATCH_FLOOR,
    PACKET_FLOOR_PPS,
    USERS_FLOOR_UPS,
    append_history,
    bench_arrival_gen,
    bench_engine,
    bench_engine_density,
    bench_lb_dispatch,
    bench_memory,
    bench_packet_path,
    bench_sharded,
    bench_users,
    main,
    run_benchmarks,
)


class TestBenchEngine:
    def test_reports_floor_events_per_sec(self):
        # best_of soaks up same-code runner variance (±25 % observed on
        # shared machines); the floor gates the fastest repeat.
        result = bench_engine(50_000, best_of=3)
        assert result["events"] == 50_000
        assert result["events_per_sec"] >= ENGINE_FLOOR_EPS

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            bench_engine(0)

    def test_lazy_cancel_churn_does_not_accumulate(self):
        # Half the scheduled events are cancelled decoys; compaction plus
        # pop-time skipping must keep the pending heap near the live set.
        result = bench_engine(50_000, fanout=32)
        assert result["pending_at_end"] < 5_000


class TestBenchEngineDensity:
    def test_reports_all_regimes_with_speedups(self):
        result = bench_engine_density(20_000, regimes=(64, 1024))
        rows = result["regimes"]
        assert [r["pending"] for r in rows] == [64, 1024]
        for row in rows:
            assert row["events"] == 20_000
            assert row["heap_events_per_sec"] > 0
            assert row["calendar_events_per_sec"] > 0
        assert result["high_density_speedup"] == rows[-1]["calendar_speedup"]

    def test_calendar_wins_at_high_density(self):
        # The CI gate behind the tentpole claim: at the million-user
        # density regime the calendar queue must beat the heap by at
        # least the conservative floor.
        result = bench_engine_density(150_000, regimes=(131072,))
        assert result["high_density_speedup"] >= 1.2

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            bench_engine_density(0)


class TestBenchArrivalGen:
    def test_batch_is_bit_identical_and_faster(self):
        # bench_arrival_gen asserts scalar ≡ batch internally; a clean
        # return therefore certifies bit-identity on 30k Poisson draws.
        result = bench_arrival_gen(30_000)
        assert result["arrivals"] == 30_000
        assert result["scalar_arrivals_per_sec"] > 0
        assert result["batch_speedup"] >= 1.5

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            bench_arrival_gen(0)


class TestBenchUsers:
    def test_reports_floor_users_per_wall_second(self):
        result = bench_users(3_000)
        assert result["requests"] == 3_000
        assert result["users_per_wall_second"] >= USERS_FLOOR_UPS
        assert result["baseline_users_per_wall_second"] > 0

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            bench_users(0)


class TestBenchPacketPath:
    def test_reports_floor_packets_per_sec(self):
        result = bench_packet_path(10_000, best_of=3)
        assert result["packets"] == 10_000
        assert result["packets_per_sec"] >= PACKET_FLOOR_PPS
        # FirstResponder's RX hook must have inspected every packet —
        # otherwise the benchmark isn't timing the guarded path.
        assert result["hook_inspected"] == 10_000

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            bench_packet_path(0)


class TestBenchMemory:
    def test_pooled_mode_meets_the_gates(self):
        mem = bench_memory(20_000)
        pooled = mem["pooled"]
        assert pooled["objects_constructed_per_100k"] <= CHURN_CEILING_PER_100K
        assert pooled["gc_collections"][2] <= GC_GEN2_CEILING
        assert pooled["tracemalloc_peak_kb"] > 0

    def test_pooling_cuts_steady_state_churn_at_least_2x(self):
        mem = bench_memory(20_000)
        pooled = mem["pooled"]["objects_constructed"]
        unpooled = mem["unpooled"]["objects_constructed"]
        # Unpooled constructs ~2 objects per packet (packet + handle);
        # pooled steady state recycles everything.  The acceptance bar
        # is >= 2x reduction; in practice pooled churn is zero.
        assert unpooled >= 2 * max(pooled, 1)

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            bench_memory(0)


class TestBenchLbDispatch:
    def test_reports_floor_dispatches_per_sec_for_every_policy(self):
        result = bench_lb_dispatch(30_000)
        assert set(result["policies"]) == set(LB_POLICIES)
        for row in result["policies"].values():
            assert row["dispatches"] == 30_000
        assert result["min_dispatches_per_sec"] >= LB_DISPATCH_FLOOR
        assert result["min_dispatches_per_sec"] == min(
            row["dispatches_per_sec"] for row in result["policies"].values()
        )

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            bench_lb_dispatch(0)


class TestBenchSharded:
    @pytest.mark.bench
    def test_small_cell_reports_consistent_row(self):
        # A shrunken variant of the headline row: the speedup itself is
        # machine-dependent (gated in CI against the committed report),
        # but the structural invariants must hold at any size.
        row = bench_sharded(0.25, n_nodes=4, shards=2)
        assert row["n_nodes"] == 4
        assert row["shards"] == 2
        assert row["requests"] > 0
        assert row["conservation_ok"] is True
        assert row["rounds"] > 0
        assert len(row["per_shard_cpu_seconds"]) == 2
        assert row["speedup_basis"] in ("wall", "critical_path")
        assert row["sharded_speedup"] > 0

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            bench_sharded(0.0)


class TestReport:
    _SMALL = dict(
        n_events=20_000,
        n_packets=5_000,
        n_density_events=5_000,
        n_arrivals=5_000,
        n_users=1_000,
        n_lb_dispatches=20_000,
    )

    def test_run_benchmarks_shape(self):
        report = run_benchmarks(
            skip_cell=True, skip_memory=True, skip_sharded=True, **self._SMALL
        )
        assert report["schema"] == 6
        assert report["machine"]["cpu_count"] >= 1
        assert report["engine"]["events_per_sec"] > 0
        assert len(report["engine_density"]["regimes"]) == 3
        assert report["arrival_gen"]["batch_arrivals_per_sec"] > 0
        assert report["users"]["users_per_wall_second"] > 0
        assert report["packet_path"]["packets_per_sec"] > 0
        lb = report["lb_dispatch"]
        assert lb["replicas"] == 4
        assert set(lb["policies"]) == set(LB_POLICIES)
        assert lb["min_dispatches_per_sec"] > 0
        assert "cell" not in report
        assert "memory" not in report
        assert "sharded" not in report

    def test_memory_section_present_by_default(self):
        report = run_benchmarks(skip_cell=True, skip_sharded=True, **self._SMALL)
        mem = report["memory"]
        assert mem["packets"] == 5_000
        assert set(mem) == {"packets", "warmup_packets", "pooled", "unpooled"}

    _SMALL_ARGV = [
        "--events", "20000", "--packets", "5000", "--density-events", "5000",
        "--arrivals", "5000", "--users", "1000", "--lb-dispatches", "20000",
        "--skip-cell", "--skip-sharded",
    ]

    def test_cli_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_exec.json"
        rc = main(
            self._SMALL_ARGV + ["--best-of", "2", "--skip-memory", "--out", str(out)]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["schema"] == 6
        assert report["engine"]["events"] == 20_000
        assert report["engine"]["events_per_sec"] >= ENGINE_FLOOR_EPS
        assert report["packet_path"]["packets"] == 5_000
        assert report["packet_path"]["packets_per_sec"] >= PACKET_FLOOR_PPS
        cli_out = capsys.readouterr().out
        assert "engine:" in cli_out
        assert "density pending=" in cli_out
        assert "arrivals:" in cli_out
        assert "users:" in cli_out
        assert "packet:" in cli_out
        assert "lb:" in cli_out

    def test_cli_memory_line(self, tmp_path, capsys):
        out = tmp_path / "BENCH_exec.json"
        rc = main(self._SMALL_ARGV + ["--out", str(out)])
        assert rc == 0
        assert "memory: churn/100k" in capsys.readouterr().out


class TestHistory:
    def test_append_folds_prior_report(self, tmp_path):
        out = tmp_path / "BENCH_exec.json"
        prior = {
            "schema": 2,
            "generated_at": "2026-01-01T00:00:00Z",
            "engine": {"events_per_sec": 111.0},
            "packet_path": {"packets_per_sec": 222.0},
            "cell": {"seconds_per_rep": 3.0},
        }
        out.write_text(json.dumps(prior))
        report = {"schema": 3}
        append_history(report, str(out))
        assert report["history"] == [
            {
                "generated_at": "2026-01-01T00:00:00Z",
                "schema": 2,
                "engine_events_per_sec": 111.0,
                "packet_path_packets_per_sec": 222.0,
                "cell_seconds_per_rep": 3.0,
            }
        ]

    def test_history_accumulates_across_appends(self, tmp_path):
        out = tmp_path / "BENCH_exec.json"
        first = {
            "schema": 2,
            "generated_at": "t0",
            "engine": {"events_per_sec": 1.0},
            "packet_path": {"packets_per_sec": 2.0},
        }
        out.write_text(json.dumps(first))
        second = {
            "schema": 3,
            "generated_at": "t1",
            "engine": {"events_per_sec": 10.0},
            "packet_path": {"packets_per_sec": 20.0},
            "memory": {
                "pooled": {"objects_constructed_per_100k": 0.0},
                "unpooled": {"objects_constructed_per_100k": 200_000.0},
            },
        }
        append_history(second, str(out))
        out.write_text(json.dumps(second))
        third = {"schema": 3, "generated_at": "t2"}
        append_history(third, str(out))
        stamps = [h["generated_at"] for h in third["history"]]
        assert stamps == ["t0", "t1"]
        assert third["history"][1]["churn_per_100k_unpooled"] == 200_000.0

    def test_schema4_rows_are_folded(self, tmp_path):
        out = tmp_path / "BENCH_exec.json"
        prior = {
            "schema": 4,
            "generated_at": "t0",
            "engine": {"events_per_sec": 1.0},
            "engine_density": {"high_density_speedup": 1.7},
            "users": {"users_per_wall_second": 12_345.0},
            "packet_path": {"packets_per_sec": 2.0},
        }
        out.write_text(json.dumps(prior))
        report = {"schema": 4}
        append_history(report, str(out))
        (entry,) = report["history"]
        assert entry["high_density_speedup"] == 1.7
        assert entry["users_per_wall_second"] == 12_345.0

    def test_schema5_lb_row_is_folded(self, tmp_path):
        out = tmp_path / "BENCH_exec.json"
        prior = {
            "schema": 5,
            "generated_at": "t0",
            "lb_dispatch": {"min_dispatches_per_sec": 456_789.0},
        }
        out.write_text(json.dumps(prior))
        report = {"schema": 5}
        append_history(report, str(out))
        (entry,) = report["history"]
        assert entry["lb_min_dispatches_per_sec"] == 456_789.0

    def test_schema6_sharded_row_is_folded(self, tmp_path):
        out = tmp_path / "BENCH_exec.json"
        prior = {
            "schema": 6,
            "generated_at": "t0",
            "sharded": {
                "sharded_speedup": 2.34,
                "speedup_basis": "critical_path",
            },
        }
        out.write_text(json.dumps(prior))
        report = {"schema": 6}
        append_history(report, str(out))
        (entry,) = report["history"]
        assert entry["sharded_speedup"] == 2.34
        assert entry["sharded_speedup_basis"] == "critical_path"

    def test_history_is_capped_at_newest_entries(self, tmp_path):
        out = tmp_path / "BENCH_exec.json"
        prior = {
            "schema": 4,
            "generated_at": "new",
            "history": [{"generated_at": f"old-{i}"} for i in range(HISTORY_MAX + 7)],
        }
        out.write_text(json.dumps(prior))
        report = {"schema": 4}
        append_history(report, str(out))
        history = report["history"]
        assert len(history) == HISTORY_MAX
        # Newest entries win: the fold keeps the tail of the series plus
        # the compacted prior report itself.
        assert history[-1]["generated_at"] == "new"
        assert history[0]["generated_at"] == f"old-{HISTORY_MAX + 7 - (HISTORY_MAX - 1)}"

    def test_missing_prior_file_is_ignored(self, tmp_path):
        report = {"schema": 3}
        append_history(report, str(tmp_path / "nope.json"))
        assert "history" not in report

    def test_unparsable_prior_file_is_ignored(self, tmp_path):
        out = tmp_path / "BENCH_exec.json"
        out.write_text("{not json")
        report = {"schema": 3}
        append_history(report, str(out))
        assert "history" not in report
