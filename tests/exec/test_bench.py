"""Smoke tests for the engine microbenchmark (`repro.exec.bench`).

The events/second floor is deliberately conservative — an order of
magnitude below what an idle core sustains — so it only trips on
catastrophic engine regressions (accidental O(n) scans in the hot loop,
runaway heap growth), not on CI noise.
"""

import json

import pytest

from repro.exec.bench import (
    ENGINE_FLOOR_EPS,
    PACKET_FLOOR_PPS,
    bench_engine,
    bench_packet_path,
    main,
    run_benchmarks,
)


class TestBenchEngine:
    def test_reports_floor_events_per_sec(self):
        result = bench_engine(50_000)
        assert result["events"] == 50_000
        assert result["events_per_sec"] >= ENGINE_FLOOR_EPS

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            bench_engine(0)

    def test_lazy_cancel_churn_does_not_accumulate(self):
        # Half the scheduled events are cancelled decoys; compaction plus
        # pop-time skipping must keep the pending heap near the live set.
        result = bench_engine(50_000, fanout=32)
        assert result["pending_at_end"] < 5_000


class TestBenchPacketPath:
    def test_reports_floor_packets_per_sec(self):
        result = bench_packet_path(10_000)
        assert result["packets"] == 10_000
        assert result["packets_per_sec"] >= PACKET_FLOOR_PPS
        # FirstResponder's RX hook must have inspected every packet —
        # otherwise the benchmark isn't timing the guarded path.
        assert result["hook_inspected"] == 10_000

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            bench_packet_path(0)


class TestReport:
    def test_run_benchmarks_shape(self):
        report = run_benchmarks(n_events=20_000, n_packets=5_000, skip_cell=True)
        assert report["schema"] == 2
        assert report["machine"]["cpu_count"] >= 1
        assert report["engine"]["events_per_sec"] > 0
        assert report["packet_path"]["packets_per_sec"] > 0
        assert "cell" not in report

    def test_cli_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_exec.json"
        rc = main([
            "--events", "20000", "--packets", "5000", "--skip-cell",
            "--out", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["schema"] == 2
        assert report["engine"]["events"] == 20_000
        assert report["engine"]["events_per_sec"] >= ENGINE_FLOOR_EPS
        assert report["packet_path"]["packets"] == 5_000
        assert report["packet_path"]["packets_per_sec"] >= PACKET_FLOOR_PPS
        cli_out = capsys.readouterr().out
        assert "engine:" in cli_out
        assert "packet:" in cli_out
