"""Packet-path fast lane must not change simulation results at all.

The route cache, batched jitter RNG, surge timeline, cached RX overhead,
and segment-indexed rate schedules are pure *mechanical* optimizations:
numpy Generators produce identical streams drawn singly or in blocks,
and every arithmetic sequence on the hot path was kept verbatim.  These
tests pin that claim to **golden values recorded from the
pre-optimization code** (same seeds, same configs, plain ``==`` on
floats) for both the CHAIN and social-network workloads — any drift in
scheduling order, RNG consumption, or float arithmetic fails them.
"""

import pytest

from repro.analysis.aggregate import run_cell
from repro.exec.specs import spec
from repro.experiments.harness import ExperimentConfig, clear_profile_cache

#: violation_volume / p98 / per-rep violation volumes captured by running
#: the seed (pre-fast-lane) code at these exact configs, REPRO_REPS=3.
GOLDEN = {
    "chain": {
        "violation_volume": 0.00678037726102677,
        "p98": 0.05042167037292759,
        "rep_violation_volumes": [
            0.0013003591603656887,
            0.00678037726102677,
            0.007062671613040968,
        ],
    },
    "readUserTimeline": {
        "violation_volume": 8.19282795865763e-06,
        "p98": 0.008781346454451265,
        "rep_violation_volumes": [
            8.19282795865763e-06,
            0.00019027769535009503,
            8.745140151644463e-07,
        ],
    },
    # hotelReservation family, captured at the same config shape.
    "searchHotel": {
        "workload": "searchHotel",
        "violation_volume": 1.092970783069e-05,
        "p98": 0.017284805864273098,
        "rep_violation_volumes": [
            4.787109911479511e-06,
            1.092970783069e-05,
            7.380948995046117e-05,
        ],
    },
    # Multi-node chain: round-robin placement across 2 nodes, so the
    # fast lane's route cache and per-node RX overhead both cross node
    # boundaries (single-node goldens never exercise that path).
    "chain@2nodes": {
        "workload": "chain",
        "config": {"n_nodes": 2},
        "violation_volume": 0.011881656314658937,
        "p98": 0.050369254313369305,
        "rep_violation_volumes": [
            0.002367674978080033,
            0.011934654735878932,
            0.011881656314658937,
        ],
    },
}


def _cell_config(workload: str, **overrides) -> ExperimentConfig:
    """Identical to the pre-optimization golden capture run."""
    return ExperimentConfig(
        workload=workload,
        controller_factory=spec("surgeguard"),
        spike_magnitude=1.75,
        spike_len=0.5,
        spike_period=2.0,
        spike_offset=0.25,
        duration=2.0,
        warmup=1.0,
        profile_duration=1.0,
        drain=0.5,
        seed=3,
        **overrides,
    )


class TestBitIdenticalToSeedPath:
    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_results_match_pre_optimization_golden(self, key, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "3")
        want = GOLDEN[key]
        workload = want.get("workload", key)
        clear_profile_cache()
        cell = run_cell(
            _cell_config(workload, **want.get("config", {})),
            jobs=1,
            keep_runs=True,
        )
        # Exact equality on purpose: the fast lane promises bit-identical
        # results, and approx would hide RNG-stream or ordering drift.
        assert cell.violation_volume == want["violation_volume"]
        assert cell.p98 == want["p98"]
        assert [
            r.summary.violation_volume for r in cell.runs
        ] == want["rep_violation_volumes"]
