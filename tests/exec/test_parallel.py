"""Determinism of the parallel repetition fan-out.

The acceptance bar for `repro.exec.pool`: ``run_cell(jobs=4)`` must be
**bit-identical** to ``run_cell(jobs=1)`` — same seeds, same trimmed
means — across workloads.  Exact ``==`` on floats is intentional;
``pytest.approx`` would hide scheduling-order divergence.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.analysis.aggregate import run_cell
from repro.exec.pool import ensure_picklable, run_reps
from repro.exec.specs import spec
from repro.experiments.harness import (
    ExperimentConfig,
    clear_profile_cache,
    profile_targets,
)

#: The two workloads of the determinism matrix: the registry CHAIN app
#: and a social-network fan-out topology.
WORKLOADS = ("chain", "readUserTimeline")


def _cell_config(workload: str) -> ExperimentConfig:
    """A short but non-trivial cell (surges + SurgeGuard fast path)."""
    return ExperimentConfig(
        workload=workload,
        controller_factory=spec("surgeguard"),
        spike_magnitude=1.75,
        spike_len=0.5,
        spike_period=2.0,
        spike_offset=0.25,
        duration=2.0,
        warmup=1.0,
        profile_duration=1.0,
        drain=0.5,
        seed=3,
    )


@pytest.mark.slow
class TestBitIdenticalToSerial:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_jobs4_equals_jobs1_field_for_field(self, workload, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "5")
        cfg = _cell_config(workload)

        clear_profile_cache()
        serial = run_cell(cfg, jobs=1, keep_runs=True)
        clear_profile_cache()
        parallel = run_cell(cfg, jobs=4, keep_runs=True)

        assert serial.reps == parallel.reps == 5
        assert serial.controller == parallel.controller
        assert serial.violation_volume == parallel.violation_volume
        assert serial.p98 == parallel.p98
        assert serial.avg_cores == parallel.avg_cores
        assert serial.energy == parallel.energy
        for rs, rp in zip(serial.runs, parallel.runs):
            assert rs.config.seed == rp.config.seed
            assert rs.summary.violation_volume == rp.summary.violation_volume
            assert rs.avg_cores == rp.avg_cores
            assert rs.energy == rp.energy
            assert np.array_equal(rs.latency_trace, rp.latency_trace)


class TestRunReps:
    def test_seed_order_preserved(self):
        cfg = _cell_config("chain")
        results = run_reps(cfg, 3, jobs=2)
        assert [r.config.seed for r in results] == [3, 4, 5]

    def test_explicit_targets_skip_worker_profiling(self):
        cfg = _cell_config("chain")
        targets = profile_targets(cfg)
        results = run_reps(cfg, 2, jobs=2, targets=targets)
        for r in results:
            assert r.targets.qos_target == targets.qos_target

    def test_seed_count_mismatch_rejected(self):
        cfg = _cell_config("chain")
        with pytest.raises(ValueError, match="seeds"):
            run_reps(cfg, 2, jobs=1, seeds=[1, 2, 3])

    def test_sharded_reps_cap_jobs_to_cpu_budget(self, monkeypatch):
        # jobs × shards worker processes must not oversubscribe the
        # container: with 2 CPUs and 2-shard reps, jobs=4 caps to 1
        # (which takes the serial in-process path).
        calls = []
        monkeypatch.setattr("repro.exec.pool.cpu_jobs", lambda: 2)
        monkeypatch.setattr(
            "repro.exec.pool._rep_worker",
            lambda payload: calls.append(payload[2]),
        )
        cfg = dataclasses.replace(_cell_config("chain"), shards=2)
        with pytest.warns(RuntimeWarning, match="oversubscribes"):
            run_reps(cfg, 2, jobs=4, targets=object())
        assert calls == [3, 4]

    def test_unsharded_reps_do_not_warn(self, monkeypatch):
        monkeypatch.setattr("repro.exec.pool.cpu_jobs", lambda: 2)
        monkeypatch.setattr(
            "repro.exec.pool._rep_worker", lambda payload: payload[2]
        )
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        cfg = _cell_config("chain")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert run_reps(cfg, 1, jobs=1, targets=object()) == [3]

    def test_unpicklable_factory_fails_fast(self):
        cfg = dataclasses.replace(
            _cell_config("chain"),
            controller_factory=lambda: None,  # closures cannot cross processes
        )
        with pytest.raises(TypeError, match="spec"):
            ensure_picklable(cfg)


class TestRunCellValidation:
    def test_trim_negative_rejected(self):
        cfg = _cell_config("chain")
        with pytest.raises(ValueError, match="trim"):
            run_cell(cfg, reps=1, trim=-1)

    def test_high_trim_with_too_few_reps_rejected(self):
        cfg = _cell_config("chain")
        with pytest.raises(ValueError, match="discard all"):
            run_cell(cfg, reps=4, trim=2)

    def test_default_trim_with_one_rep_still_allowed(self):
        # The fast REPRO_REPS=1 path: trim=1 degrades to an untrimmed mean.
        cfg = _cell_config("chain")
        cell = run_cell(cfg, reps=1)
        assert cell.reps == 1

    def test_jobs_zero_rejected(self):
        cfg = _cell_config("chain")
        with pytest.raises(ValueError, match="jobs"):
            run_cell(cfg, reps=1, jobs=0)
