"""Object recycling must not change simulation results at all.

Packet and event-handle pooling reuses *memory*, never *state*: every
acquired object has all fields overwritten, and release points only
touch objects nothing else retains.  These tests pin that claim the
hard way — full experiment cells run with pooling enabled (the
default), disabled (``REPRO_POOL=0``), and in poison-debug mode
(``REPRO_POOL_DEBUG=1``, where any touch of a released object raises or
misroutes loudly) must reproduce the committed goldens bit-for-bit.

The fault cell matters most: packets die mid-flight there (loss drops,
crash-killed servers, superseded retries), which is exactly where a
wrong release point would recycle a still-referenced packet and corrupt
a later request.
"""

import pytest

from repro.analysis.aggregate import run_cell
from repro.experiments.harness import clear_profile_cache
from repro.validate.fingerprint import fingerprint_diff
from repro.validate.runner import load_goldens, run_cell_validated
from repro.validate.scenarios import fault_matrix
from tests.exec.test_packet_fastlane import GOLDEN, _cell_config


def _run_golden_cell(key: str) -> None:
    want = GOLDEN[key]
    workload = want.get("workload", key)
    clear_profile_cache()
    cell = run_cell(
        _cell_config(workload, **want.get("config", {})), jobs=1, keep_runs=True
    )
    assert cell.violation_volume == want["violation_volume"]
    assert cell.p98 == want["p98"]
    assert [
        r.summary.violation_volume for r in cell.runs
    ] == want["rep_violation_volumes"]


class TestFastlaneGoldensModeIndependent:
    @pytest.mark.parametrize("key", ["chain", "readUserTimeline"])
    def test_goldens_hold_with_pooling_disabled(self, key, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "3")
        monkeypatch.setenv("REPRO_POOL", "0")
        _run_golden_cell(key)

    def test_goldens_hold_in_poison_debug_mode(self, monkeypatch):
        # Debug mode poisons every released packet, so this run doubles
        # as a proof that the production release points never give up a
        # packet something still reads: a use-after-release would raise
        # (context) or misroute (poisoned names) and break the golden.
        monkeypatch.setenv("REPRO_REPS", "3")
        monkeypatch.setenv("REPRO_POOL", "1")
        monkeypatch.setenv("REPRO_POOL_DEBUG", "1")
        _run_golden_cell("chain")


class TestFaultCellFingerprintModeIndependent:
    """crash-during-surge: the cell where packets die mid-flight."""

    def _outcome(self):
        (cell,) = fault_matrix(
            controllers=["surgeguard"], scenarios=["crash-during-surge"]
        )
        clear_profile_cache()
        out = run_cell_validated(cell)
        assert not out.violations, out.violations
        return cell, out

    def test_pooled_and_unpooled_fingerprints_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "1")
        cell, pooled = self._outcome()
        monkeypatch.setenv("REPRO_POOL", "0")
        _, unpooled = self._outcome()
        assert pooled.fingerprint == unpooled.fingerprint
        # And both match the committed golden, not just each other.
        golden = load_goldens()[cell.key]
        assert fingerprint_diff(golden, pooled.fingerprint) == []
