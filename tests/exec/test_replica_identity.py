"""The replica tier at replicas=1 must not change results at all.

Arming the load balancer with a single replica per service is contracted
to be a pure pass-through: the LB resolves every virtual destination to
the one READY replica without consulting the policy, replica 0 keeps the
bare service name, and placement/budget/RNG streams are constructed
identically (see ``repro/cluster/loadbalancer.py`` for the determinism
argument).  These tests pin the contract the hard way — golden cells
re-run with ``replicas=1`` under every LB policy and every
scheduler/arrival fast-lane mode must reproduce the committed numbers
bit-for-bit.

The fault cell matters most: crash-during-surge sends traffic into a
dead replica, which is exactly where the LB's fail-open health filter
(single-ready shortcut) could have diverged from the unreplicated
dead-socket path.
"""

import dataclasses

import pytest

from repro.analysis.aggregate import run_cell
from repro.experiments.harness import clear_profile_cache
from repro.validate.fingerprint import fingerprint_diff
from repro.validate.runner import load_goldens, run_cell_validated
from repro.validate.scenarios import fault_matrix
from tests.exec.test_packet_fastlane import GOLDEN, _cell_config

MODES = [
    ("heap", "scalar"),
    ("calendar", "chunked"),
]


def _set_modes(monkeypatch, sched: str, arrivals: str) -> None:
    monkeypatch.setenv("REPRO_SCHED", sched)
    monkeypatch.setenv("REPRO_ARRIVALS", arrivals)


def _run_replicated_golden(key: str, lb_policy: str) -> None:
    want = GOLDEN[key]
    workload = want.get("workload", key)
    clear_profile_cache()
    cfg = _cell_config(
        workload,
        replicas=1,
        lb_policy=lb_policy,
        **want.get("config", {}),
    )
    cell = run_cell(cfg, jobs=1, keep_runs=True)
    assert cell.violation_volume == want["violation_volume"]
    assert cell.p98 == want["p98"]
    assert [
        r.summary.violation_volume for r in cell.runs
    ] == want["rep_violation_volumes"]


class TestReplicaPassthroughBitIdentical:
    @pytest.mark.parametrize("sched,arrivals", MODES)
    def test_golden_holds_with_lb_armed(self, sched, arrivals, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "3")
        _set_modes(monkeypatch, sched, arrivals)
        _run_replicated_golden("chain", "round_robin")

    @pytest.mark.parametrize(
        "lb_policy", ["least_loaded", "consistent_hash"]
    )
    def test_golden_holds_under_every_policy(self, lb_policy, monkeypatch):
        """At one replica the policy is never consulted, so every policy
        must produce the identical run."""
        monkeypatch.setenv("REPRO_REPS", "3")
        _run_replicated_golden("chain", lb_policy)


class TestFaultCellReplicatedBitIdentical:
    """crash-during-surge with the LB armed: the dead-replica path."""

    def _outcome(self):
        (cell,) = fault_matrix(
            controllers=["surgeguard"], scenarios=["crash-during-surge"]
        )
        replicated = dataclasses.replace(
            cell, config=dataclasses.replace(cell.config, replicas=1)
        )
        clear_profile_cache()
        out = run_cell_validated(replicated)
        assert not out.violations, out.violations
        return cell, out

    @pytest.mark.parametrize("sched,arrivals", MODES)
    def test_fingerprint_matches_unreplicated_golden(
        self, sched, arrivals, monkeypatch
    ):
        _set_modes(monkeypatch, sched, arrivals)
        cell, out = self._outcome()
        golden = load_goldens()[cell.key]
        assert fingerprint_diff(golden, out.fingerprint) == []
