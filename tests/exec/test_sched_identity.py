"""Scheduler and arrival-generation modes must not change results at all.

The calendar-queue scheduler (``REPRO_SCHED=calendar``) and chunked
arrival generation (``REPRO_ARRIVALS=chunked``) are pure performance
lanes: both are contracted to reproduce the heap/scalar event sequence
bit-for-bit (see ``repro/sim/calqueue.py`` and
``repro/workload/generator.py`` for the determinism arguments, and
``tests/property/test_calqueue_equivalence.py`` for the shrinkable
property versions).  These tests pin the contract the hard way — full
experiment cells under every mode combination must reproduce the
committed goldens exactly.

The fault cell matters most for the scheduler: crash-during-surge
cancels timers mid-flight (retry timeouts superseded by responses,
watchdogs killed with their server), which is exactly where a calendar
bucket that mis-ordered or dropped a lazily-cancelled entry would
diverge.
"""

import pytest

from repro.experiments.harness import clear_profile_cache
from repro.validate.fingerprint import fingerprint_diff
from repro.validate.runner import load_goldens, run_cell_validated
from repro.validate.scenarios import fault_matrix
from tests.exec.test_pooling_identity import _run_golden_cell

MODES = [
    ("calendar", "scalar"),
    ("heap", "chunked"),
    ("calendar", "chunked"),
]


def _set_modes(monkeypatch, sched: str, arrivals: str) -> None:
    monkeypatch.setenv("REPRO_SCHED", sched)
    monkeypatch.setenv("REPRO_ARRIVALS", arrivals)


class TestGoldensModeIndependent:
    @pytest.mark.parametrize("sched,arrivals", MODES)
    def test_goldens_hold_under_fast_lanes(self, sched, arrivals, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "3")
        _set_modes(monkeypatch, sched, arrivals)
        _run_golden_cell("chain")


class TestFaultCellFingerprintModeIndependent:
    """crash-during-surge: the cell where timers are cancelled mid-flight."""

    def _outcome(self):
        (cell,) = fault_matrix(
            controllers=["surgeguard"], scenarios=["crash-during-surge"]
        )
        clear_profile_cache()
        out = run_cell_validated(cell)
        assert not out.violations, out.violations
        return cell, out

    def test_fingerprints_identical_across_all_modes(self, monkeypatch):
        _set_modes(monkeypatch, "heap", "scalar")
        cell, baseline = self._outcome()
        for sched, arrivals in MODES:
            _set_modes(monkeypatch, sched, arrivals)
            _, fast = self._outcome()
            assert fast.fingerprint == baseline.fingerprint, (sched, arrivals)
        golden = load_goldens()[cell.key]
        assert fingerprint_diff(golden, baseline.fingerprint) == []
