"""The cross-shard wire codec: field ledger, round-trip, pool isolation.

Cross-shard packets travel as plain tuples (``WIRE_FIELDS``), never as
pickled ``RpcPacket`` objects.  These tests pin the codec the same way
``tests/cluster/test_packet.py`` pins the clone helpers: every packet
field must be *classified* — carried on the wire, translated (``context``
→ ``context_token``), or deliberately excluded (``_pool_state``) — so a
field added to ``RpcPacket`` fails here until the wire format accounts
for it.
"""

import dataclasses
import pickle

import pytest

from repro.cluster.packet import PacketPool, REQUEST, RESPONSE, RpcPacket
from repro.sim.shard import CtxToken, ShardContext, WIRE_FIELDS

#: Lookahead used by every context in this file (any positive value).
L = 20e-6

#: Sentinel node objects standing in for cluster ``Node``s.
NODE_A, NODE_B = object(), object()

#: node -> owning shard: A on shard 0, B on shard 1, client on shard 0.
OWNERS = {NODE_A: 0, NODE_B: 1, None: 0}


def make_ctx(shard_id: int, n_shards: int = 2) -> ShardContext:
    ctx = ShardContext(shard_id, n_shards, L)
    ctx.bind(OWNERS)
    return ctx


def source_packet(pool=None, context=None) -> RpcPacket:
    """A packet with a distinctive non-default value in every field."""
    kw = dict(
        request_id=91,
        kind=REQUEST,
        src="caller",
        dst="callee",
        start_time=6.5,
        upscale=4,
        error=True,
        context=context,
    )
    if pool is not None:
        pkt = pool.acquire(**kw)
    else:
        pkt = RpcPacket(**kw)
    pkt.send_time = 2.25
    return pkt


class TestFieldLedger:
    """Every ``RpcPacket`` field is classified by the wire format."""

    #: Wire slots that are shard protocol, not packet payload.
    PROTOCOL_ONLY = {"seq"}
    #: Packet fields carried under a translated name.
    TRANSLATED = {"context_token": "context"}
    #: Packet fields that deliberately never cross a shard boundary.
    EXCLUDED = {"_pool_state"}

    def test_every_packet_field_is_on_the_wire_or_excluded(self):
        carried = {
            self.TRANSLATED.get(name, name)
            for name in WIRE_FIELDS
            if name not in self.PROTOCOL_ONLY
        }
        packet_fields = {f.name for f in dataclasses.fields(RpcPacket)}
        unclassified = packet_fields - carried - self.EXCLUDED
        assert not unclassified, (
            f"RpcPacket fields {unclassified} are neither on the wire nor "
            "deliberately excluded — extend WIRE_FIELDS (and divert/"
            "recv_boundary) or add them to EXCLUDED here on purpose"
        )
        phantom = carried - packet_fields
        assert not phantom, f"wire names {phantom} match no RpcPacket field"

    def test_divert_serializes_every_wire_field(self):
        # The wire tuple must carry the packet's exact values, position
        # for position, and survive the pickle boundary intact.
        ctx = make_ctx(0)
        pool = PacketPool(enabled=True)
        pkt = source_packet(pool)
        expected = {
            name: getattr(pkt, name)
            for name in WIRE_FIELDS
            if name not in self.PROTOCOL_ONLY and name not in self.TRANSLATED
        }
        ctx.divert(pkt, pool, NODE_B)
        (wire,) = pickle.loads(pickle.dumps(ctx.take_outbox(1)))
        assert len(wire) == len(WIRE_FIELDS)
        row = dict(zip(WIRE_FIELDS, wire))
        assert row["seq"] == 0
        assert row["context_token"] is None
        for name, value in expected.items():
            assert row[name] == value, f"wire field {name!r} corrupted"


class TestContextTokens:
    def test_live_context_is_swapped_for_origin_token(self):
        ctx = make_ctx(0)
        pool = PacketPool(enabled=True)
        marker = ("continuation",)
        pkt = source_packet(pool, context=marker)
        ctx.divert(pkt, pool, NODE_B)
        (wire,) = ctx.take_outbox(1)
        assert wire[-1] == (0, 0)
        assert ctx.open_contexts == 1
        # The origin shard resolves its own token back — exactly once.
        assert ctx.resolve_token(wire[-1]) is marker
        assert ctx.open_contexts == 0

    def test_foreign_token_passes_through_both_directions(self):
        # A server shard relaying a response must forward the origin's
        # token opaquely: resolve gives a CtxToken, divert re-encodes it.
        server = make_ctx(1)
        restored = server.resolve_token((0, 7))
        assert isinstance(restored, CtxToken)
        assert (restored.origin, restored.n) == (0, 7)
        pool = PacketPool(enabled=True)
        pkt = source_packet(pool, context=restored)
        server.divert(pkt, pool, NODE_A)
        (wire,) = server.take_outbox(0)
        assert wire[-1] == (0, 7)
        assert server.open_contexts == 0  # nothing registered on relay


class TestPoolIsolation:
    """Pooled packets never cross shards — each side uses its own pool."""

    def test_divert_releases_to_the_sender_pool(self):
        ctx = make_ctx(0)
        pool = PacketPool(enabled=True)
        pkt = source_packet(pool)
        assert pool.free == 0
        ctx.divert(pkt, pool, NODE_B)
        assert pool.free == 1  # back on the sender's free list
        assert pool.released == 1

    def test_receiver_reacquires_from_its_own_pool(self):
        sender_pool = PacketPool(enabled=True)
        receiver_pool = PacketPool(enabled=True)
        ctx = make_ctx(0)
        pkt = source_packet(sender_pool)
        ctx.divert(pkt, sender_pool, NODE_B)
        (wire,) = pickle.loads(pickle.dumps(ctx.take_outbox(1)))
        # What recv_boundary does on the receiving shard: acquire from
        # the *receiver's* pool, then stamp the original send_time.
        row = dict(zip(WIRE_FIELDS, wire))
        rebuilt = receiver_pool.acquire(
            row["request_id"], row["kind"], row["src"], row["dst"],
            row["start_time"], row["upscale"], error=row["error"],
            context=None,
        )
        rebuilt.send_time = row["send_time"]
        assert rebuilt is not pkt
        assert receiver_pool.constructed == 1
        assert sender_pool.free == 1  # original never left its shard
        for f in dataclasses.fields(RpcPacket):
            if f.name in ("context", "_pool_state"):
                continue
            assert getattr(rebuilt, f.name) == getattr(
                source_packet(), f.name
            ), f"field {f.name!r} did not survive the shard boundary"

    def test_double_release_still_raises_after_divert(self):
        # divert is the sender-side release point; a second release of
        # the same object must trip the pool's corruption guard.
        ctx = make_ctx(0)
        pool = PacketPool(enabled=True)
        pkt = source_packet(pool)
        ctx.divert(pkt, pool, NODE_B)
        with pytest.raises(Exception, match="double release"):
            pool.release(pkt)


class TestConservationLedger:
    def test_serials_count_up_per_channel(self):
        ctx = make_ctx(0)
        pool = PacketPool(enabled=True)
        for expected_seq in range(3):
            pkt = source_packet(pool)
            ctx.divert(pkt, pool, NODE_B)
        seqs = [wire[0] for wire in ctx.take_outbox(1)]
        assert seqs == [0, 1, 2]
        assert ctx.seq_out[1] == 3
        assert ctx.ledger()["sent"] == [0, 3]

    def test_in_order_accepts_are_clean_and_gaps_are_flagged(self):
        rx = make_ctx(1)
        rx.accept_seq(0, 0)
        rx.accept_seq(0, 1)
        assert rx.seq_errors == 0
        rx.accept_seq(0, 3)  # serial 2 lost (or duplicated elsewhere)
        assert rx.seq_errors == 1
        assert rx.ledger()["received"] == [3, 0]
